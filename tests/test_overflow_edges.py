"""Edge-case tests for the copy-on-write overflow fall-back."""

import pytest

from repro.common.config import small_machine_config
from repro.common.event import Simulator
from repro.common.stats import Stats
from repro.common.types import NVM_BASE, Version
from repro.core.overflow import (
    RECORD_BASE,
    SHADOW_OFFSET,
    OverflowManager,
    is_metadata_line,
    record_addr,
    shadow_addr,
)
from repro.memory.system import MemorySystem


def make_manager():
    sim = Simulator()
    stats = Stats()
    memory = MemorySystem(sim, small_machine_config(num_cores=1), stats)
    manager = OverflowManager(sim, memory, stats.scoped("cow"))
    return sim, stats, memory, manager


def line(i):
    return NVM_BASE + i * 64


class TestAddressing:
    def test_shadow_and_record_are_metadata(self):
        assert is_metadata_line(shadow_addr(line(0)))
        assert is_metadata_line(record_addr(1))
        assert not is_metadata_line(line(0))

    def test_shadow_addresses_disjoint_from_home(self):
        assert shadow_addr(line(0)) != line(0)
        assert shadow_addr(line(0)) >= RECORD_BASE

    def test_record_addresses_unique_per_tx(self):
        assert record_addr(1) != record_addr(2)


class TestFallbackLifecycle:
    def test_commit_before_shadow_completion_waits(self):
        sim, stats, memory, manager = make_manager()
        manager.divert(0, 1, [(line(0), Version(1, 0))])
        committed = []
        manager.commit(0, 1, lambda: committed.append(sim.now))
        # commit registered but record not durable until shadows drain
        assert manager.busy()
        sim.run()
        assert committed
        assert not manager.busy()

    def test_empty_fallback_tx_commits(self):
        sim, stats, memory, manager = make_manager()
        manager.divert(0, 2, [])
        committed = []
        manager.commit(0, 2, lambda: committed.append(True))
        sim.run()
        assert committed
        assert manager.committed_at(sim.now)[0].tx_id == 2

    def test_same_line_rewrites_keep_newest(self):
        sim, stats, memory, manager = make_manager()
        manager.divert(0, 3, [])
        manager.write(0, 3, line(0), Version(3, 0))
        manager.write(0, 3, line(0), Version(3, 5))
        manager.commit(0, 3, lambda: None)
        sim.run()
        assert memory.durable_image.final_state()[line(0)] == Version(3, 5)

    def test_active_fallback_cleared_at_commit(self):
        sim, stats, memory, manager = make_manager()
        manager.divert(0, 4, [])
        assert manager.active_fallback_for(0) == 4
        manager.commit(0, 4, lambda: None)
        assert manager.active_fallback_for(0) is None
        sim.run()

    def test_uncommitted_fallback_never_touches_home(self):
        sim, stats, memory, manager = make_manager()
        manager.divert(0, 5, [(line(7), Version(5, 0))])
        manager.write(0, 5, line(8), Version(5, 1))
        sim.run()  # no commit
        final = memory.durable_image.final_state()
        assert line(7) not in final
        assert line(8) not in final
        assert shadow_addr(line(7)) in final  # shadow data exists
        assert manager.committed_at(sim.now) == []

    def test_two_cores_independent_fallbacks(self):
        sim, stats, memory, manager = make_manager()
        manager.divert(0, 6, [])
        manager.divert(1, 7, [])
        assert manager.active_fallback_for(0) == 6
        assert manager.active_fallback_for(1) == 7
        manager.write(0, 6, line(0), Version(6, 0))
        manager.write(1, 7, line(1), Version(7, 0))
        manager.commit(0, 6, lambda: None)
        manager.commit(1, 7, lambda: None)
        sim.run()
        committed = {s.tx_id for s in manager.committed_at(sim.now)}
        assert committed == {6, 7}
