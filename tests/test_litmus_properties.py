"""Properties of the litmus layer: generator determinism and the
engine-path equivalence (pooled == serial, cold == warm cache).

Determinism is load-bearing, not cosmetic: program bytes feed the
parallel engine's cache keys, so a seed that produced different bytes
on two runs would silently split (or worse, alias) cache entries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litmus import default_suite, random_program
from repro.litmus.oracle import (
    all_tx_ids,
    legal_commit_sets,
    line_candidates,
    tx_summaries,
)
from repro.litmus.runner import run_litmus_matrix
from repro.sim.parallel import ExperimentEngine


class TestGeneratorDeterminism:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_bytes_and_same_legal_sets(self, seed):
        first = random_program(seed)
        second = random_program(seed)
        assert first.canonical_json() == second.canonical_json()
        assert first.fingerprint == second.fingerprint

        summaries = [tx_summaries(p.to_traces()) for p in (first, second)]
        assert legal_commit_sets(summaries[0]) == \
            legal_commit_sets(summaries[1])
        committed = all_tx_ids(summaries[0])
        assert line_candidates(summaries[0], committed) == \
            line_candidates(summaries[1], committed)

    @given(seed=st.integers(0, 2**32 - 1),
           cores=st.integers(1, 4),
           max_txs=st.integers(1, 4),
           max_stores=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_random_programs_are_well_formed(self, seed, cores,
                                             max_txs, max_stores):
        program = random_program(seed, cores=cores, max_txs=max_txs,
                                 max_stores=max_stores)
        program.validate()  # grammar invariants
        for trace in program.to_traces():
            trace.validate()  # compiled traces are simulator-legal
        assert program.num_cores == cores

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_default_suite_is_reproducible(self, seed):
        a = default_suite(seed, count=8)
        b = default_suite(seed, count=8)
        assert [p.fingerprint for p in a] == [p.fingerprint for p in b]
        assert len(a) == 8

    def test_serialization_roundtrip_preserves_identity(self):
        from repro.litmus import LitmusProgram

        program = random_program(123, cores=3)
        clone = LitmusProgram.from_dict(program.to_dict())
        assert clone.canonical_json() == program.canonical_json()
        assert clone.fingerprint == program.fingerprint


class TestEnginePathEquivalence:
    def test_pooled_sweep_equals_serial_sweep(self, tmp_path):
        programs = default_suite(3, count=4)
        schemes = ("kiln", "txcache")

        serial = run_litmus_matrix(programs, schemes)
        pooled = run_litmus_matrix(
            programs, schemes,
            engine=ExperimentEngine(jobs=2,
                                    cache_dir=str(tmp_path / "cache")))
        assert [r.to_dict() for r in pooled.results] == \
            [r.to_dict() for r in serial.results]

        # a second run over the same cache is all warm hits — and
        # byte-identical
        engine = ExperimentEngine(jobs=2,
                                  cache_dir=str(tmp_path / "cache"))
        warm = run_litmus_matrix(programs, schemes, engine=engine)
        assert [r.to_dict() for r in warm.results] == \
            [r.to_dict() for r in serial.results]
        assert engine.stats.counter("engine.cache.hits") == \
            len(serial.results)
