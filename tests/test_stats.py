"""Unit tests for the statistics registry."""

from repro.common.stats import Stats


def test_counter_starts_at_zero():
    stats = Stats()
    assert stats.counter("never") == 0


def test_counter_accumulates():
    stats = Stats()
    stats.inc("hits")
    stats.inc("hits", 4)
    assert stats.counter("hits") == 5


def test_sample_summary():
    stats = Stats()
    for value in (10, 20, 30):
        stats.sample("lat", value)
    summary = stats.summary("lat")
    assert summary.count == 3
    assert summary.mean == 20
    assert summary.minimum == 10
    assert summary.maximum == 30


def test_mean_of_unseen_sample_is_zero():
    stats = Stats()
    assert stats.mean("nothing") == 0.0


def test_counters_prefix_filter():
    stats = Stats()
    stats.inc("l1.0.hit", 3)
    stats.inc("l1.1.hit", 2)
    stats.inc("l2.0.hit", 9)
    assert stats.counters("l1.") == {"l1.0.hit": 3, "l1.1.hit": 2}
    assert stats.counter_sum("l1.") == 5


def test_scoped_prefixes_names():
    stats = Stats()
    scoped = stats.scoped("llc")
    scoped.inc("miss", 2)
    scoped.sample("latency", 20)
    assert stats.counter("llc.miss") == 2
    assert stats.mean("llc.latency") == 20


def test_scoped_nesting():
    stats = Stats()
    inner = stats.scoped("core").scoped("0")
    inner.inc("stall")
    assert stats.counter("core.0.stall") == 1


def test_as_dict_flattens_samples():
    stats = Stats()
    stats.inc("c", 7)
    stats.sample("s", 4)
    stats.sample("s", 6)
    flat = stats.as_dict()
    assert flat["c"] == 7
    assert flat["s.mean"] == 5
    assert flat["s.count"] == 2
    assert flat["s.min"] == 4
    assert flat["s.max"] == 6


def test_counters_and_as_dict_are_key_sorted():
    """Serialized stats must not depend on component init order."""
    stats = Stats()
    stats.inc("zebra")
    stats.inc("apple")
    stats.sample("mid.latency", 3)
    assert list(stats.counters()) == sorted(stats.counters())
    flat = stats.as_dict()
    assert list(flat) == sorted(flat)

    # a second registry hit in the opposite order flattens identically
    mirror = Stats()
    mirror.sample("mid.latency", 3)
    mirror.inc("apple")
    mirror.inc("zebra")
    assert list(mirror.as_dict()) == list(flat)


class TestWarnSuppression:
    def _overflow(self, stats, name, extra):
        for i in range(Stats.MAX_EVENTS_PER_NAME + extra):
            stats.warn(name, f"event {i}")

    def test_counter_exact_sample_bounded(self):
        stats = Stats()
        self._overflow(stats, "oops", extra=5)
        assert stats.counter("oops") == Stats.MAX_EVENTS_PER_NAME + 5
        assert len(stats.events("oops")) == Stats.MAX_EVENTS_PER_NAME
        assert stats.suppressed("oops") == 5

    def test_flush_emits_one_summary(self, caplog):
        stats = Stats()
        self._overflow(stats, "oops", extra=3)
        with caplog.at_level("WARNING", logger="repro.stats"):
            stats.flush_suppressed()
        summaries = [rec for rec in caplog.records
                     if "suppressed" in rec.getMessage()]
        assert len(summaries) == 1
        assert "further 3 occurrences suppressed" in summaries[0].getMessage()

    def test_flush_is_idempotent_and_reports_deltas(self, caplog):
        stats = Stats()
        self._overflow(stats, "oops", extra=2)
        stats.flush_suppressed()
        caplog.clear()
        with caplog.at_level("WARNING", logger="repro.stats"):
            stats.flush_suppressed()      # nothing new: silent
        assert not [rec for rec in caplog.records
                    if "suppressed" in rec.getMessage()]
        stats.warn("oops", "late straggler")
        caplog.clear()
        with caplog.at_level("WARNING", logger="repro.stats"):
            stats.flush_suppressed()      # only the delta
        summaries = [rec for rec in caplog.records
                     if "suppressed" in rec.getMessage()]
        assert len(summaries) == 1
        assert "further 1 occurrences suppressed" in summaries[0].getMessage()

    def test_dump_flushes_and_returns_sorted_dict(self, caplog):
        stats = Stats()
        self._overflow(stats, "oops", extra=4)
        with caplog.at_level("WARNING", logger="repro.stats"):
            flat = stats.dump()
        assert list(flat) == sorted(flat)
        assert flat["oops"] == Stats.MAX_EVENTS_PER_NAME + 4
        assert any("suppressed" in rec.getMessage()
                   for rec in caplog.records)

    def test_under_cap_never_summarizes(self, caplog):
        stats = Stats()
        stats.warn("rare", "only once")
        with caplog.at_level("WARNING", logger="repro.stats"):
            stats.flush_suppressed()
        assert not [rec for rec in caplog.records
                    if "suppressed" in rec.getMessage()]
        assert stats.suppressed("rare") == 0

    def test_scoped_warn_suppression(self):
        stats = Stats()
        scoped = stats.scoped("tc.0")
        for i in range(Stats.MAX_EVENTS_PER_NAME + 2):
            scoped.warn("ack.unmatched", f"ack {i}")
        assert scoped.suppressed("ack.unmatched") == 2
        assert stats.suppressed("tc.0.ack.unmatched") == 2


class TestMerge:
    def test_counters_add(self):
        a, b = Stats(), Stats()
        a.inc("hits", 3)
        b.inc("hits", 4)
        b.inc("misses")
        a.merge(b)
        assert a.counter("hits") == 7
        assert a.counter("misses") == 1
        assert b.counter("hits") == 4          # source untouched

    def test_samples_combine_exactly(self):
        a, b = Stats(), Stats()
        for value in (10, 20):
            a.sample("latency", value)
        for value in (5, 40, 15):
            b.sample("latency", value)
        a.merge(b)
        summary = a.summary("latency")
        assert summary.count == 5
        assert summary.total == 90
        assert summary.minimum == 5
        assert summary.maximum == 40
        assert a.mean("latency") == 18

    def test_histograms_combine_per_bucket(self):
        a, b = Stats(), Stats()
        for value in (2, 3):
            a.hist("cycles", value)
        for value in (2, 100):
            b.hist("cycles", value)
        a.merge(b)
        histogram = a.histogram("cycles")
        assert histogram.count == 4
        assert histogram.buckets()[1] == 3     # 2, 3, 2 share [2, 4)

    def test_merge_equals_sum_of_parts(self):
        # additive and repeatable: merging two registries then reading
        # equals the sum of reading each
        a, b = Stats(), Stats()
        a.inc("n", 2)
        b.inc("n", 5)
        total = Stats()
        total.merge(a)
        total.merge(b)
        assert total.counter("n") == a.counter("n") + b.counter("n")

    def test_prefix_prevents_collisions(self):
        server, worker = Stats(), Stats()
        server.inc("executed", 10)
        worker.inc("executed", 3)
        worker.sample("seconds", 1.5)
        server.merge(worker, prefix="worker3.")
        assert server.counter("executed") == 10        # untouched
        assert server.counter("worker3.executed") == 3
        assert server.mean("worker3.seconds") == 1.5

    def test_events_append_with_bounded_overflow(self):
        a, b = Stats(), Stats()
        for i in range(Stats.MAX_EVENTS_PER_NAME - 1):
            a.warn("oops", f"a{i}")
        for i in range(4):
            b.warn("oops", f"b{i}")
        a.merge(b)
        kept = a.events("oops")
        assert len(kept) == Stats.MAX_EVENTS_PER_NAME
        assert kept[-1] == "b0"                # first incoming kept
        assert a.suppressed("oops") == 3       # the rest counted

    def test_suppressed_counts_add(self):
        a, b = Stats(), Stats()
        for i in range(Stats.MAX_EVENTS_PER_NAME + 2):
            b.warn("oops", f"b{i}")
        assert b.suppressed("oops") == 2
        a.merge(b)
        # b's retained events fill a's empty slots; b's own overflow
        # carries over on top of whatever a had to suppress
        assert a.suppressed("oops") == 2
        assert a.counter("oops") == Stats.MAX_EVENTS_PER_NAME + 2


class TestFromFlat:
    """from_flat rebuilds a counters-only registry from a wire-format
    dump() — the cluster router's way of merging remote /stats."""

    def test_round_trips_counters_through_dump(self):
        stats = Stats()
        stats.inc("serve.executed", 3)
        stats.inc("serve.http.200", 9)
        rebuilt = Stats.from_flat(stats.dump())
        assert rebuilt.counter("serve.executed") == 3
        assert rebuilt.counter("serve.http.200") == 9

    def test_sample_expansions_keep_count_drop_moments(self):
        stats = Stats()
        for value in (10, 20, 30):
            stats.sample("lat", value)
        rebuilt = Stats.from_flat(stats.dump())
        dump = rebuilt.dump()
        assert dump.get("lat.count") == 3
        assert not any(name.endswith((".mean", ".min", ".max"))
                       for name in dump)

    def test_non_numeric_and_bool_values_skipped(self):
        rebuilt = Stats.from_flat({"flag": True, "label": "x",
                                   "n": 2, 3: 4, "none": None})
        assert rebuilt.dump() == {"n": 2}

    def test_from_flat_results_merge_additively(self):
        total = Stats()
        total.merge(Stats.from_flat({"serve.executed": 2}))
        total.merge(Stats.from_flat({"serve.executed": 5}),
                    prefix="node1.")
        assert total.counter("serve.executed") == 2
        assert total.counter("node1.serve.executed") == 5
