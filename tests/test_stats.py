"""Unit tests for the statistics registry."""

from repro.common.stats import Stats


def test_counter_starts_at_zero():
    stats = Stats()
    assert stats.counter("never") == 0


def test_counter_accumulates():
    stats = Stats()
    stats.inc("hits")
    stats.inc("hits", 4)
    assert stats.counter("hits") == 5


def test_sample_summary():
    stats = Stats()
    for value in (10, 20, 30):
        stats.sample("lat", value)
    summary = stats.summary("lat")
    assert summary.count == 3
    assert summary.mean == 20
    assert summary.minimum == 10
    assert summary.maximum == 30


def test_mean_of_unseen_sample_is_zero():
    stats = Stats()
    assert stats.mean("nothing") == 0.0


def test_counters_prefix_filter():
    stats = Stats()
    stats.inc("l1.0.hit", 3)
    stats.inc("l1.1.hit", 2)
    stats.inc("l2.0.hit", 9)
    assert stats.counters("l1.") == {"l1.0.hit": 3, "l1.1.hit": 2}
    assert stats.counter_sum("l1.") == 5


def test_scoped_prefixes_names():
    stats = Stats()
    scoped = stats.scoped("llc")
    scoped.inc("miss", 2)
    scoped.sample("latency", 20)
    assert stats.counter("llc.miss") == 2
    assert stats.mean("llc.latency") == 20


def test_scoped_nesting():
    stats = Stats()
    inner = stats.scoped("core").scoped("0")
    inner.inc("stall")
    assert stats.counter("core.0.stall") == 1


def test_as_dict_flattens_samples():
    stats = Stats()
    stats.inc("c", 7)
    stats.sample("s", 4)
    stats.sample("s", 6)
    flat = stats.as_dict()
    assert flat["c"] == 7
    assert flat["s.mean"] == 5
    assert flat["s.count"] == 2
    assert flat["s.min"] == 4
    assert flat["s.max"] == 6
