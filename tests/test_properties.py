"""Property-based tests (hypothesis) on core structures and invariants."""

import io

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.line import CacheArray
from repro.common.config import TxCacheConfig
from repro.common.stats import Stats
from repro.common.types import CACHE_LINE_SIZE, NVM_BASE, Version, line_addr
from repro.core.txcache import TransactionCache, TxState
from repro.cpu.trace import Trace, TraceOp
from repro.workloads.heap import BumpHeap

lines = st.integers(min_value=0, max_value=15).map(
    lambda i: NVM_BASE + i * CACHE_LINE_SIZE)


# ---------------------------------------------------------------------------
# CAM-FIFO transaction cache
# ---------------------------------------------------------------------------
@st.composite
def tc_scripts(draw):
    """A random interleaving of TC operations as (op, arg) pairs."""
    ops = []
    tx = 1
    open_stores = 0
    for _ in range(draw(st.integers(2, 40))):
        kind = draw(st.sampled_from(["write", "write", "commit", "drain"]))
        if kind == "write":
            ops.append(("write", tx, draw(lines)))
            open_stores += 1
        elif kind == "commit" and open_stores:
            ops.append(("commit", tx, None))
            tx += 1
            open_stores = 0
        elif kind == "drain":
            ops.append(("drain", None, None))
    ops.append(("commit", tx, None))
    ops.append(("drain", None, None))
    return ops


def drain_all(tc):
    """Issue + ack everything issuable until no committed entries remain."""
    progressed = True
    while progressed:
        progressed = False
        for entry in tc.take_issuable():
            progressed = True
        for entry in list(tc.committed_unacked()):
            if entry.issued:
                tc.ack(entry.tag)
                progressed = True


class TestTransactionCacheProperties:
    @given(tc_scripts())
    @settings(max_examples=80, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, script):
        tc = TransactionCache(TxCacheConfig(size_bytes=8 * 64),
                              Stats().scoped("tc"))
        seq = 0
        for op, tx, line in script:
            if op == "write":
                tc.write(tx, line, Version(tx, seq))
                seq += 1
            elif op == "commit":
                tc.commit(tx)
            else:
                drain_all(tc)
            assert 0 <= tc.occupancy <= tc.capacity

    @given(tc_scripts())
    @settings(max_examples=80, deadline=None)
    def test_probe_returns_newest_live_version(self, script):
        tc = TransactionCache(TxCacheConfig(size_bytes=64 * 64),
                              Stats().scoped("tc"))
        newest = {}
        seq = 0
        for op, tx, line in script:
            if op == "write":
                version = Version(tx, seq)
                seq += 1
                if tc.write(tx, line, version):
                    newest[line] = version
            elif op == "commit":
                tc.commit(tx)
            else:
                drain_all(tc)
                newest.clear()
        for line, version in newest.items():
            entry = tc.probe(line)
            assert entry is not None and entry.version == version

    @given(tc_scripts())
    @settings(max_examples=80, deadline=None)
    def test_full_drain_empties_the_fifo(self, script):
        tc = TransactionCache(TxCacheConfig(size_bytes=64 * 64),
                              Stats().scoped("tc"))
        seq = 0
        for op, tx, line in script:
            if op == "write":
                tc.write(tx, line, Version(tx, seq))
                seq += 1
            elif op == "commit":
                tc.commit(tx)
        # commit everything then drain: only active entries of the last
        # (never-committed) tx may survive — the script commits last.
        drain_all(tc)
        assert tc.committed_unacked() == []

    @given(st.lists(lines, min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_issue_order_matches_insertion_order(self, addrs):
        tc = TransactionCache(TxCacheConfig(size_bytes=64 * 64,
                                            coalesce_writes=False),
                              Stats().scoped("tc"))
        for seq, addr in enumerate(addrs):
            assert tc.write(1, addr, Version(1, seq))
        tc.commit(1)
        issued = tc.take_issuable()
        assert [e.version.seq for e in issued] == sorted(
            e.version.seq for e in issued)
        assert [e.tag for e in issued] == [line_addr(a) for a in addrs]


# ---------------------------------------------------------------------------
# cache array
# ---------------------------------------------------------------------------
class TestCacheArrayProperties:
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_resident_count_bounded_by_capacity(self, accesses):
        array = CacheArray(num_sets=4, assoc=2, line_size=64)
        for index in accesses:
            array.insert(index * 64)
        assert array.resident_count() <= 4 * 2

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_most_recent_insert_always_resident(self, accesses):
        array = CacheArray(num_sets=4, assoc=2, line_size=64)
        for index in accesses:
            array.insert(index * 64)
            assert array.contains(index * 64)


# ---------------------------------------------------------------------------
# heap allocator
# ---------------------------------------------------------------------------
class TestHeapProperties:
    @given(st.lists(st.integers(1, 400), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_allocations_are_disjoint_and_aligned(self, sizes):
        heap = BumpHeap(base=1 << 20, capacity=1 << 20)
        spans = []
        for size in sizes:
            addr = heap.alloc(size)
            assert addr % 8 == 0
            for other_addr, other_size in spans:
                assert addr >= other_addr + other_size or \
                    addr + size <= other_addr
            spans.append((addr, size))


# ---------------------------------------------------------------------------
# trace serialization
# ---------------------------------------------------------------------------
op_strategy = st.builds(
    TraceOp,
    op=st.sampled_from(list(__import__(
        "repro.cpu.trace", fromlist=["OpType"]).OpType)),
    addr=st.integers(0, NVM_BASE + (1 << 20)),
    count=st.integers(1, 100),
    tx_id=st.one_of(st.none(), st.integers(1, 1000)),
    version=st.one_of(st.none(), st.builds(Version,
                                           tx_id=st.integers(1, 100),
                                           seq=st.integers(-1, 1000))),
)


class TestTraceSerializationProperties:
    @given(st.lists(op_strategy, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_ops(self, ops):
        trace = Trace("prop", ops)
        buffer = io.StringIO()
        trace.dump(buffer)
        buffer.seek(0)
        assert Trace.load(buffer).ops == ops
