"""Integration tests for the L1/L2/LLC hierarchy over the memory system."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import small_machine_config
from repro.common.event import Simulator
from repro.common.stats import Stats
from repro.common.types import CACHE_LINE_SIZE, NVM_BASE, Version
from repro.memory.system import MemorySystem


def build(num_cores=2, config=None):
    sim = Simulator()
    stats = Stats()
    cfg = config or small_machine_config(num_cores=num_cores)
    memory = MemorySystem(sim, cfg, stats)
    hierarchy = CacheHierarchy(sim, cfg, stats, memory)
    return sim, stats, memory, hierarchy


def run_load(sim, hierarchy, core, addr):
    out = {}

    def done(latency, version):
        out["latency"] = latency
        out["version"] = version

    hierarchy.load(core, addr, done)
    sim.run()
    return out


def run_store(sim, hierarchy, core, addr, version, **kw):
    out = {}
    hierarchy.store(core, addr, version, on_complete=lambda lat: out.update(latency=lat), **kw)
    sim.run()
    return out


class TestLoadPath:
    def test_cold_load_comes_from_memory(self):
        sim, stats, memory, hierarchy = build()
        memory.poke(NVM_BASE, Version(0, 1))
        out = run_load(sim, hierarchy, 0, NVM_BASE)
        assert out["version"] == Version(0, 1)
        # at least L1+L2+LLC lookups plus the NVM array access
        assert out["latency"] > 130

    def test_second_load_hits_l1(self):
        sim, stats, memory, hierarchy = build()
        run_load(sim, hierarchy, 0, NVM_BASE)
        out = run_load(sim, hierarchy, 0, NVM_BASE)
        assert out["latency"] == hierarchy.l1[0].latency
        assert stats.counter("l1.0.hit") == 1

    def test_llc_hit_after_other_core_fill(self):
        sim, stats, memory, hierarchy = build()
        run_load(sim, hierarchy, 0, NVM_BASE)
        out = run_load(sim, hierarchy, 1, NVM_BASE)
        expected = (hierarchy.l1[1].latency + hierarchy.l2[1].latency
                    + hierarchy.llc.latency)
        assert out["latency"] == expected
        assert stats.counter("llc.hit") == 1

    def test_dram_load_faster_than_nvm_load(self):
        sim, stats, memory, hierarchy = build()
        nvm = run_load(sim, hierarchy, 0, NVM_BASE)
        dram = run_load(sim, hierarchy, 0, 1 << 20)
        assert dram["latency"] < nvm["latency"]

    def test_concurrent_misses_coalesce(self):
        sim, stats, memory, hierarchy = build()
        results = []
        hierarchy.load(0, NVM_BASE, lambda lat, v: results.append(lat))
        hierarchy.load(0, NVM_BASE + 8, lambda lat, v: results.append(lat))
        sim.run()
        assert len(results) == 2
        assert stats.counter("hierarchy.mshr.coalesced") == 1
        assert stats.counter("mem.nvm.read.requests") == 1


class TestStorePath:
    def test_store_hit_marks_dirty_and_updates_version(self):
        sim, stats, memory, hierarchy = build()
        run_load(sim, hierarchy, 0, NVM_BASE)
        run_store(sim, hierarchy, 0, NVM_BASE, Version(1, 0), persistent=True, tx_id=1)
        entry = hierarchy.l1[0].probe(NVM_BASE)
        assert entry.dirty and entry.persistent and entry.tx_id == 1
        assert entry.version == Version(1, 0)

    def test_store_miss_allocates(self):
        sim, stats, memory, hierarchy = build()
        out = run_store(sim, hierarchy, 0, NVM_BASE, Version(1, 0))
        assert out["latency"] > 100  # had to fetch from NVM
        assert hierarchy.l1[0].probe(NVM_BASE).dirty

    def test_store_then_load_returns_new_version(self):
        sim, stats, memory, hierarchy = build()
        run_store(sim, hierarchy, 0, NVM_BASE, Version(3, 1))
        out = run_load(sim, hierarchy, 0, NVM_BASE)
        assert out["version"] == Version(3, 1)

    def test_newest_version_searches_hierarchy_then_memory(self):
        sim, stats, memory, hierarchy = build()
        memory.poke(NVM_BASE, Version(0, 0))
        assert hierarchy.newest_version(0, NVM_BASE) == Version(0, 0)
        run_store(sim, hierarchy, 0, NVM_BASE, Version(5, 2))
        assert hierarchy.newest_version(0, NVM_BASE) == Version(5, 2)


class TestEvictions:
    def test_dirty_eviction_reaches_memory(self):
        """Fill far past total capacity; dirty DRAM data must be written back
        and later reload with the stored version."""
        sim, stats, memory, hierarchy = build(num_cores=1)
        base = 1 << 20
        lines = 3000  # far beyond the small config's 256 KB LLC would hold? (4096 lines) -> use more
        lines = 6000
        for i in range(lines):
            run_store(sim, hierarchy, 0, base + i * CACHE_LINE_SIZE, Version(1, i))
        assert stats.counter("hierarchy.llc.writebacks") > 0
        out = run_load(sim, hierarchy, 0, base)
        assert out["version"] == Version(1, 0)

    def test_drop_persistent_evictions(self):
        sim, stats, memory, hierarchy = build(num_cores=1)
        hierarchy.drop_persistent_evictions = True
        for i in range(6000):
            run_store(sim, hierarchy, 0, NVM_BASE + i * CACHE_LINE_SIZE,
                      Version(1, i), persistent=True)
        assert stats.counter("hierarchy.llc.dropped_evictions") > 0
        # nothing was written back to the NVM
        assert stats.counter("mem.nvm.write.requests") == 0

    def test_volatile_lines_not_dropped(self):
        sim, stats, memory, hierarchy = build(num_cores=1)
        hierarchy.drop_persistent_evictions = True
        for i in range(6000):
            run_store(sim, hierarchy, 0, (1 << 20) + i * CACHE_LINE_SIZE, Version(1, i))
        assert stats.counter("hierarchy.llc.dropped_evictions") == 0
        assert stats.counter("mem.dram.write.requests") > 0


class TestLlcProbe:
    def test_probe_hit_merges_newer_data_over_fill(self):
        sim, stats, memory, hierarchy = build()
        memory.poke(NVM_BASE, Version(0, 0))  # stale NVM copy
        hierarchy.llc_probe = lambda line: (3, Version(9, 9))
        out = run_load(sim, hierarchy, 0, NVM_BASE)
        # data comes from the TC (newest), timing from the NVM fill
        assert out["version"] == Version(9, 9)
        assert stats.counter("mem.nvm.read.requests") == 1
        assert stats.counter("hierarchy.llc_probe.hit") == 1
        assert out["latency"] > 130

    def test_probe_miss_falls_through_to_memory(self):
        sim, stats, memory, hierarchy = build()
        hierarchy.llc_probe = lambda line: None
        memory.poke(NVM_BASE, Version(0, 7))
        out = run_load(sim, hierarchy, 0, NVM_BASE)
        assert out["version"] == Version(0, 7)
        assert stats.counter("hierarchy.llc_probe.miss") == 1

    def test_probe_not_used_for_volatile_addresses(self):
        sim, stats, memory, hierarchy = build()
        hierarchy.llc_probe = lambda line: (3, Version(9, 9))
        out = run_load(sim, hierarchy, 0, 1 << 20)
        assert out["version"] != Version(9, 9)


class TestSchemeHooks:
    def test_block_until_delays_llc_accesses_only(self):
        sim, stats, memory, hierarchy = build()
        run_load(sim, hierarchy, 0, NVM_BASE)  # warm caches
        hierarchy.block_until(sim.now + 500)
        # L1 hit: unaffected by the LLC-level block
        out = run_load(sim, hierarchy, 0, NVM_BASE)
        assert out["latency"] == hierarchy.l1[0].latency
        # a cold access that reaches the LLC pays the block wait
        out = run_load(sim, hierarchy, 0, NVM_BASE + (1 << 16))
        assert out["latency"] >= 500

    def test_writeback_line_clwb(self):
        sim, stats, memory, hierarchy = build()
        run_store(sim, hierarchy, 0, NVM_BASE, Version(2, 0), persistent=True)
        cycles = []
        hierarchy.writeback_line(0, NVM_BASE, cycles.append)
        sim.run()
        assert len(cycles) == 1
        assert memory.durable_image.final_state()[NVM_BASE] == Version(2, 0)
        assert not hierarchy.l1[0].probe(NVM_BASE).dirty

    def test_writeback_clean_line_completes_fast(self):
        sim, stats, memory, hierarchy = build()
        cycles = []
        hierarchy.writeback_line(0, NVM_BASE, cycles.append)
        sim.run()
        assert len(cycles) == 1
        assert stats.counter("mem.nvm.write.requests") == 0

    def test_flush_to_llc_moves_dirty_data_down(self):
        sim, stats, memory, hierarchy = build()
        run_store(sim, hierarchy, 0, NVM_BASE, Version(4, 0), persistent=True)
        latency = hierarchy.flush_to_llc(0, NVM_BASE, pin=True)
        assert latency == hierarchy.llc.latency
        entry = hierarchy.llc.probe(NVM_BASE)
        assert entry.dirty and entry.pinned and entry.version == Version(4, 0)
        assert not hierarchy.l1[0].probe(NVM_BASE).dirty

    def test_pin_and_unpin(self):
        sim, stats, memory, hierarchy = build()
        hierarchy.pin_llc_line(NVM_BASE, Version(1, 0), tx_id=1)
        assert hierarchy.llc.probe(NVM_BASE).pinned
        hierarchy.unpin_llc_line(NVM_BASE)
        assert not hierarchy.llc.probe(NVM_BASE).pinned

    def test_invalidate_everywhere(self):
        sim, stats, memory, hierarchy = build()
        run_load(sim, hierarchy, 0, NVM_BASE)
        hierarchy.invalidate_everywhere(NVM_BASE)
        assert hierarchy.l1[0].probe(NVM_BASE) is None
        assert hierarchy.llc.probe(NVM_BASE) is None


class TestCoherence:
    def test_writer_invalidates_other_core_copy(self):
        sim, stats, memory, hierarchy = build()
        run_load(sim, hierarchy, 0, NVM_BASE)
        run_load(sim, hierarchy, 1, NVM_BASE)
        run_store(sim, hierarchy, 1, NVM_BASE, Version(8, 0))
        assert hierarchy.l1[0].probe(NVM_BASE) is None
        assert stats.counter("hierarchy.coherence.invalidations") >= 1

    def test_reader_sees_other_cores_write(self):
        sim, stats, memory, hierarchy = build()
        run_store(sim, hierarchy, 0, NVM_BASE, Version(8, 1))
        out = run_load(sim, hierarchy, 1, NVM_BASE)
        assert out["version"] == Version(8, 1)
