"""Property-based crash-consistency and data-structure tests."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.crash import check_recovery, measure_run_length, run_with_crash
from repro.workloads.btree import BTreeWorkload
from repro.workloads.rbtree import RbTreeWorkload

# one shared uninterrupted-run length per scheme (the trace is
# deterministic for a fixed seed, so this is stable across examples)
_TOTALS = {}


def total_for(scheme):
    if scheme not in _TOTALS:
        _TOTALS[scheme] = measure_run_length(
            "sps", scheme, operations=25, seed=21, array_elements=64)
    return _TOTALS[scheme]


class TestCrashAtomicityProperties:
    """Failure atomicity must hold at *every* crash cycle, not just the
    hand-picked fractions — hypothesis hunts for bad cycles."""

    @given(fraction=st.floats(0.01, 0.99))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_txcache_consistent_at_any_cycle(self, fraction):
        total = total_for("txcache")
        report = run_with_crash("sps", "txcache",
                                max(1, int(total * fraction)),
                                operations=25, seed=21, array_elements=64)
        assert report.consistent, report.violations[:3]

    @given(fraction=st.floats(0.01, 0.99))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sp_consistent_at_any_cycle(self, fraction):
        total = total_for("sp")
        report = run_with_crash("sps", "sp",
                                max(1, int(total * fraction)),
                                operations=25, seed=21, array_elements=64)
        assert report.consistent, report.violations[:3]

    @given(fraction=st.floats(0.01, 0.99))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_kiln_consistent_at_any_cycle(self, fraction):
        total = total_for("kiln")
        report = run_with_crash("sps", "kiln",
                                max(1, int(total * fraction)),
                                operations=25, seed=21, array_elements=64)
        assert report.consistent, report.violations[:3]


class TestDataStructureProperties:
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_rbtree_invariants_under_random_inserts(self, keys):
        tree = RbTreeWorkload(seed=1, initial_keys=0)
        for key in keys:
            tree.insert(key, key * 2)
        tree.check_invariants()
        assert tree.sorted_keys() == sorted(set(keys))

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_rbtree_search_matches_dict(self, keys):
        tree = RbTreeWorkload(seed=1, initial_keys=0)
        reference = {}
        for key in keys:
            tree.insert(key, key * 3)
            reference[key] = key * 3
        for key, value in reference.items():
            assert tree.search(key) == value

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_btree_invariants_under_random_inserts(self, keys):
        tree = BTreeWorkload(seed=1, initial_keys=0)
        for key in keys:
            tree.insert(key, key * 2)
        tree.check_invariants()
        assert tree.sorted_keys() == sorted(set(keys))

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_btree_search_matches_dict(self, keys):
        tree = BTreeWorkload(seed=1, initial_keys=0)
        reference = {}
        for key in keys:
            tree.insert(key, key * 3)
            reference[key] = key * 3
        for key, value in reference.items():
            assert tree.search(key) == value
