"""Property-based crash-consistency and data-structure tests."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import small_machine_config
from repro.litmus import check_membership, message_passing, tx_summaries
from repro.litmus.runner import iter_crash_states  # registers broken_commit
from repro.persistence import scheme_names
from repro.sim.crash import check_recovery, measure_run_length, run_with_crash
from repro.sim.system import System
from repro.workloads.btree import BTreeWorkload
from repro.workloads.rbtree import RbTreeWorkload

# one shared uninterrupted-run length per scheme (the trace is
# deterministic for a fixed seed, so this is stable across examples)
_TOTALS = {}


def total_for(scheme):
    if scheme not in _TOTALS:
        _TOTALS[scheme] = measure_run_length(
            "sps", scheme, operations=25, seed=21, array_elements=64)
    return _TOTALS[scheme]


class TestCrashAtomicityProperties:
    """Failure atomicity must hold at *every* crash cycle, not just the
    hand-picked fractions — hypothesis hunts for bad cycles."""

    @given(fraction=st.floats(0.01, 0.99))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_txcache_consistent_at_any_cycle(self, fraction):
        total = total_for("txcache")
        report = run_with_crash("sps", "txcache",
                                max(1, int(total * fraction)),
                                operations=25, seed=21, array_elements=64)
        assert report.consistent, report.violations[:3]

    @given(fraction=st.floats(0.01, 0.99))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sp_consistent_at_any_cycle(self, fraction):
        total = total_for("sp")
        report = run_with_crash("sps", "sp",
                                max(1, int(total * fraction)),
                                operations=25, seed=21, array_elements=64)
        assert report.consistent, report.violations[:3]

    @given(fraction=st.floats(0.01, 0.99))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_kiln_consistent_at_any_cycle(self, fraction):
        total = total_for("kiln")
        report = run_with_crash("sps", "kiln",
                                max(1, int(total * fraction)),
                                operations=25, seed=21, array_elements=64)
        assert report.consistent, report.violations[:3]

    @pytest.mark.parametrize("scheme",
                             ["undo_log", "redo_log", "hybrid_dram"])
    @given(fraction=st.floats(0.01, 0.99))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_swtx_consistent_at_any_cycle(self, scheme, fraction):
        total = total_for(scheme)
        report = run_with_crash("sps", scheme,
                                max(1, int(total * fraction)),
                                operations=25, seed=21, array_elements=64)
        assert report.consistent, report.violations[:3]


# -- registry-wide oracle differential -------------------------------------
#
# The litmus suite runs each scheme against the legal-persist-set
# oracle at *every* cycle; this generalizes that to the scheme
# REGISTRY: whatever is registered (enum members and string-named
# extras alike) must agree with the oracle at hypothesis-chosen crash
# cycles.  A new scheme gets this check by the act of registering.
#
# Exclusions: ``optimal`` makes no persistence guarantee at all (it is
# the no-overhead upper bound, kept out of the litmus CLI for the same
# reason), and ``broken_commit`` is the deliberately broken negative
# control — asserted to VIOLATE below, so the oracle itself stays
# honest.

_ORACLE_EXEMPT = {"optimal", "broken_commit"}

# one stepped crash sweep per scheme, shared across examples (the
# stepped states are pure functions of the deterministic run)
_CRASH_STATES = {}


def crash_states_for(scheme):
    if scheme not in _CRASH_STATES:
        program = message_passing()
        traces = program.to_traces()
        system = System(
            small_machine_config(num_cores=program.num_cores), scheme)
        system.load_traces(traces)
        _CRASH_STATES[scheme] = (tx_summaries(traces),
                                 list(iter_crash_states(system)))
    return _CRASH_STATES[scheme]


class TestRegistrySchemesAgreeWithOracle:
    @pytest.mark.parametrize(
        "scheme",
        [name for name in scheme_names() if name not in _ORACLE_EXEMPT])
    @given(fraction=st.floats(0.0, 1.0))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_durable_lines_in_legal_persist_set(self, scheme, fraction):
        summaries, states = crash_states_for(scheme)
        cycle, committed, recovered = states[
            min(len(states) - 1, int(fraction * len(states)))]
        messages = check_membership(summaries, committed, recovered)
        assert messages == [], f"{scheme} @ cycle {cycle}: {messages}"

    def test_broken_commit_violates_the_oracle(self):
        """Negative control: the deliberately broken scheme must be
        caught — otherwise the differential above proves nothing."""
        summaries, states = crash_states_for("broken_commit")
        assert any(check_membership(summaries, committed, recovered)
                   for _cycle, committed, recovered in states)


class TestDataStructureProperties:
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_rbtree_invariants_under_random_inserts(self, keys):
        tree = RbTreeWorkload(seed=1, initial_keys=0)
        for key in keys:
            tree.insert(key, key * 2)
        tree.check_invariants()
        assert tree.sorted_keys() == sorted(set(keys))

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_rbtree_search_matches_dict(self, keys):
        tree = RbTreeWorkload(seed=1, initial_keys=0)
        reference = {}
        for key in keys:
            tree.insert(key, key * 3)
            reference[key] = key * 3
        for key, value in reference.items():
            assert tree.search(key) == value

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_btree_invariants_under_random_inserts(self, keys):
        tree = BTreeWorkload(seed=1, initial_keys=0)
        for key in keys:
            tree.insert(key, key * 2)
        tree.check_invariants()
        assert tree.sorted_keys() == sorted(set(keys))

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_btree_search_matches_dict(self, keys):
        tree = BTreeWorkload(seed=1, initial_keys=0)
        reference = {}
        for key in keys:
            tree.insert(key, key * 3)
            reference[key] = key * 3
        for key, value in reference.items():
            assert tree.search(key) == value
