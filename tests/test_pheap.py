"""Tests for the NV-heaps-style persistent object API."""

import pytest

from repro.pheap import (
    PersistentArena,
    PersistentCounter,
    PersistentDict,
    PersistentList,
    TransactionError,
)


def arena():
    return PersistentArena("test")


class TestArena:
    def test_persistent_store_outside_tx_rejected(self):
        a = arena()
        addr = None
        with a.transaction():
            addr = a.p_malloc(8)
            a.write_word(addr)
        with pytest.raises(TransactionError, match="outside a transaction"):
            a.write_word(addr)

    def test_volatile_store_allowed_outside_tx(self):
        a = arena()
        addr = a.malloc(8)
        a.write_word(addr)  # no error: DRAM

    def test_trace_finalization_is_idempotent_and_freezing(self):
        a = arena()
        with a.transaction():
            a.write_word(a.p_malloc(8))
        trace = a.trace()
        assert a.trace() is trace
        with pytest.raises(TransactionError, match="finalized"):
            a.compute(1)

    def test_trace_validates(self):
        a = arena()
        with a.transaction():
            a.write_word(a.p_malloc(8))
        a.trace().validate()


class TestPersistentDict:
    def test_set_get(self):
        a = arena()
        d = PersistentDict(a)
        with a.transaction():
            d["x"] = 1
            d["y"] = 2
        assert d["x"] == 1
        assert d.get("y") == 2
        assert d.get("z", 99) == 99
        assert len(d) == 2

    def test_update_in_place(self):
        a = arena()
        d = PersistentDict(a)
        with a.transaction():
            d["k"] = 1
        with a.transaction():
            d["k"] = 2
        assert d["k"] == 2
        assert len(d) == 1

    def test_delete(self):
        a = arena()
        d = PersistentDict(a, buckets=2)
        with a.transaction():
            for key in range(6):
                d[key] = key * 10
        with a.transaction():
            del d[3]
        assert 3 not in d
        assert len(d) == 5
        with pytest.raises(KeyError):
            _ = d[3]

    def test_missing_key_raises(self):
        d = PersistentDict(arena())
        with pytest.raises(KeyError):
            _ = d["nope"]

    def test_collisions_resolved_by_chaining(self):
        a = arena()
        d = PersistentDict(a, buckets=1)
        with a.transaction():
            for key in range(10):
                d[key] = key
        assert sorted(d.keys()) == list(range(10))

    def test_mutation_outside_tx_rejected(self):
        d = PersistentDict(arena())
        with pytest.raises(TransactionError):
            d["k"] = 1


class TestPersistentList:
    def test_append_and_index(self):
        a = arena()
        lst = PersistentList(a, capacity=2)
        with a.transaction():
            for value in ("a", "b", "c", "d", "e"):
                lst.append(value)
        assert list(lst) == ["a", "b", "c", "d", "e"]
        assert lst[-1] == "e"
        assert len(lst) == 5

    def test_growth_emits_copy_traffic(self):
        a = arena()
        lst = PersistentList(a, capacity=2)
        with a.transaction():
            for value in range(8):
                lst.append(value)
        trace = a.trace()
        # growth copies: strictly more stores than one per append
        assert trace.persistent_stores > 8

    def test_setitem(self):
        a = arena()
        lst = PersistentList(a)
        with a.transaction():
            lst.append(1)
            lst[0] = 42
        assert lst[0] == 42

    def test_index_error(self):
        lst = PersistentList(arena())
        with pytest.raises(IndexError):
            _ = lst[0]


class TestPersistentCounter:
    def test_increment(self):
        a = arena()
        counter = PersistentCounter(a)
        with a.transaction():
            counter.increment()
            counter.increment(5)
        assert counter.value == 6


class TestEndToEnd:
    def build_program(self):
        a = PersistentArena("shop")
        stock = PersistentDict(a, buckets=16)
        log = PersistentList(a)
        with a.transaction():
            stock["widgets"] = 10
            stock["gadgets"] = 5
        for order in range(20):
            with a.transaction():
                item = "widgets" if order % 2 else "gadgets"
                stock[item] = stock[item] - 1 if stock[item] else 0
                log.append((item, order))
        return a

    def test_program_runs_under_txcache(self):
        a = self.build_program()
        result = a.run("txcache")
        assert result.transactions == a.trace().transactions
        assert result.cycles > 0

    def test_program_is_crash_consistent(self):
        a = self.build_program()
        for report in a.crash_test("txcache"):
            assert report.consistent, report.violations[:3]

    def test_program_tears_without_persistence(self):
        # under Optimal nothing is guaranteed; the arena API still runs
        a = self.build_program()
        result = a.run("optimal")
        assert result.transactions > 0
