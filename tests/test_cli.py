"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope", "txcache"])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "sps", "nope"])


class TestTables:
    def test_tables_prints_all_three(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "CAM FIFO" in out


class TestWorkloads:
    def test_lists_paper_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("graph", "rbtree", "sps", "btree", "hashtable"):
            assert name in out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "sps", "txcache", "--operations", "20",
                     "--cores", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sps / txcache" in out
        assert "IPC" in out

    def test_run_json_output(self, capsys):
        code = main(["run", "sps", "optimal", "--operations", "20",
                     "--cores", "1", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workload"] == "sps"
        assert data["scheme"] == "optimal"
        assert data["cycles"] > 0
        assert data["transactions"] > 0


class TestCompare:
    def test_compare_prints_all_schemes(self, capsys):
        code = main(["compare", "hashtable", "--operations", "20",
                     "--cores", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for scheme in ("sp", "txcache", "kiln", "optimal"):
            assert scheme in out


class TestCrash:
    def test_crash_consistent_scheme_exits_zero(self, capsys):
        code = main(["crash", "sps", "txcache", "--operations", "15",
                     "--fractions", "0.3", "0.7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CONSISTENT" in out
        assert "TORN" not in out

    def test_crash_optimal_reports_but_exits_zero(self, capsys):
        # optimal has no recovery contract; torn state is informational
        code = main(["crash", "sps", "optimal", "--operations", "15",
                     "--fractions", "0.5"])
        assert code == 0


class TestMix:
    def test_mix_runs_heterogeneous_cores(self, capsys):
        code = main(["mix", "sps", "hashtable", "--operations", "15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "core 0 (sps.core0)" in out
        assert "core 1 (hashtable.core1)" in out


class TestValidate:
    def test_validate_sane_setup(self, capsys):
        code = main(["validate", "rbtree", "--operations", "50",
                     "--cores", "2"])
        assert code == 0
        assert "looks sane" in capsys.readouterr().out


class TestTrace:
    def test_trace_stats(self, capsys):
        code = main(["trace", "graph", "--operations", "25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "transactions:" in out

    def test_trace_dump_round_trip(self, tmp_path, capsys):
        out_file = tmp_path / "trace.jsonl"
        code = main(["trace", "rbtree", "--operations", "10",
                     "--out", str(out_file)])
        assert code == 0
        from repro.cpu.trace import Trace
        with open(out_file) as fp:
            trace = Trace.load(fp)
        assert trace.transactions > 0
        trace.validate()


class TestTraceSimulation:
    def test_capture_writes_valid_chrome_trace(self, tmp_path, capsys):
        out_file = tmp_path / "sim.trace.json"
        code = main(["trace", "--workload", "hashtable",
                     "--scheme", "txcache", "--operations", "20",
                     "--epoch", "50", "--out", str(out_file)])
        assert code == 0
        text = capsys.readouterr().out
        assert "stall attribution" in text
        assert "perfetto" in text
        from repro.obs.schema import validate_chrome_trace
        trace = json.loads(out_file.read_text())
        assert validate_chrome_trace(trace) == []

    def test_positional_workload_also_works(self, tmp_path):
        out_file = tmp_path / "sim.trace.json"
        code = main(["trace", "sps", "--scheme", "sp",
                     "--operations", "10", "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()

    def test_workload_required(self, capsys):
        assert main(["trace"]) == 2
        assert "workload is required" in capsys.readouterr().err


class TestVersion:
    def test_version_prints_and_exits_zero(self, capsys):
        from repro.cli import package_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {package_version()}"

    def test_version_matches_pyproject(self):
        import pathlib
        from repro.cli import package_version

        pyproject = pathlib.Path(__file__).resolve().parent.parent \
            / "pyproject.toml"
        assert f'version = "{package_version()}"' in pyproject.read_text()


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7341
        assert args.jobs == 2
        assert args.max_queue == 64
        assert args.max_inflight is None
        assert args.cache_dir is None
        assert args.cache_max_bytes is None

    def test_all_knobs(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "4", "--cache-dir", "/tmp/c",
             "--max-queue", "16", "--max-inflight", "2",
             "--cache-max-bytes", "1048576"])
        assert (args.port, args.jobs, args.max_queue,
                args.max_inflight, args.cache_max_bytes) \
            == (0, 4, 16, 2, 1048576)


class TestSubmit:
    def test_flags_build_the_wire_request(self):
        from repro.cli import _submit_request_from_args

        args = build_parser().parse_args(
            ["submit", "sps", "txcache", "--operations", "20",
             "--seed", "7", "--cores", "1", "--preset", "small",
             "--deadline-ms", "500"])
        assert _submit_request_from_args(args) == {
            "kind": "experiment", "workload": "sps", "scheme": "txcache",
            "operations": 20, "seed": 7, "deadline_ms": 500,
            "config": {"num_cores": 1, "preset": "small"},
        }

    def test_file_spec_is_passed_through_verbatim(self, tmp_path):
        from repro.cli import _submit_request_from_args

        spec = {"workload": "sps", "scheme": "wal", "operations": 9}
        path = tmp_path / "request.json"
        path.write_text(json.dumps(spec))
        args = build_parser().parse_args(["submit", "--file", str(path)])
        assert _submit_request_from_args(args) == spec

    def test_missing_workload_is_usage_error(self, capsys):
        assert main(["submit"]) == 2
        assert "WORKLOAD" in capsys.readouterr().err

    def test_unreachable_server_exits_one(self, capsys):
        # nothing listens on port 1
        assert main(["submit", "sps", "txcache",
                     "--port", "1", "--timeout", "2"]) == 1
        assert "connection failed" in capsys.readouterr().err


class TestClusterCommand:
    def test_mode_is_required_and_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "explode"])

    def test_defaults(self):
        args = build_parser().parse_args(["cluster", "chaos"])
        assert args.cluster_mode == "chaos"
        assert args.nodes == 3
        assert args.replication == 2
        assert args.seed == 0
        assert args.hangs is False

    def test_bad_topologies_are_usage_errors(self, capsys):
        assert main(["cluster", "chaos", "--nodes", "0"]) == 2
        assert "--nodes" in capsys.readouterr().err
        assert main(["cluster", "chaos", "--nodes", "2",
                     "--replication", "5"]) == 2
        assert "--replication" in capsys.readouterr().err
