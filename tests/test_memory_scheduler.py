"""Focused tests for memory-controller scheduling policies."""

import pytest

from dataclasses import replace

from repro.common.config import paper_machine_config
from repro.common.event import Simulator
from repro.common.stats import Stats
from repro.common.types import NVM_BASE, MemReqType, MemRequest
from repro.memory.controller import MemoryController


def make(config=None, **overrides):
    base = config or paper_machine_config().nvm
    if overrides:
        base = replace(base, **overrides)
    sim = Simulator()
    stats = Stats()
    controller = MemoryController(sim, base, stats.scoped("nvm"), 2.0)
    return sim, stats, controller


def read(addr, cb=None):
    return MemRequest(addr=addr, req_type=MemReqType.READ, callback=cb)


def write(addr, cb=None):
    return MemRequest(addr=addr, req_type=MemReqType.WRITE, callback=cb)


def same_bank_lines(config, count, start=0):
    """Addresses hitting one bank (stride = num_banks lines)."""
    stride = config.num_banks * 64
    return [NVM_BASE + start + i * stride for i in range(count)]


class TestFrFcfs:
    def test_row_hit_preferred_over_older_row_miss(self):
        cfg = paper_machine_config().nvm
        sim, stats, ctrl = make()
        bank_lines = same_bank_lines(cfg, 3)
        order = []
        # open a row with one access
        ctrl.enqueue(read(bank_lines[0], cb=lambda r, c: order.append("warm")))
        sim.run()
        # now queue a row-miss (far row) before a row-hit (same row)
        far = NVM_BASE + cfg.num_banks * cfg.timing.row_size_bytes * 4
        ctrl.enqueue(read(far, cb=lambda r, c: order.append("miss")))
        ctrl.enqueue(read(bank_lines[1], cb=lambda r, c: order.append("hit")))
        sim.run()
        assert order == ["warm", "hit", "miss"]

    def test_different_banks_overlap(self):
        cfg = paper_machine_config().nvm
        sim, stats, ctrl = make()
        done = []
        # two adjacent lines -> different banks, can overlap in time
        ctrl.enqueue(read(NVM_BASE, cb=lambda r, c: done.append(c)))
        ctrl.enqueue(read(NVM_BASE + 64, cb=lambda r, c: done.append(c)))
        sim.run()
        # overlapped: second completes well before 2x a serial latency
        assert done[1] - done[0] < 50


class TestDrainHysteresis:
    def test_drain_enters_and_exits(self):
        sim, stats, ctrl = make(write_queue_entries=10, read_queue_entries=4)
        for i in range(10):
            ctrl.enqueue(write(NVM_BASE + i * 64))
        sim.run()
        assert stats.counter("nvm.write.drain_entries") >= 1
        assert not ctrl._drain_mode  # exited once the queue drained

    def test_below_threshold_no_drain(self):
        sim, stats, ctrl = make(write_queue_entries=10)
        for i in range(3):
            ctrl.enqueue(write(NVM_BASE + i * 64))
        sim.run()
        assert stats.counter("nvm.write.drain_entries") == 0


class TestWriteAntiStarvation:
    def _run_with_read_stream(self, max_reads=40):
        """One write plus a back-to-back read stream on the same bank
        (different lines, so read forwarding cannot shortcut)."""
        cfg = paper_machine_config().nvm
        sim, stats, ctrl = make()
        write_line, read_line = same_bank_lines(cfg, 2)
        write_done = []
        ctrl.enqueue(write(write_line, cb=lambda r, c: write_done.append(c)))
        state = {"count": 0}

        def feed(request, cycle):
            state["count"] += 1
            if state["count"] < max_reads and not write_done:
                ctrl.enqueue(read(read_line, cb=feed))

        ctrl.enqueue(read(read_line, cb=feed))
        sim.run()
        return stats, write_done

    def test_steady_reads_do_not_starve_writes(self):
        stats, write_done = self._run_with_read_stream()
        assert write_done, "write starved forever"
        # granted within the starvation window + a few services
        assert write_done[0] < 5 * MemoryController.WRITE_STARVATION_LIMIT

    def test_starvation_grant_counted(self):
        stats, write_done = self._run_with_read_stream()
        assert stats.counter("nvm.write.starvation_grants") >= 1


class TestSameLineOrdering:
    def test_writes_to_same_line_never_reorder(self):
        sim, stats, ctrl = make()
        from repro.common.types import Version
        completions = []
        for seq in range(8):
            request = MemRequest(addr=NVM_BASE, req_type=MemReqType.WRITE,
                                 version=Version(1, seq),
                                 callback=lambda r, c: completions.append(
                                     r.version.seq))
            ctrl.enqueue(request)
        sim.run()
        assert completions == sorted(completions)
