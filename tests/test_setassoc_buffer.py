"""Tests for the set-associative transaction buffer alternative."""

import pytest

from dataclasses import replace

from repro.common.config import TxCacheConfig, small_machine_config
from repro.common.stats import Stats
from repro.common.types import NVM_BASE, Version
from repro.core.setassoc import SetAssocTransactionBuffer
from repro.core.txcache import TxState


def make(entries=16, assoc=4, coalesce=True):
    config = TxCacheConfig(size_bytes=entries * 64, coalesce_writes=coalesce)
    return SetAssocTransactionBuffer(config, Stats().scoped("tc"),
                                     assoc=assoc)


def line(i):
    return NVM_BASE + i * 64


class TestSetMapping:
    def test_geometry(self):
        buffer = make(entries=16, assoc=4)
        assert buffer.num_sets == 4
        assert buffer.capacity == 16

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            make(entries=10, assoc=4)


class TestAssociativityOverflow:
    def test_set_conflict_rejects_despite_free_capacity(self):
        buffer = make(entries=16, assoc=4)
        # 5 lines all mapping to set 0 (stride = num_sets lines)
        for k in range(4):
            assert buffer.write(1, line(k * buffer.num_sets), Version(1, k))
        assert not buffer.write(1, line(4 * buffer.num_sets), Version(1, 4))
        assert buffer.occupancy == 4          # 12 entries still free!
        assert buffer.set_conflict_rejections == 1

    def test_cam_fifo_admits_the_same_pattern(self):
        from repro.core.txcache import TransactionCache
        config = TxCacheConfig(size_bytes=16 * 64)
        fifo = TransactionCache(config, Stats().scoped("tc"))
        for k in range(8):
            assert fifo.write(1, line(k * 4), Version(1, k))

    def test_spread_lines_fill_whole_capacity(self):
        buffer = make(entries=16, assoc=4)
        for k in range(16):
            assert buffer.write(1, line(k), Version(1, k))
        assert buffer.is_full()


class TestInterfaceParity:
    """The set-assoc buffer honours the same contract as the FIFO."""

    def test_commit_issue_ack_cycle(self):
        buffer = make()
        for k in range(3):
            buffer.write(1, line(k), Version(1, k))
        buffer.commit(1)
        issued = buffer.take_issuable()
        assert [entry.version.seq for entry in issued] == [0, 1, 2]
        for k in range(3):
            assert buffer.ack(line(k)) is not None
        assert buffer.occupancy == 0

    def test_issue_stops_at_active(self):
        buffer = make()
        buffer.write(1, line(0), Version(1, 0))
        buffer.commit(1)
        buffer.write(2, line(1), Version(2, 0))
        issued = buffer.take_issuable()
        assert len(issued) == 1

    def test_probe_newest(self):
        buffer = make(coalesce=False)
        buffer.write(1, line(0), Version(1, 0))
        buffer.commit(1)
        buffer.write(2, line(0), Version(2, 0))
        assert buffer.probe(line(0)).version == Version(2, 0)

    def test_coalescing(self):
        buffer = make()
        buffer.write(1, line(0), Version(1, 0))
        buffer.write(1, line(0), Version(1, 7))
        assert buffer.occupancy == 1
        assert buffer.probe(line(0)).version == Version(1, 7)

    def test_drop_transaction(self):
        buffer = make()
        buffer.write(1, line(0), Version(1, 0))
        buffer.commit(1)
        buffer.write(2, line(1), Version(2, 0))
        dropped = buffer.drop_transaction(2)
        assert [entry.tag for entry in dropped] == [line(1)]
        assert [e.tx_id for e in buffer.committed_unacked()] == [1]


class TestEndToEnd:
    def test_scheme_runs_with_set_assoc_buffer(self):
        from repro.sim.runner import run_experiment
        base = small_machine_config(num_cores=1)
        config = replace(base, txcache=replace(base.txcache,
                                               organization="set_assoc"))
        result = run_experiment("sps", "txcache", config=config,
                                operations=30, array_elements=128)
        assert result.transactions > 30

    def test_set_assoc_stays_crash_consistent(self):
        from repro.sim.crash import crash_sweep
        base = small_machine_config(num_cores=1)
        config = replace(base, txcache=replace(base.txcache,
                                               organization="set_assoc"))
        for report in crash_sweep("sps", "txcache", fractions=(0.4, 0.8),
                                  operations=25, seed=9, config=config,
                                  array_elements=64):
            assert report.consistent, report.violations[:3]

    def test_unknown_organization_rejected(self):
        from repro.sim.system import System
        base = small_machine_config(num_cores=1)
        config = replace(base, txcache=replace(base.txcache,
                                               organization="weird"))
        with pytest.raises(ValueError, match="organization"):
            System(config, "txcache")
