"""Opt-in performance smoke gate (CI perf-smoke job).

Runs the two smoke benchmark points under the default (wheel) kernel
and fails if normalized events/sec regresses more than the tolerance
against the committed ``benchmarks/perf/BENCH_kernel.json``.

Wall-clock assertions are inherently machine- and load-sensitive, so
this module is **skipped unless ``REPRO_PERF_SMOKE=1``** — it must
never flake a plain ``pytest`` run.  CI runs it in a dedicated job;
locally::

    REPRO_PERF_SMOKE=1 pytest tests/test_perf_smoke.py -q
"""

from __future__ import annotations

import os

import pytest

from repro.bench.kernel import (
    DEFAULT_TOLERANCE,
    SMOKE_POINTS,
    compare_reports,
    format_report,
    load_baseline,
    run_bench,
)

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PERF_SMOKE") != "1",
    reason="perf smoke is opt-in: set REPRO_PERF_SMOKE=1 "
           "(timing gates flake under incidental machine load)",
)


def test_smoke_points_within_tolerance_of_baseline():
    baseline = load_baseline()
    report = run_bench(SMOKE_POINTS, kernels=("wheel",), repeats=3)
    failures = compare_reports(baseline, report, kernel="wheel",
                               tolerance=DEFAULT_TOLERANCE,
                               keys=[point.key for point in SMOKE_POINTS])
    assert not failures, (
        "perf regression vs committed baseline:\n  "
        + "\n  ".join(failures)
        + "\n\ncurrent run:\n" + format_report(report)
    )
