"""Tests for the sharded serving tier (repro.cluster).

Three layers, matched to the subsystem's structure:

* **placement / membership / stats-folding** — deterministic unit
  tests: the ring's preference order, readiness transitions under the
  failure threshold, and rebuilding additive counters from a node's
  wire-format ``/stats`` dump;
* **router against scripted stub nodes** — failover on sheds and dead
  sockets, bounded retry rounds honoring ``Retry-After``, deterministic
  rejections never retried, cross-fleet coalescing, and the merged
  cluster ``/stats`` view — all over the real wire protocol, with the
  node side scripted so every schedule is reproducible;
* **acceptance chaos** — a real 3-process fleet with replication 2, a
  deterministic kill + restart mid-grid, and the two hard promises:
  zero client-visible failures and payloads byte-identical to the
  batch engine's.
"""

import asyncio
import json
import socket

import pytest

from repro.cluster import (
    ChaosAction,
    HashRing,
    Membership,
    NodeInfo,
    RouterService,
    default_grid,
    make_plan,
    run_chaos,
)
from repro.cluster.transport import request_json
from repro.common.stats import Stats
from repro.serve import parse_request, read_http_request, write_http_response


def run_async(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------
class TestHashRing:
    def test_preference_is_deterministic(self):
        a = HashRing(["node0", "node1", "node2"])
        b = HashRing(["node2", "node0", "node1"])   # insertion order moot
        for key in ("k1", "k2", "deadbeef" * 8):
            assert a.preference(key) == b.preference(key)

    def test_preference_covers_every_node_once(self):
        ring = HashRing([f"node{i}" for i in range(5)])
        order = ring.preference("some-key")
        assert sorted(order) == [f"node{i}" for i in range(5)]

    def test_replicas_are_distinct_prefix(self):
        ring = HashRing(["a", "b", "c", "d"])
        for key in ("x", "y", "z"):
            homes = ring.replicas(key, 3)
            assert len(set(homes)) == 3
            assert homes == ring.preference(key)[:3]

    def test_limit_truncates(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.preference("k", limit=2) == ring.preference("k")[:2]

    def test_removal_only_moves_orphaned_keys(self):
        ring = HashRing(["node0", "node1", "node2"])
        keys = [f"key{i}" for i in range(200)]
        before = {key: ring.preference(key)[0] for key in keys}
        ring.remove("node1")
        for key in keys:
            if before[key] != "node1":
                # consistent hashing's whole point: survivors keep
                # their keys when someone else leaves
                assert ring.preference(key)[0] == before[key]

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(["node0", "node1", "node2"])
        counts = {"node0": 0, "node1": 0, "node2": 0}
        for i in range(3000):
            counts[ring.preference(f"key{i}")[0]] += 1
        for count in counts.values():
            assert 600 <= count <= 1400   # ±40% of the 1000 ideal

    def test_duplicate_and_missing_nodes_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(ValueError):
            ring.remove("b")

    def test_empty_ring_has_no_preference(self):
        assert HashRing([]).preference("k") == []


# ---------------------------------------------------------------------------
# membership
# ---------------------------------------------------------------------------
def _infos(n):
    return [NodeInfo(f"node{i}", "127.0.0.1", 9000 + i)
            for i in range(n)]


class TestMembership:
    def test_starts_optimistically_ready(self):
        membership = Membership(_infos(3))
        assert membership.ready_ids() == ["node0", "node1", "node2"]

    def test_failures_below_threshold_keep_node_ready(self):
        membership = Membership(_infos(2), fail_threshold=3)
        membership.mark_failure("node0")
        membership.mark_failure("node0")
        assert membership.is_ready("node0")
        membership.mark_failure("node0")
        assert not membership.is_ready("node0")

    def test_one_success_restores_readiness(self):
        membership = Membership(_infos(2), fail_threshold=1)
        membership.mark_failure("node1", "boom")
        assert not membership.is_ready("node1")
        membership.mark_success("node1")
        assert membership.is_ready("node1")
        assert membership.stats.counter("cluster.node.recovered") == 1

    def test_draining_node_reports_unready_via_success(self):
        # a drain is a *successful* probe that claims ready: false
        membership = Membership(_infos(2))
        membership.mark_success("node0", ready=False)
        assert not membership.is_ready("node0")
        assert membership.stats.counter("cluster.node.unready") == 1

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError):
            Membership([NodeInfo("x", "h", 1), NodeInfo("x", "h", 2)])

    def test_snapshot_carries_last_error(self):
        membership = Membership(_infos(1), fail_threshold=1)
        membership.mark_failure("node0", "ConnectionRefusedError: nope")
        snap = membership.snapshot()["node0"]
        assert snap["ready"] is False
        assert "ConnectionRefusedError" in snap["last_error"]


# ---------------------------------------------------------------------------
# Stats.from_flat (wire-format counter folding)
# ---------------------------------------------------------------------------
class TestStatsFromFlat:
    def test_keeps_additive_drops_sample_expansions(self):
        flat = {"serve.executed": 3, "latency.count": 5,
                "latency.mean": 12.5, "latency.min": 1,
                "latency.max": 40, "queue.out": 2.5}
        stats = Stats.from_flat(flat)
        dump = stats.dump()
        assert dump["serve.executed"] == 3
        assert dump["latency.count"] == 5
        assert dump["queue.out"] == 2.5
        assert not any(name.endswith((".mean", ".min", ".max"))
                       for name in dump)

    def test_non_numeric_and_bool_values_skipped(self):
        stats = Stats.from_flat({"a": True, "b": "three", "c": None,
                                 "d": 7})
        assert stats.dump() == {"d": 7}

    def test_merges_additively_across_nodes(self):
        total = Stats()
        for flat in ({"serve.executed": 2}, {"serve.executed": 5}):
            total.merge(Stats.from_flat(flat))
        assert total.counter("serve.executed") == 7


# ---------------------------------------------------------------------------
# router vs scripted stub nodes
# ---------------------------------------------------------------------------
SPEC = {"workload": "sps", "scheme": "txcache", "operations": 4,
        "config": {"num_cores": 1}}


class StubNode:
    """A scripted fake serve node speaking the real wire protocol.

    ``behaviors`` is a queue consumed one entry per ``POST /v1/points``:
    ``("ok",)``, ``("shed", retry_after)``, ``("error", status)``, or
    ``("gate", asyncio.Event)`` (answer ok once the event is set).
    When the queue runs dry, ``default`` applies.
    """

    def __init__(self, behaviors=(), default=("ok",), ready=True,
                 stats_payload=None):
        self.behaviors = list(behaviors)
        self.default = default
        self.ready = ready
        self.stats_payload = stats_payload or {}
        self.point_requests = []
        self.point_headers = []      # lowercased, one dict per POST
        self.server = None
        self.port = None

    async def start(self):
        self.server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()

    def info(self, node_id):
        return NodeInfo(node_id, "127.0.0.1", self.port)

    async def _handle(self, reader, writer):
        try:
            while True:
                request = await read_http_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                status, payload, extra = await self._respond(
                    method, target.split("?", 1)[0], body,
                    headers=headers)
                await write_http_response(writer, status, payload,
                                          extra, keep_alive=True)
        except (asyncio.IncompleteReadError, ConnectionError,
                ValueError):
            pass
        finally:
            writer.close()

    async def _respond(self, method, target, body, headers=None):
        if target == "/healthz":
            return 200, {"status": "ok", "live": True,
                         "ready": self.ready}, {}
        if target == "/stats":
            return 200, self.stats_payload, {}
        self.point_requests.append(body)
        self.point_headers.append(dict(headers or {}))
        behavior = (self.behaviors.pop(0) if self.behaviors
                    else self.default)
        if behavior[0] == "gate":
            await behavior[1].wait()
            behavior = ("ok",)
        if behavior[0] == "ok":
            return 200, {"kind": "experiment", "cached": False,
                         "payload": {"cycles": 1}}, {}
        if behavior[0] == "shed":
            return 503, {"error": "shed"}, \
                {"Retry-After": str(behavior[1])}
        return behavior[1], {"error": "scripted rejection"}, {}


async def _start_router(infos, **kwargs):
    kwargs.setdefault("retry_backoff_seconds", 0.01)
    kwargs.setdefault("health_interval_seconds", 0.1)
    kwargs.setdefault("probe_timeout", 1.0)
    kwargs.setdefault("request_timeout", 10.0)
    router = RouterService(infos, host="127.0.0.1", port=0, **kwargs)
    task = asyncio.create_task(router.run(install_signals=False))
    while router.bound_port is None:
        await asyncio.sleep(0.005)
    return router, task


async def _stop_router(router, task):
    router.request_shutdown()
    await asyncio.wait_for(task, timeout=10)


async def _post(router, spec):
    body = json.dumps(spec).encode("utf-8")
    return await request_json("127.0.0.1", router.bound_port, "POST",
                              "/v1/points", body, timeout=10.0)


def _free_dead_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestRouter:
    def test_replication_must_fit_fleet(self):
        with pytest.raises(ValueError):
            RouterService(_infos(2), replication=3)
        with pytest.raises(ValueError):
            RouterService(_infos(2), replication=0)

    def test_routes_to_first_home_replica(self):
        async def scenario():
            stubs = [await StubNode().start() for _ in range(3)]
            infos = [stub.info(f"node{i}")
                     for i, stub in enumerate(stubs)]
            router, task = await _start_router(infos, replication=2)
            try:
                key = parse_request(SPEC).key
                first = router.candidates(key)[0]
                status, _headers, payload = await _post(router, SPEC)
                assert status == 200
                assert payload["node"] == first
                assert payload["payload"] == {"cycles": 1}
            finally:
                await _stop_router(router, task)
                for stub in stubs:
                    await stub.stop()
        run_async(scenario())

    def test_shed_fails_over_to_next_replica(self):
        async def scenario():
            stubs = [await StubNode().start() for _ in range(2)]
            infos = [stub.info(f"node{i}")
                     for i, stub in enumerate(stubs)]
            router, task = await _start_router(infos, replication=2)
            try:
                key = parse_request(SPEC).key
                order = router.candidates(key)
                by_id = dict(zip([info.node_id for info in infos],
                                 stubs))
                by_id[order[0]].behaviors = [("shed", 1)]
                status, _headers, payload = await _post(router, SPEC)
                assert status == 200
                assert payload["node"] == order[1]
                assert router.stats.counter("cluster.forward.503") == 1
            finally:
                await _stop_router(router, task)
                for stub in stubs:
                    await stub.stop()
        run_async(scenario())

    def test_dead_node_fails_over_and_leaves_rotation(self):
        async def scenario():
            live = await StubNode().start()
            dead_port = _free_dead_port()
            infos = [NodeInfo("dead", "127.0.0.1", dead_port),
                     live.info("live")]
            router, task = await _start_router(
                infos, replication=2, fail_threshold=1,
                health_interval_seconds=30)   # passive marking only
            try:
                status, _headers, payload = await _post(router, SPEC)
                assert status == 200
                assert payload["node"] == "live"
                assert not router.membership.is_ready("dead")
                # next request routes straight past the corpse
                spec2 = dict(SPEC, seed=77)
                status, _headers, payload = await _post(router, spec2)
                assert status == 200
                assert payload["node"] == "live"
            finally:
                await _stop_router(router, task)
                await live.stop()
        run_async(scenario())

    def test_retry_rounds_recover_a_full_shed(self):
        async def scenario():
            stub = await StubNode(
                behaviors=[("shed", 0)]).start()
            router, task = await _start_router(
                [stub.info("only")], replication=1, retries=2)
            try:
                status, _headers, payload = await _post(router, SPEC)
                assert status == 200
                assert payload["node"] == "only"
                assert router.stats.counter("cluster.retries") == 1
            finally:
                await _stop_router(router, task)
                await stub.stop()
        run_async(scenario())

    def test_deterministic_rejection_is_never_retried(self):
        async def scenario():
            stub = await StubNode(behaviors=[("error", 400)],
                                  default=("ok",)).start()
            router, task = await _start_router(
                [stub.info("only")], replication=1, retries=3)
            try:
                status, _headers, payload = await _post(router, SPEC)
                assert status == 400
                assert len(stub.point_requests) == 1
                assert router.stats.counter("cluster.retries") == 0
                assert router.stats.counter(
                    "cluster.forward.rejected") == 1
            finally:
                await _stop_router(router, task)
                await stub.stop()
        run_async(scenario())

    def test_malformed_spec_is_400_with_no_forward(self):
        async def scenario():
            stub = await StubNode().start()
            router, task = await _start_router(
                [stub.info("only")], replication=1)
            try:
                status, _headers, payload = await _post(
                    router, {"workload": "nope"})
                assert status == 400
                assert "workload" in payload["error"]
                assert stub.point_requests == []
            finally:
                await _stop_router(router, task)
                await stub.stop()
        run_async(scenario())

    def test_exhaustion_answers_503_with_retry_after(self):
        async def scenario():
            stub = await StubNode(default=("shed", 4)).start()
            router, task = await _start_router(
                [stub.info("only")], replication=1, retries=1)
            try:
                status, headers, payload = await _post(router, SPEC)
                assert status == 503
                assert int(headers["retry-after"]) >= 1
                assert payload["retry_after"] >= 1
            finally:
                await _stop_router(router, task)
                await stub.stop()
        run_async(scenario())

    def test_concurrent_duplicates_coalesce_to_one_forward(self):
        async def scenario():
            gate = asyncio.Event()
            stub = await StubNode(behaviors=[("gate", gate)]).start()
            router, task = await _start_router(
                [stub.info("only")], replication=1)
            try:
                first = asyncio.create_task(_post(router, SPEC))
                while not router._inflight:
                    await asyncio.sleep(0.005)
                second = asyncio.create_task(_post(router, SPEC))
                while router.stats.counter("cluster.coalesced") < 1:
                    await asyncio.sleep(0.005)
                gate.set()
                results = await asyncio.gather(first, second)
                assert all(status == 200 for status, _h, _p in results)
                assert len(stub.point_requests) == 1
            finally:
                await _stop_router(router, task)
                await stub.stop()
        run_async(scenario())

    def test_cluster_stats_merges_node_counters(self):
        async def scenario():
            stubs = [
                await StubNode(stats_payload={
                    "counters": {"serve.executed": 2,
                                 "lat.mean": 9.0,
                                 "lat.count": 2},
                    "cache": {"store_hits": 3, "store_misses": 1,
                              "evictions": 0, "entries": 4,
                              "size_bytes": 100, "hits": 3,
                              "misses": 1},
                    "queue_depth": 0}).start(),
                await StubNode(stats_payload={
                    "counters": {"serve.executed": 5,
                                 "lat.count": 5},
                    "cache": {"hits": 1, "misses": 3, "evictions": 2,
                              "entries": 2, "size_bytes": 50},
                    "queue_depth": 1}).start(),
            ]
            infos = [stub.info(f"node{i}")
                     for i, stub in enumerate(stubs)]
            router, task = await _start_router(infos, replication=2)
            try:
                status, _headers, stats = await request_json(
                    "127.0.0.1", router.bound_port, "GET", "/stats",
                    timeout=10.0)
                assert status == 200
                merged = stats["cluster"]["counters"]
                assert merged["serve.executed"] == 7
                assert merged["lat.count"] == 7
                assert "lat.mean" not in merged     # non-additive
                per_node = stats["counters_by_node"]
                assert per_node["node0.serve.executed"] == 2
                assert per_node["node1.serve.executed"] == 5
                cache = stats["cluster"]["cache"]
                assert cache["hits"] == 4
                assert cache["misses"] == 4
                assert cache["evictions"] == 2
                assert cache["hit_ratio"] == 0.5
                assert stats["nodes"]["node1"]["reachable"] is True
            finally:
                await _stop_router(router, task)
                for stub in stubs:
                    await stub.stop()
        run_async(scenario())

    def test_unreachable_node_shows_in_stats_not_an_error(self):
        async def scenario():
            live = await StubNode().start()
            infos = [live.info("live"),
                     NodeInfo("gone", "127.0.0.1", _free_dead_port())]
            router, task = await _start_router(infos, replication=1)
            try:
                status, _headers, stats = await request_json(
                    "127.0.0.1", router.bound_port, "GET", "/stats",
                    timeout=10.0)
                assert status == 200
                assert stats["nodes"]["gone"] == {"reachable": False}
                assert stats["nodes"]["live"]["reachable"] is True
            finally:
                await _stop_router(router, task)
                await live.stop()
        run_async(scenario())

    def test_router_healthz_reports_fleet_view(self):
        async def scenario():
            stub = await StubNode(ready=False).start()
            router, task = await _start_router(
                [stub.info("only")], replication=1,
                health_interval_seconds=0.05)
            try:
                while router.membership.is_ready("only"):
                    await asyncio.sleep(0.01)
                status, _headers, health = await request_json(
                    "127.0.0.1", router.bound_port, "GET", "/healthz",
                    timeout=10.0)
                assert status == 200
                assert health["live"] is True
                assert health["ready"] is False   # no ready nodes left
                assert health["status"] == "degraded"
                assert health["nodes"]["only"]["ready"] is False
            finally:
                await _stop_router(router, task)
                await stub.stop()
        run_async(scenario())


# ---------------------------------------------------------------------------
# chaos plans
# ---------------------------------------------------------------------------
class TestChaosPlans:
    def test_same_seed_same_plan(self):
        assert make_plan(7, 12, 3) == make_plan(7, 12, 3)
        assert make_plan(7, 12, 3, hangs=True) == \
            make_plan(7, 12, 3, hangs=True)

    def test_kill_precedes_restart_of_same_node(self):
        for seed in range(10):
            plan = make_plan(seed, 9, 3)
            kill, restart = plan[0], plan[1]
            assert kill.action == "kill"
            assert restart.action == "restart"
            assert kill.node == restart.node
            assert kill.after_request < restart.after_request

    def test_hang_targets_a_different_node(self):
        plan = make_plan(3, 12, 3, hangs=True)
        victim = plan[0].node
        hangs = [action for action in plan
                 if action.action in ("hang", "resume")]
        assert len(hangs) == 2
        assert all(action.node != victim for action in hangs)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ChaosAction(0, "explode", 0)

    def test_default_grid_keys_are_distinct(self):
        specs = default_grid(points=9)
        keys = {parse_request(spec).key for spec in specs}
        assert len(keys) == 9


# ---------------------------------------------------------------------------
# acceptance: real fleet, real kills, byte-identical answers
# ---------------------------------------------------------------------------
class TestClusterChaosAcceptance:
    def test_kill_and_restart_mid_grid_loses_nothing(self, tmp_path):
        specs = default_grid(points=6, operations=6)
        report = run_chaos(specs, cache_root=tmp_path, nodes=3,
                           replication=2, seed=0)
        assert report.verified
        assert report.failures == [], report.format()
        assert report.mismatches == [], report.format()
        assert all(outcome.payload_matches for outcome in
                   report.outcomes), report.format()
        # the plan actually did violence mid-grid
        actions = [action.action for action in report.plan]
        assert actions == ["kill", "restart"]
        assert 0 < report.plan[0].after_request < len(specs)


# ---------------------------------------------------------------------------
# observability: request-id forwarding, /metrics, /trace
# ---------------------------------------------------------------------------
async def _post_with_id(router, spec, request_id):
    body = json.dumps(spec).encode("utf-8")
    return await request_json(
        "127.0.0.1", router.bound_port, "POST", "/v1/points", body,
        timeout=10.0, headers={"X-Request-Id": request_id})


class TestRouterObservability:
    def test_request_id_forwarded_across_failover_hops(self):
        async def scenario():
            stubs = [await StubNode().start() for _ in range(2)]
            infos = [stub.info(f"node{i}")
                     for i, stub in enumerate(stubs)]
            router, task = await _start_router(infos, replication=2)
            try:
                key = parse_request(SPEC).key
                order = router.candidates(key)
                by_id = dict(zip([info.node_id for info in infos],
                                 stubs))
                by_id[order[0]].behaviors = [("shed", 0)]
                status, headers, payload = await _post_with_id(
                    router, SPEC, "hop-req-3")
                assert status == 200
                assert payload["node"] == order[1]
                assert payload["request_id"] == "hop-req-3"
                assert headers["x-request-id"] == "hop-req-3"
                # both the shedding home and the fallback saw the id
                for stub in stubs:
                    assert [h.get("x-request-id")
                            for h in stub.point_headers] == ["hop-req-3"]
            finally:
                await _stop_router(router, task)
                for stub in stubs:
                    await stub.stop()
        run_async(scenario())

    def test_request_id_generated_when_absent(self):
        async def scenario():
            stub = await StubNode().start()
            router, task = await _start_router(
                [stub.info("only")], replication=1)
            try:
                status, _headers, payload = await _post(router, SPEC)
                assert status == 200
                rid = payload["request_id"]
                assert isinstance(rid, str) and len(rid) == 32
                assert stub.point_headers[0]["x-request-id"] == rid
            finally:
                await _stop_router(router, task)
                await stub.stop()
        run_async(scenario())

    def test_coalesced_waiters_answer_with_their_own_ids(self):
        async def scenario():
            gate = asyncio.Event()
            stub = await StubNode(behaviors=[("gate", gate)]).start()
            router, task = await _start_router(
                [stub.info("only")], replication=1)
            try:
                first = asyncio.create_task(
                    _post_with_id(router, SPEC, "leader-id"))
                while not router._inflight:
                    await asyncio.sleep(0.005)
                second = asyncio.create_task(
                    _post_with_id(router, SPEC, "rider-id"))
                while router.stats.counter("cluster.coalesced") < 1:
                    await asyncio.sleep(0.005)
                gate.set()
                (s1, _h1, p1), (s2, _h2, p2) = await asyncio.gather(
                    first, second)
                assert (s1, s2) == (200, 200)
                assert {p1["request_id"], p2["request_id"]} == \
                    {"leader-id", "rider-id"}
                assert len(stub.point_requests) == 1   # still one forward
            finally:
                await _stop_router(router, task)
                await stub.stop()
        run_async(scenario())

    def test_router_metrics_exposes_own_and_fleet_families(self):
        from repro.obs import parse_prometheus
        async def scenario():
            stub = await StubNode(stats_payload={
                "counters": {"serve.executed": 5, "lat.mean": 2.0}
            }).start()
            router, task = await _start_router(
                [stub.info("only")], replication=1)
            try:
                await _post(router, SPEC)
                status, headers, payload = await request_json(
                    "127.0.0.1", router.bound_port, "GET", "/metrics",
                    timeout=10.0)
                assert status == 200
                assert "0.0.4" in headers["content-type"]
                text = payload["error"]     # non-JSON body passthrough
                families = parse_prometheus(text)
                own = families["repro_cluster_http_200_total"]
                (_n, labels, _v) = own["samples"][0]
                assert labels["role"] == "router"
                assert families["repro_fleet_serve_executed_total"][
                    "samples"][0][2] == 5
                # non-additive sample derivatives never become counters
                assert not any("lat_mean" in name for name in families)
                assert "repro_ready_nodes" in families
                assert "repro_fleet_reachable_nodes" in families
            finally:
                await _stop_router(router, task)
                await stub.stop()
        run_async(scenario())

    def test_router_trace_validates_and_correlates(self):
        from repro.obs import validate_chrome_trace
        async def scenario():
            stub = await StubNode().start()
            router, task = await _start_router(
                [stub.info("only")], replication=1)
            try:
                await _post_with_id(router, SPEC, "trace-req-77")
                status, _headers, trace = await request_json(
                    "127.0.0.1", router.bound_port, "GET", "/trace",
                    timeout=10.0)
                assert status == 200
                assert validate_chrome_trace(trace) == []
                tagged = {event["name"]
                          for event in trace["traceEvents"]
                          if event.get("args", {}).get("request_id")
                          == "trace-req-77"}
                assert "route" in tagged
                assert "forward" in tagged
                forward = [event for event in trace["traceEvents"]
                           if event["name"] == "forward"
                           and event.get("args", {}).get("request_id")
                           == "trace-req-77"]
                assert forward[0]["args"]["node"] == "only"
                assert forward[0]["args"]["status"] == 200
            finally:
                await _stop_router(router, task)
                await stub.stop()
        run_async(scenario())
