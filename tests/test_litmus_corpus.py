"""Frozen litmus corpus: minimized counterexamples + legal-set pins.

``tests/data/litmus_corpus.json`` freezes two things:

* **counterexamples** — the minimized program the delta-debugger
  produces for each classic shape under the intentionally broken
  commit-before-flush scheme.  Replaying them guards both directions:
  the checker must still catch them (a checker regression shows up as
  a now-passing counterexample) and the minimizer must not regress
  into bigger reductions.
* **oracle pins** — explicit legal-persist-set enumerations for the
  shapes with interesting (multi-valued) sets.  Any change to the
  oracle's model moves these as a reviewable data diff.

Intentional model changes regenerate the corpus the same way the
golden figures do::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_litmus_corpus.py
"""

import json
import os
import pathlib

import pytest

from repro.litmus import (
    BROKEN_COMMIT,
    LitmusProgram,
    minimize_violation,
    run_litmus,
)
from repro.litmus.generator import (
    message_passing,
    overlapping_tx,
    private_chain,
    shared_counter,
    store_buffering,
)
from repro.litmus.oracle import all_tx_ids, legal_images, tx_summaries

CORPUS_PATH = pathlib.Path(__file__).parent / "data" / "litmus_corpus.json"

#: shapes whose broken-scheme counterexamples the corpus freezes
COUNTEREXAMPLE_SHAPES = {
    "mp": message_passing,
    "sb": store_buffering,
    "overlap": overlapping_tx,
    "counter": shared_counter,
    "chain": private_chain,
}

#: the ISSUE's acceptance bound on minimized counterexample size
MAX_COUNTEREXAMPLE_OPS = 8

#: shapes whose full-commit legal persist sets the corpus pins
ORACLE_SHAPES = {
    "mp": message_passing,
    "overlap": overlapping_tx,
    "chain": private_chain,
}


def serialize_images(images):
    return [{str(line): [version.tx_id, version.seq]
             for line, version in sorted(image.items())}
            for image in images]


def enumerate_legal_set(shape):
    summaries = tx_summaries(shape().to_traces())
    committed = all_tx_ids(summaries)
    return sorted(committed), serialize_images(
        legal_images(summaries, committed))


def build_corpus():
    counterexamples = []
    for source, shape in sorted(COUNTEREXAMPLE_SHAPES.items()):
        minimized = minimize_violation(shape(), BROKEN_COMMIT)
        counterexamples.append({
            "source": source,
            "scheme": BROKEN_COMMIT,
            "program": minimized.to_dict(),
            "fingerprint": minimized.fingerprint,
        })
    oracle = []
    for source, shape in sorted(ORACLE_SHAPES.items()):
        committed, images = enumerate_legal_set(shape)
        oracle.append({"source": source, "committed": committed,
                       "legal_images": images})
    return {"counterexamples": counterexamples, "oracle": oracle}


def load_corpus():
    return json.loads(CORPUS_PATH.read_text())


@pytest.fixture(scope="module", autouse=True)
def regenerate_if_requested():
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        CORPUS_PATH.parent.mkdir(exist_ok=True)
        CORPUS_PATH.write_text(json.dumps(build_corpus(), indent=2)
                               + "\n")


def test_corpus_covers_every_shape():
    corpus = load_corpus()
    assert sorted(e["source"] for e in corpus["counterexamples"]) == \
        sorted(COUNTEREXAMPLE_SHAPES)
    assert sorted(e["source"] for e in corpus["oracle"]) == \
        sorted(ORACLE_SHAPES)


@pytest.mark.parametrize("source", sorted(COUNTEREXAMPLE_SHAPES))
def test_frozen_counterexample_still_fails(source):
    entry = next(e for e in load_corpus()["counterexamples"]
                 if e["source"] == source)
    program = LitmusProgram.from_dict(entry["program"])
    assert program.fingerprint == entry["fingerprint"]
    assert program.op_count <= MAX_COUNTEREXAMPLE_OPS
    result = run_litmus(program, entry["scheme"])
    assert not result.consistent, (
        f"frozen counterexample {source} no longer caught — checker "
        "regression?")


@pytest.mark.parametrize("source", sorted(COUNTEREXAMPLE_SHAPES))
def test_minimizer_still_reaches_the_frozen_size(source):
    entry = next(e for e in load_corpus()["counterexamples"]
                 if e["source"] == source)
    frozen_ops = LitmusProgram.from_dict(entry["program"]).op_count
    minimized = minimize_violation(COUNTEREXAMPLE_SHAPES[source](),
                                   BROKEN_COMMIT)
    assert minimized.op_count <= frozen_ops, (
        f"minimizer regressed on {source}: {minimized.op_count} ops "
        f"vs frozen {frozen_ops}")


@pytest.mark.parametrize("source", sorted(ORACLE_SHAPES))
def test_legal_set_matches_the_pinned_enumeration(source):
    entry = next(e for e in load_corpus()["oracle"]
                 if e["source"] == source)
    committed, images = enumerate_legal_set(ORACLE_SHAPES[source])
    assert committed == entry["committed"]
    assert images == entry["legal_images"], (
        f"legal persist set of {source} drifted from the corpus "
        "(intentional? see module docstring)")
