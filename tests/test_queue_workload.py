"""Tests for the persistent-queue extension workload."""

import pytest

from repro.sim.crash import crash_sweep
from repro.workloads import QueueWorkload, create_workload


class TestQueueFunctional:
    def test_fifo_order(self):
        queue = QueueWorkload(seed=1, capacity=16)
        queue.setup()
        for value in (10, 20, 30):
            assert queue.enqueue(value)
        assert queue.dequeue() == 10
        assert queue.dequeue() == 20
        assert queue.enqueue(40)
        assert queue.dequeue() == 30
        assert queue.dequeue() == 40
        assert queue.dequeue() is None

    def test_capacity_limit(self):
        queue = QueueWorkload(seed=1, capacity=4)
        queue.setup()
        for value in range(4):
            assert queue.enqueue(value)
        assert not queue.enqueue(99)
        assert queue.depth() == 4

    def test_wraparound(self):
        queue = QueueWorkload(seed=1, capacity=4)
        queue.setup()
        for round_ in range(5):  # more inserts than capacity, with drains
            assert queue.enqueue(round_)
            assert queue.dequeue() == round_
        assert queue.depth() == 0

    def test_generate_valid_trace(self):
        trace = create_workload("queue", seed=3).generate(100)
        trace.validate()
        assert trace.transactions >= 100

    def test_registered(self):
        from repro.workloads import WORKLOADS, PAPER_WORKLOADS
        assert "queue" in WORKLOADS
        assert "queue" not in PAPER_WORKLOADS  # extension, not Table 3


class TestQueueUnderSchemes:
    @pytest.mark.parametrize("scheme", ["txcache", "sp", "kiln"])
    def test_crash_consistent(self, scheme):
        for report in crash_sweep("queue", scheme, fractions=(0.35, 0.75),
                                  operations=30, seed=5, capacity=64):
            assert report.consistent, report.violations[:3]

    def test_runs_under_txcache(self):
        from repro.sim.runner import run_experiment
        result = run_experiment("queue", "txcache", operations=50,
                                num_cores=2, capacity=128)
        assert result.transactions > 50
        assert result.nvm_write_lines > 0
