"""Wall-clock span recorder, trace merging, and structured logs."""

import io
import json

from repro.obs import (NULL_LOG, NULL_SPANS, JsonLogger, NullSpanRecorder,
                       SpanRecorder, merge_chrome_traces,
                       validate_chrome_trace)
from repro.obs import jsonlog

import pytest


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSpanRecorder:
    def test_span_records_complete_event_with_request_id(self):
        clock = FakeClock()
        spans = SpanRecorder("serve:n0", clock=clock)
        with spans.span("scheduler", "admission.wait",
                        request_id="req-1", key="k"):
            clock.advance(0.25)        # binary-exact: no float jitter
        (event,) = spans.events()
        assert event["name"] == "admission.wait"
        assert event["pid"] == "serve:n0"
        assert event["tid"] == "scheduler"
        assert event["ts"] == 0
        assert event["dur"] == 250000          # 250 ms in microseconds
        assert event["args"]["request_id"] == "req-1"
        assert event["args"]["key"] == "k"

    def test_annotations_set_inside_block_land_in_args(self):
        spans = SpanRecorder("router", clock=FakeClock())
        with spans.span("route", "route", request_id="r") as span:
            span["status"] = 200
            span["node"] = "node1"
        (event,) = spans.events()
        assert event["args"]["status"] == 200
        assert event["args"]["node"] == "node1"
        assert event["args"]["request_id"] == "r"

    def test_span_records_even_when_block_raises(self):
        spans = SpanRecorder("router", clock=FakeClock())
        with pytest.raises(RuntimeError):
            with spans.span("route", "route") as span:
                span["outcome"] = "boom"
                raise RuntimeError("boom")
        (event,) = spans.events()
        assert event["args"]["outcome"] == "boom"

    def test_instant_event(self):
        clock = FakeClock()
        spans = SpanRecorder("serve:n0", clock=clock)
        clock.advance(0.5)
        spans.instant("cache", "cache.hit", request_id="q", key="k")
        (event,) = spans.events()
        assert event["ph"] == "i"
        assert event["ts"] == 500000
        assert event["args"]["request_id"] == "q"

    def test_chrome_trace_validates_and_names_process(self):
        spans = SpanRecorder("serve:n0", clock=FakeClock())
        with spans.span("pool", "pool.execute", request_id="x"):
            pass
        spans.instant("cache", "cache.hit")
        trace = spans.chrome_trace()
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["clock"] == "us"
        assert trace["otherData"]["process"] == "serve:n0"

    def test_ring_is_bounded(self):
        spans = SpanRecorder("p", capacity=8, clock=FakeClock())
        for index in range(50):
            spans.instant("t", f"e{index}")
        events = spans.events()
        assert len(events) == 8
        assert events[-1]["name"] == "e49"   # newest kept

    def test_null_recorder_is_inert(self):
        assert NULL_SPANS.enabled is False
        with NULL_SPANS.span("t", "n", request_id="r") as span:
            span["status"] = 200     # accepted, discarded
        NULL_SPANS.instant("t", "n")
        assert isinstance(NULL_SPANS, NullSpanRecorder)


class TestMergeChromeTraces:
    def _trace(self, process, tid, name):
        spans = SpanRecorder(process, clock=FakeClock())
        with spans.span(tid, name):
            pass
        return spans.chrome_trace()

    def test_merged_pids_are_disjoint_and_trace_validates(self):
        first = self._trace("router", "route", "route")
        second = self._trace("serve:n0", "scheduler", "admission.wait")
        merged = merge_chrome_traces(first, second)
        assert validate_chrome_trace(merged) == []
        by_process = {}
        for event in merged["traceEvents"]:
            if event.get("ph") == "M" and event["name"] == "process_name":
                by_process[event["args"]["name"]] = event["pid"]
        assert len(by_process) == 2
        assert len(set(by_process.values())) == 2

    def test_inputs_are_not_mutated(self):
        first = self._trace("a", "t", "x")
        second = self._trace("b", "t", "y")
        before = json.dumps(second, sort_keys=True)
        merge_chrome_traces(first, second)
        assert json.dumps(second, sort_keys=True) == before

    def test_merge_records_clocks(self):
        first = self._trace("a", "t", "x")
        merged = merge_chrome_traces(first)
        assert merged["otherData"]["merged"] == 1
        assert merged["otherData"]["clocks"] == ["us"]

    def test_rejects_malformed_inputs(self):
        with pytest.raises(ValueError):
            merge_chrome_traces([])
        with pytest.raises(ValueError):
            merge_chrome_traces({"otherData": {}})


class TestJsonLogger:
    def test_line_shape_and_field_order(self):
        out = io.StringIO()
        log = JsonLogger(stream=out, node_id="n0", clock=lambda: 5.0)
        log.log("request", request_id="abc", status=200, key="k")
        line = out.getvalue()
        assert line.endswith("\n")
        assert json.loads(line) == {"ts": 5.0, "level": "info",
                                    "event": "request", "node_id": "n0",
                                    "request_id": "abc", "key": "k",
                                    "status": 200}
        # event-specific fields are emitted key-sorted (byte-stable)
        assert line.index('"key"') < line.index('"status"')

    def test_optional_fields_omitted_when_unknown(self):
        out = io.StringIO()
        JsonLogger(stream=out, clock=lambda: 1.0).log("boot")
        record = json.loads(out.getvalue())
        assert "node_id" not in record
        assert "request_id" not in record

    def test_level_passes_through(self):
        out = io.StringIO()
        JsonLogger(stream=out, clock=lambda: 1.0).log(
            "shed", level="warning", queue_depth=9)
        assert json.loads(out.getvalue())["level"] == "warning"

    def test_non_serializable_fields_stringify(self):
        out = io.StringIO()
        JsonLogger(stream=out, clock=lambda: 1.0).log(
            "oops", error=RuntimeError("x"))
        assert json.loads(out.getvalue())["error"] == "x"


class TestProcessLogger:
    def test_default_is_disabled(self, monkeypatch):
        monkeypatch.setattr(jsonlog, "_process_logger", None)
        monkeypatch.delenv(jsonlog.ENV_FLAG, raising=False)
        assert jsonlog.get_logger() is NULL_LOG
        assert jsonlog.get_logger().enabled is False

    def test_enable_installs_and_exports_env(self, monkeypatch):
        monkeypatch.setattr(jsonlog, "_process_logger", None)
        monkeypatch.delenv(jsonlog.ENV_FLAG, raising=False)
        monkeypatch.delenv(jsonlog.ENV_NODE_ID, raising=False)
        try:
            logger = jsonlog.enable(node_id="n7", stream=io.StringIO())
            assert jsonlog.get_logger() is logger
            import os
            assert os.environ[jsonlog.ENV_FLAG] == "1"
            assert os.environ[jsonlog.ENV_NODE_ID] == "n7"
        finally:
            jsonlog.disable()
        assert jsonlog.get_logger().enabled is False

    def test_env_flag_lazily_constructs_worker_logger(self, monkeypatch):
        monkeypatch.setattr(jsonlog, "_process_logger", None)
        monkeypatch.setenv(jsonlog.ENV_FLAG, "1")
        monkeypatch.setenv(jsonlog.ENV_NODE_ID, "node3")
        logger = jsonlog.get_logger()
        assert logger.enabled
        assert logger.node_id == "node3"
        monkeypatch.setattr(jsonlog, "_process_logger", None)
