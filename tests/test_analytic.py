"""Tests: the first-order analytic model agrees with the simulator."""

import pytest

from repro.common.config import small_machine_config
from repro.common.types import SchemeName
from repro.sim.analytic import (
    TraceProfile,
    compare_with_simulation,
    predict_overhead_cycles,
    predict_relative_performance,
)
from repro.sim.runner import make_traces, run_comparison


@pytest.fixture(scope="module")
def experiment():
    config = small_machine_config(num_cores=1)
    traces = make_traces("hashtable", 1, 200, seed=31)
    results = run_comparison("hashtable", config=config, traces=traces)
    return config, traces[0], results


class TestTraceProfile:
    def test_profile_extraction(self):
        trace = make_traces("sps", 1, 10, seed=1, array_elements=64)[0]
        profile = TraceProfile.of(trace)
        assert profile.transactions == trace.transactions
        assert profile.stores_per_tx > 0
        assert profile.lines_per_tx <= profile.stores_per_tx


class TestPredictions:
    def test_optimal_has_zero_overhead(self, experiment):
        config, trace, _results = experiment
        assert predict_overhead_cycles(trace, config,
                                       SchemeName.OPTIMAL) == 0.0

    def test_ordering_of_predicted_overheads(self, experiment):
        config, trace, _results = experiment
        sp = predict_overhead_cycles(trace, config, SchemeName.SP)
        kiln = predict_overhead_cycles(trace, config, SchemeName.KILN)
        txc = predict_overhead_cycles(trace, config, SchemeName.TXCACHE)
        assert sp > kiln > txc

    def test_relative_performance_in_unit_interval(self, experiment):
        config, trace, results = experiment
        optimal_cycles = results[SchemeName.OPTIMAL].cycles
        for scheme in (SchemeName.SP, SchemeName.KILN, SchemeName.TXCACHE):
            ratio = predict_relative_performance(trace, config, scheme,
                                                 optimal_cycles)
            assert 0 < ratio <= 1


class TestAgreementWithSimulation:
    def test_sp_overhead_within_2x(self, experiment):
        config, trace, results = experiment
        comparison = compare_with_simulation(trace, config, results)
        sp = comparison[SchemeName.SP]
        assert sp["simulated_overhead"] > 0
        ratio = sp["predicted_overhead"] / sp["simulated_overhead"]
        assert 0.4 < ratio < 2.5, comparison

    def test_txcache_overhead_is_tiny_in_both(self, experiment):
        config, trace, results = experiment
        comparison = compare_with_simulation(trace, config, results)
        txc = comparison[SchemeName.TXCACHE]
        optimal_cycles = results[SchemeName.OPTIMAL].cycles
        assert txc["predicted_overhead"] < optimal_cycles * 0.05
        assert txc["simulated_relative"] > 0.9

    def test_relative_predictions_rank_like_simulation(self, experiment):
        config, trace, results = experiment
        comparison = compare_with_simulation(trace, config, results)

        def ranks(key):
            return sorted(comparison,
                          key=lambda scheme: comparison[scheme][key])

        assert ranks("predicted_relative") == ranks("simulated_relative")
