"""Regression: clwb must not leave stale clean copies in L2/LLC.

Found by hypothesis (``test_architectural_state_identical_across_
schemes``): under SP, a ``clwb`` pushed the newest version to memory
and marked every cached copy clean — but left the *old* version in the
L2/LLC copies.  The L1 copy (holding the newest data, now clean) could
then be silently evicted by set pressure, after which the architectural
state appeared to roll back to the stale L2 copy.  A clean copy must
agree with what was made durable; ``writeback_line`` (clwb) and
``flush_to_llc`` (Kiln commit) now refresh the copies they clean.
"""

from repro.common.types import NVM_BASE, Version
from repro.cpu.trace import OpType, Trace, TraceOp
from repro.sim.system import System

LINE_A = NVM_BASE            # distinct cache sets
LINE_B = NVM_BASE + 320


def tx(tx_id, stores):
    ops = [TraceOp(OpType.TX_BEGIN, tx_id=tx_id)]
    for seq, addr in enumerate(stores):
        ops.append(TraceOp(OpType.STORE, addr=addr, tx_id=tx_id,
                           version=Version(tx_id, seq)))
    ops.append(TraceOp(OpType.TX_END, tx_id=tx_id))
    return ops


def build_trace():
    # tx 1 populates both lines (stale copies propagate to L2/LLC on
    # later evictions); tx 4 rewrites LINE_B; the tail of single-line
    # transactions to LINE_A plus volatile loads creates the set
    # pressure that silently evicts LINE_B's clean L1 copy.
    ops = []
    ops += tx(1, [LINE_B, LINE_A])
    ops += tx(2, [LINE_A])
    ops += tx(3, [LINE_A])
    ops += [TraceOp(OpType.LOAD, addr=1048576), TraceOp(OpType.COMPUTE,
                                                        count=1)]
    ops += tx(4, [LINE_A, LINE_A, LINE_A, LINE_A, LINE_B])
    ops += [TraceOp(OpType.LOAD, addr=1048576)]
    ops += tx(5, [LINE_A])
    ops += [TraceOp(OpType.LOAD, addr=1048576)]
    ops += tx(6, [LINE_A, LINE_A])
    ops += tx(7, [LINE_A] * 6)
    ops += tx(8, [LINE_A])
    ops += tx(9, [LINE_A])
    ops += tx(10, [LINE_A])
    ops += [TraceOp(OpType.LOAD, addr=1048576),
            TraceOp(OpType.LOAD, addr=1049920)]
    ops += tx(11, [LINE_A])
    ops += [TraceOp(OpType.LOAD, addr=1048896)]
    return Trace("clwb-stale", ops)


def run(scheme):
    system = System.build(scheme, num_cores=1)
    system.load_traces([build_trace()])
    system.run(max_events=2_000_000)
    return system


class TestClwbStaleness:
    def test_all_schemes_agree_on_final_state(self):
        final = {scheme: {line: run(scheme).hierarchy.newest_version(0, line)
                          for line in (LINE_A, LINE_B)}
                 for scheme in ("optimal", "sp", "kiln", "txcache")}
        assert final["optimal"] == final["sp"] == final["kiln"] == \
            final["txcache"]
        assert final["optimal"][LINE_B] == Version(4, 4)

    def test_clwb_refreshes_every_cached_copy(self):
        system = run("sp")
        hierarchy = system.hierarchy
        for level in (hierarchy.l1[0], hierarchy.l2[0], hierarchy.llc):
            entry = level.probe(LINE_B)
            if entry is not None:
                assert entry.version == Version(4, 4), (
                    f"stale clean copy in {level.name}")
