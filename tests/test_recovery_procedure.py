"""Tests for the timed recovery procedure (core/recovery.py)."""

import pytest

from repro.common.config import small_machine_config
from repro.common.types import NVM_BASE, Version
from repro.core.recovery import simulate_recovery
from repro.sim.crash import check_recovery, measure_run_length
from repro.sim.runner import make_traces
from repro.sim.system import System


def crashed_txcache_system(operations=20, until=400, num_cores=1, **params):
    system = System.build("txcache", num_cores=num_cores)
    traces = make_traces("sps", num_cores, operations, seed=5,
                         array_elements=64, **params)
    system.load_traces(traces)
    system.run(until=until)
    return system, traces


def recover(system):
    scheme = system.scheme
    crashed = {
        line: version
        for line, version in system.memory.durable_state_at(system.sim.now).items()
    }
    from repro.common.types import is_home_line
    crashed = {l: v for l, v in crashed.items() if is_home_line(l)}
    return simulate_recovery(system.config, scheme.accelerator,
                             scheme.overflow, crashed, system.sim.now,
                             commit_cycle=scheme.commit_cycle)


class TestSimulateRecovery:
    def test_recovered_image_matches_scheme_model(self):
        system, traces = crashed_txcache_system()
        result = recover(system)
        model = system.scheme.durable_lines(system.sim.now)
        assert result.image == model

    def test_recovered_image_is_crash_consistent(self):
        system, traces = crashed_txcache_system()
        result = recover(system)
        committed = system.scheme.durably_committed(system.sim.now)
        assert check_recovery(traces, result.image, committed) == []

    def test_counts_are_coherent(self):
        system, _traces = crashed_txcache_system()
        result = recover(system)
        assert result.entries_scanned >= result.entries_replayed
        assert result.entries_scanned >= result.entries_discarded
        assert result.cycles > 0

    def test_empty_tc_recovers_instantly(self):
        system, _traces = crashed_txcache_system(until=None)
        system.run()  # run to completion: TC fully drained
        result = recover(system)
        assert result.entries_replayed == 0
        assert result.entries_discarded == 0
        assert result.cycles == 0

    def test_recovery_latency_grows_with_tc_occupancy(self):
        total = measure_run_length("sps", "txcache", operations=20, seed=5,
                                   array_elements=64)
        early, _ = crashed_txcache_system(until=max(1, total // 10))
        late, _ = crashed_txcache_system(until=int(total * 0.5))
        r_early = recover(early)
        r_late = recover(late)
        # more live entries at the later crash -> more work, not less
        if r_late.entries_scanned > r_early.entries_scanned:
            assert r_late.cycles >= r_early.cycles

    def test_fallback_shadow_copies_timed(self):
        from repro.cpu.trace import TraceBuilder
        builder = TraceBuilder("t")
        builder.begin_tx()
        for index in range(100):  # overflows the 64-entry TC
            builder.store(NVM_BASE + index * 64)
        builder.end_tx()
        system = System.build("txcache", num_cores=1)
        system.load_traces([builder.build()])
        # run long enough for the COW record to be durable, then "crash"
        system.run(until=60_000)
        assert system.scheme.overflow.committed_at(system.sim.now)
        result = recover(system)
        assert result.fallback_lines_copied == 100
        for index in range(100):
            assert result.image[NVM_BASE + index * 64] == Version(1, index)
