"""Unit tests for shared value types and machine configuration."""

import pytest

from repro.common.config import (
    CacheLevelConfig,
    MachineConfig,
    paper_machine_config,
    small_machine_config,
    table2_rows,
)
from repro.common.types import (
    CACHE_LINE_SIZE,
    NVM_BASE,
    MemReqType,
    MemRequest,
    MemSpace,
    SchemeName,
    is_persistent_addr,
    line_addr,
    ns_to_cycles,
)


class TestAddressHelpers:
    def test_line_addr_masks_low_bits(self):
        assert line_addr(0) == 0
        assert line_addr(63) == 0
        assert line_addr(64) == 64
        assert line_addr(NVM_BASE + 100) == NVM_BASE + 64

    def test_space_split_at_nvm_base(self):
        assert MemSpace.of(0) is MemSpace.DRAM
        assert MemSpace.of(NVM_BASE - 1) is MemSpace.DRAM
        assert MemSpace.of(NVM_BASE) is MemSpace.NVM
        assert is_persistent_addr(NVM_BASE + 4096)
        assert not is_persistent_addr(4096)

    def test_mem_request_line_and_space(self):
        req = MemRequest(addr=NVM_BASE + 70, req_type=MemReqType.WRITE)
        assert req.line == NVM_BASE + 64
        assert req.space is MemSpace.NVM
        assert req.is_write


class TestNsToCycles:
    def test_rounds_up(self):
        assert ns_to_cycles(0.5, 2.0) == 1
        assert ns_to_cycles(4.5, 2.0) == 9
        assert ns_to_cycles(10.0, 2.0) == 20
        assert ns_to_cycles(65.0, 2.0) == 130
        assert ns_to_cycles(76.0, 2.0) == 152
        assert ns_to_cycles(1.5, 2.0) == 3

    def test_minimum_one_cycle(self):
        assert ns_to_cycles(0.01, 2.0) == 1


class TestSchemeName:
    def test_parse_string(self):
        assert SchemeName.parse("sp") is SchemeName.SP
        assert SchemeName.parse("TXCACHE") is SchemeName.TXCACHE

    def test_parse_passthrough(self):
        assert SchemeName.parse(SchemeName.KILN) is SchemeName.KILN

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            SchemeName.parse("bogus")


class TestPaperConfig:
    def test_table2_core(self):
        cfg = paper_machine_config()
        assert cfg.num_cores == 4
        assert cfg.core.freq_ghz == 2.0
        assert cfg.core.issue_width == 4

    def test_table2_cache_geometry(self):
        cfg = paper_machine_config()
        assert cfg.l1.size_bytes == 32 * 1024 and cfg.l1.assoc == 4
        assert cfg.l2.size_bytes == 256 * 1024 and cfg.l2.assoc == 8
        assert cfg.llc.size_bytes == 64 * 1024 * 1024 and cfg.llc.assoc == 16
        assert cfg.llc.shared and not cfg.l1.shared

    def test_table2_latencies_in_cycles(self):
        cfg = paper_machine_config()
        assert cfg.latency("l1") == 1
        assert cfg.latency("l2") == 9
        assert cfg.latency("llc") == 20
        assert cfg.latency("txcache") == 3

    def test_table2_memory(self):
        cfg = paper_machine_config()
        assert cfg.nvm.num_ranks == 4 and cfg.nvm.banks_per_rank == 8
        assert cfg.nvm.read_queue_entries == 8
        assert cfg.nvm.write_queue_entries == 64
        assert cfg.nvm.write_drain_threshold == pytest.approx(0.8)
        assert cfg.nvm.timing.read_ns == 65.0
        assert cfg.nvm.timing.write_ns == 76.0

    def test_txcache_defaults(self):
        cfg = paper_machine_config()
        assert cfg.txcache.size_bytes == 4096
        assert cfg.txcache.num_entries == 64
        assert cfg.txcache.overflow_threshold == pytest.approx(0.9)

    def test_table2_rows_render(self):
        rows = table2_rows(paper_machine_config())
        assert "4 cores" in rows["CPU"]
        assert "64MB" in rows["L3 (LLC)"]
        assert "CAM FIFO" in rows["Transaction Cache"]
        assert "65-ns read" in rows["NVM Memory"]
        assert "80% full" in rows["Memory Controllers"]


class TestConfigValidation:
    """Invalid configurations must fail loudly at construction time,
    with messages that name the offending field and value."""

    def test_overflow_threshold_range(self):
        from repro.common.config import TxCacheConfig
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="overflow_threshold"):
                TxCacheConfig(size_bytes=4096, overflow_threshold=bad)
        # boundary: exactly 1.0 is legal (overflow only when full)
        assert TxCacheConfig(size_bytes=4096,
                             overflow_threshold=1.0).num_entries == 64

    def test_freq_must_be_positive(self):
        from repro.common.config import CoreConfig
        for bad in (0.0, -2.0):
            with pytest.raises(ValueError, match="freq_ghz"):
                CoreConfig(freq_ghz=bad)

    def test_fault_rates_must_be_probabilities(self):
        from repro.common.config import FaultConfig
        for field in ("nvm_write_fail_rate", "ack_loss_rate",
                      "ack_delay_rate", "ack_duplicate_rate",
                      "tc_bit_flip_rate", "degrade_error_rate"):
            with pytest.raises(ValueError, match=field):
                FaultConfig(**{field: 1.5})
            with pytest.raises(ValueError, match=field):
                FaultConfig(**{field: -0.01})

    def test_ack_fates_must_not_exceed_certainty(self):
        from repro.common.config import FaultConfig
        with pytest.raises(ValueError, match="ack"):
            FaultConfig(ack_loss_rate=0.5, ack_delay_rate=0.4,
                        ack_duplicate_rate=0.2)

    def test_fault_counts_and_cycles(self):
        from repro.common.config import FaultConfig
        with pytest.raises(ValueError, match="max_write_retries"):
            FaultConfig(max_write_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff_cycles"):
            FaultConfig(retry_backoff_cycles=0)
        with pytest.raises(ValueError, match="ack_timeout_cycles"):
            FaultConfig(ack_timeout_cycles=0)

    def test_enabled_reflects_any_nonzero_rate(self):
        from repro.common.config import FaultConfig
        assert not FaultConfig().enabled
        assert not FaultConfig(seed=42).enabled  # seed alone is inert
        assert FaultConfig(nvm_write_fail_rate=1e-6).enabled
        assert FaultConfig(ack_delay_rate=0.1).enabled
        assert FaultConfig(tc_bit_flip_rate=1e-9).enabled

    def test_machine_config_carries_fault_config(self):
        from repro.common.config import FaultConfig
        cfg = small_machine_config()
        assert cfg.faults == FaultConfig()
        assert not cfg.faults.enabled


class TestCacheLevelConfig:
    def test_sets_computed(self):
        cfg = CacheLevelConfig("l1", 32 * 1024, 4, 0.5)
        assert cfg.num_lines == 512
        assert cfg.num_sets == 128

    def test_bad_geometry_rejected(self):
        cfg = CacheLevelConfig("bad", 100 * 64, 3, 1.0)
        with pytest.raises(ValueError):
            _ = cfg.num_sets


class TestScaledConfigs:
    def test_small_machine_preserves_policies(self):
        cfg = small_machine_config()
        assert cfg.l1.assoc == 4 and cfg.llc.assoc == 16
        assert cfg.latency("llc") == 20
        assert cfg.llc.size_bytes < paper_machine_config().llc.size_bytes

    def test_scaled_llc(self):
        cfg = paper_machine_config().scaled_llc(128 * 1024)
        assert cfg.llc.size_bytes == 128 * 1024
        assert cfg.llc.assoc == 16
