"""Tests for the power-of-two histogram and its stats wiring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import Histogram, Stats


class TestHistogram:
    def test_empty_percentile_zero(self):
        assert Histogram().percentile(0.99) == 0.0

    def test_single_value(self):
        histogram = Histogram()
        histogram.add(100)
        # 100 lands in bucket [64, 128): p50 upper bound is 128
        assert histogram.percentile(0.5) == 128.0

    def test_small_values_land_in_bucket_zero(self):
        histogram = Histogram()
        histogram.add(0)
        histogram.add(0.5)
        histogram.add(1)
        assert histogram.buckets()[0] == 3

    def test_percentile_orders(self):
        histogram = Histogram()
        for value in [1] * 90 + [1000] * 10:
            histogram.add(value)
        assert histogram.percentile(0.5) <= histogram.percentile(0.99)
        assert histogram.percentile(0.99) >= 1000

    def test_invalid_fraction_rejected(self):
        histogram = Histogram()
        histogram.add(1)
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_percentile_bounds_true_quantile(self, values):
        histogram = Histogram()
        for value in values:
            histogram.add(value)
        ordered = sorted(values)
        for fraction in (0.5, 0.9, 0.99):
            index = min(len(ordered) - 1,
                        max(0, int(fraction * len(ordered)) - 1))
            true_quantile = ordered[index]
            estimate = histogram.percentile(fraction)
            # bucketed estimate is an upper bound within one bucket (2x)
            assert estimate >= true_quantile * 0.999
            assert histogram.count == len(values)


class TestStatsHistogram:
    def test_hist_records_summary_too(self):
        stats = Stats()
        stats.hist("lat", 100)
        stats.hist("lat", 300)
        assert stats.summary("lat").count == 2
        assert stats.percentile("lat", 0.99) >= 300

    def test_scoped_hist(self):
        stats = Stats()
        scoped = stats.scoped("mem")
        scoped.hist("lat", 64)
        assert stats.percentile("mem.lat", 0.5) == 128.0
        assert scoped.percentile("lat", 0.5) == 128.0

    def test_controller_latency_percentiles_populated(self):
        from repro.sim.system import System
        from repro.sim.runner import make_traces
        system = System.build("txcache", num_cores=1)
        system.load_traces(make_traces("sps", 1, 20, seed=2,
                                       array_elements=256))
        system.run()
        p99 = system.stats.percentile("mem.nvm.read.latency", 0.99)
        p50 = system.stats.percentile("mem.nvm.read.latency", 0.5)
        assert p99 >= p50 > 0
