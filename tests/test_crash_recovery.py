"""Crash-consistency tests: failure atomicity under every scheme.

The paper's §2 failure scenarios, mechanically: crash the machine at
arbitrary cycles and verify that recovery yields all-or-nothing
transactions with program-order versions — for the transaction cache
(recovered from the nonvolatile TC contents), for SP (undo-log replay)
and for Kiln (NV-LLC contents).  The Optimal scheme has no recovery
story; a companion test demonstrates the torn state of Fig. 2(a).
"""

import pytest

from repro.common.types import SchemeName, Version
from repro.sim.crash import (
    check_recovery,
    crash_sweep,
    expected_image,
    measure_run_length,
    run_with_crash,
)
from repro.sim.runner import make_traces

PERSISTENT_SCHEMES = ("txcache", "sp", "kiln")
FRACTIONS = (0.15, 0.35, 0.55, 0.8, 0.95)


class TestExpectedImage:
    def test_only_committed_tx_writes_counted(self):
        traces = make_traces("sps", 1, 5, seed=1, array_elements=64)
        all_committed = {op.tx_id for t in traces for op in t.ops
                         if op.tx_id is not None}
        nothing = expected_image(traces, set())
        everything = expected_image(traces, all_committed)
        assert nothing == {}
        assert everything

    def test_newest_committed_version_wins(self):
        traces = make_traces("sps", 1, 30, seed=1, array_elements=16)
        all_committed = {op.tx_id for t in traces for op in t.ops
                         if op.tx_id is not None}
        image = expected_image(traces, all_committed)
        # versions must be the final write per line: re-deriving from the
        # raw trace in reverse must agree
        from repro.common.types import is_home_line, line_addr
        from repro.cpu.trace import OpType
        last = {}
        for op in traces[0].ops:
            if op.op is OpType.STORE and op.version is not None \
                    and is_home_line(op.addr):
                last[line_addr(op.addr)] = op.version
        assert image == last


class TestCheckRecovery:
    def test_clean_image_passes(self):
        traces = make_traces("sps", 1, 5, seed=1, array_elements=64)
        committed = {op.tx_id for t in traces for op in t.ops
                     if op.tx_id is not None}
        image = expected_image(traces, committed)
        assert check_recovery(traces, image, committed) == []

    def test_missing_committed_write_flagged(self):
        traces = make_traces("sps", 1, 5, seed=1, array_elements=64)
        committed = {op.tx_id for t in traces for op in t.ops
                     if op.tx_id is not None}
        image = expected_image(traces, committed)
        image.pop(next(iter(image)))
        violations = check_recovery(traces, image, committed)
        assert violations and "expected committed" in violations[0]

    def test_uncommitted_leak_flagged(self):
        traces = make_traces("sps", 1, 5, seed=1, array_elements=64)
        tx_ids = sorted({op.tx_id for t in traces for op in t.ops
                         if op.tx_id is not None})
        committed = set(tx_ids[:-1])
        leaked_tx = tx_ids[-1]
        image = expected_image(traces, committed)
        # leak one uncommitted write
        from repro.common.types import NVM_BASE
        image[NVM_BASE] = Version(leaked_tx, 0)
        violations = check_recovery(traces, image, committed)
        assert any("leaked" in v for v in violations)


@pytest.mark.parametrize("scheme", PERSISTENT_SCHEMES)
class TestAtomicityAcrossCrashPoints:
    def test_sps_crashes_are_consistent(self, scheme):
        for report in crash_sweep("sps", scheme, fractions=FRACTIONS,
                                  operations=40, seed=7,
                                  array_elements=128):
            assert report.consistent, report.violations[:3]

    def test_rbtree_crashes_are_consistent(self, scheme):
        for report in crash_sweep("rbtree", scheme, fractions=FRACTIONS,
                                  operations=30, seed=7, initial_keys=16):
            assert report.consistent, report.violations[:3]

    def test_multicore_crashes_are_consistent(self, scheme):
        for report in crash_sweep("hashtable", scheme,
                                  fractions=(0.3, 0.7),
                                  operations=25, seed=7, num_cores=2,
                                  buckets=64):
            assert report.consistent, report.violations[:3]


@pytest.mark.parametrize("scheme", PERSISTENT_SCHEMES)
class TestRecoveryProgress:
    def test_late_crash_commits_most_transactions(self, scheme):
        total = measure_run_length("sps", scheme, operations=40, seed=3,
                                   array_elements=128)
        report = run_with_crash("sps", scheme, total, operations=40,
                                seed=3, array_elements=128)
        assert report.consistent
        # at the very end, every program-committed tx must be durable
        assert len(report.committed) >= report.program_committed

    def test_early_crash_commits_few(self, scheme):
        total = measure_run_length("sps", scheme, operations=40, seed=3,
                                   array_elements=128)
        early = run_with_crash("sps", scheme, max(1, total // 20),
                               operations=40, seed=3, array_elements=128)
        late = run_with_crash("sps", scheme, int(total * 0.95),
                              operations=40, seed=3, array_elements=128)
        assert len(early.committed) <= len(late.committed)


class TestOptimalTearsState:
    def test_optimal_violates_atomicity_somewhere(self):
        """The Fig. 2(a) scenario: without persistence support, some
        crash point leaves a transaction half-applied."""
        # the array must thrash the hierarchy so that reordered write-backs
        # leak partially-updated transactions into the NVM
        total = measure_run_length("sps", "optimal", operations=60,
                                   seed=11, array_elements=8192)
        saw_violation = False
        for fraction in (0.3, 0.5, 0.7, 0.9):
            report = run_with_crash(
                "sps", "optimal", int(total * fraction),
                operations=60, seed=11, array_elements=8192)
            # under Optimal, 'committed' is empty, so any leaked write
            # of any transaction is a violation
            if not report.consistent:
                saw_violation = True
                break
        assert saw_violation, (
            "expected the no-persistence baseline to tear state at "
            "some crash point (nothing ever reached the NVM?)")


class TestSchemeSpecificRecovery:
    def test_txcache_recovers_from_tc_contents(self):
        """Crash right after commits: data still in the TC (unacked)
        must be recovered even though the NVM never saw it."""
        from repro.sim.system import System
        from repro.sim.runner import make_traces

        system = System.build("txcache", num_cores=1)
        traces = make_traces("sps", 1, 10, seed=5, array_elements=64)
        system.load_traces(traces)
        # run only far enough that commits happened but acks lag
        system.run(until=2000)
        committed = system.scheme.durably_committed(2000)
        recovered = system.scheme.durable_lines(2000)
        violations = check_recovery(traces, recovered, committed)
        assert violations == []

    def test_sp_rolls_back_uncommitted_inplace_writes(self):
        for report in crash_sweep("sps", "sp", fractions=(0.4, 0.6),
                                  operations=30, seed=13,
                                  array_elements=64):
            assert report.consistent, report.violations[:3]
