"""Heterogeneous multiprogramming tests (one workload per core)."""

import pytest

from repro.common.types import SchemeName
from repro.sim.crash import check_recovery
from repro.sim.runner import collect_result, make_mixed_traces
from repro.sim.system import System


def run_mix(workloads, scheme="txcache", operations=40):
    system = System.build(scheme, num_cores=len(workloads))
    traces = make_mixed_traces(workloads, operations, seed=8)
    system.load_traces(traces)
    system.run()
    return system, traces


class TestMixedTraces:
    def test_one_trace_per_workload(self):
        traces = make_mixed_traces(["sps", "graph"], 20, seed=1)
        assert len(traces) == 2
        assert traces[0].name.startswith("sps")
        assert traces[1].name.startswith("graph")

    def test_transaction_ids_disjoint_across_cores(self):
        traces = make_mixed_traces(["sps", "rbtree", "btree"], 20, seed=1)
        seen = set()
        for trace in traces:
            ids = {op.tx_id for op in trace.ops if op.tx_id is not None}
            assert not (ids & seen)
            seen |= ids

    def test_heaps_are_disjoint(self):
        traces = make_mixed_traces(["sps", "hashtable"], 20, seed=1)
        from repro.common.types import is_persistent_addr, line_addr
        footprints = []
        for trace in traces:
            footprints.append({
                line_addr(op.addr) for op in trace.ops
                if op.addr and is_persistent_addr(op.addr)})
        assert not (footprints[0] & footprints[1])


class TestMixedExecution:
    def test_all_cores_finish(self):
        system, traces = run_mix(["sps", "graph", "hashtable"])
        assert all(core.done for core in system.cores)
        result = collect_result(system, "mix")
        assert result.transactions == sum(
            core.committed_transactions for core in system.cores)

    @pytest.mark.parametrize("scheme", ["txcache", "sp", "kiln"])
    def test_mixed_run_is_crash_consistent(self, scheme):
        system = System.build(scheme, num_cores=2)
        traces = make_mixed_traces(["sps", "queue"], 25, seed=8)
        system.load_traces(traces)
        total_probe = System.build(scheme, num_cores=2)
        total_probe.load_traces(traces)
        total_probe.run()
        crash = total_probe.sim.now // 2
        system.run(until=crash)
        committed = system.scheme.durably_committed(crash)
        recovered = system.scheme.durable_lines(crash)
        assert check_recovery(traces, recovered, committed) == []

    def test_mix_matches_homogeneous_functionality(self):
        """The write-intense core must not corrupt the other core's
        persistent state."""
        system, traces = run_mix(["sps", "rbtree"], scheme="txcache")
        from repro.sim.crash import expected_image
        all_tx = {op.tx_id for trace in traces for op in trace.ops
                  if op.tx_id is not None}
        expected = expected_image(traces, all_tx)
        for line, version in list(expected.items())[:200]:
            core = 0 if line < traces[1].ops[0].addr else 1
            assert system.hierarchy.newest_version(0, line) == version or \
                system.hierarchy.newest_version(1, line) == version
