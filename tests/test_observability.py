"""Tests for the observability layer: tracer ring/decimation, Chrome
export + schema, epoch sampler, stall attribution, and the two
contracts that make it safe to ship:

* **disabled == absent** — a run with no observability object produces
  bit-identical results to one with tracing enabled (tracing is
  read-only; the golden-figure suite separately pins disabled runs to
  the pre-tracer seed numbers);
* **enabled is deterministic** — two identical traced runs export
  byte-identical trace JSON.
"""

import json
from dataclasses import replace

import pytest

from repro.common.config import FaultConfig, small_machine_config
from repro.common.event import Simulator
from repro.obs import Observability
from repro.obs.sampler import EpochSampler
from repro.obs.schema import validate_chrome_trace
from repro.obs.stalls import STALL_KINDS, StallReport
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.runner import run_experiment

WORKLOAD = "hashtable"
OPS = 30
SEED = 11


# ---------------------------------------------------------------------------
# ring buffer and decimation
# ---------------------------------------------------------------------------
class TestTracerRing:
    def test_ring_keeps_newest(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.instant("p", "t", "tick", i)
        kept = tracer.events()
        assert [event["ts"] for event in kept] == [6, 7, 8, 9]
        assert tracer.emitted == 10
        assert tracer.dropped == 6

    def test_decimation_is_per_name_and_deterministic(self):
        tracer = Tracer(sample_every=3)
        for i in range(9):
            tracer.instant("p", "t", "a", i)
        for i in range(2):
            tracer.instant("p", "t", "b", i)
        counts = tracer.event_counts()
        assert counts["a"] == 3          # events 0, 3, 6
        assert counts["b"] == 1          # event 0 only
        assert tracer.decimated == 7
        assert [e["ts"] for e in tracer.events() if e["name"] == "a"] == \
            [0, 3, 6]

    def test_counters_bypass_decimation(self):
        tracer = Tracer(sample_every=100)
        for i in range(10):
            tracer.counter("p", "t", "depth", i, value=i)
        assert tracer.event_counts()["depth"] == 10
        assert tracer.decimated == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(sample_every=0)

    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.instant("p", "t", "x", 0)
        NULL_TRACER.complete("p", "t", "x", 0, 5)
        NULL_TRACER.counter("p", "t", "x", 0, value=1)


# ---------------------------------------------------------------------------
# Chrome export + schema validator
# ---------------------------------------------------------------------------
def _small_trace() -> Tracer:
    tracer = Tracer()
    tracer.instant("core", "core0", "miss", 10, line=64)
    tracer.complete("core", "core0", "stall.load", 12, 30)
    tracer.counter("tc", "tc0", "occupancy", 40, entries=3)
    return tracer


class TestChromeExport:
    def test_export_passes_schema(self):
        assert validate_chrome_trace(_small_trace().chrome_trace()) == []

    def test_metadata_and_shapes(self):
        trace = _small_trace().chrome_trace()
        events = trace["traceEvents"]
        by_ph = {}
        for event in events:
            by_ph.setdefault(event["ph"], []).append(event)
        names = {e["args"]["name"] for e in by_ph["M"]}
        assert {"core", "core0", "tc", "tc0"} <= names
        assert all(isinstance(e["pid"], int) for e in events)
        assert by_ph["X"][0]["dur"] == 30
        assert by_ph["i"][0]["s"] == "t"
        assert trace["otherData"]["clock"] == "cycles"

    def test_write_bytes_deterministic(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            path = tmp_path / f"{run}.json"
            _small_trace().write(str(path))
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]


class TestSchemaValidator:
    def _base(self):
        return _small_trace().chrome_trace()

    def test_flags_unknown_phase(self):
        trace = self._base()
        trace["traceEvents"][-1]["ph"] = "Z"
        assert any("phase" in error for error in validate_chrome_trace(trace))

    def test_flags_complete_without_duration(self):
        trace = self._base()
        for event in trace["traceEvents"]:
            if event["ph"] == "X":
                del event["dur"]
        assert validate_chrome_trace(trace) != []

    def test_flags_counter_without_numeric_args(self):
        trace = self._base()
        for event in trace["traceEvents"]:
            if event["ph"] == "C":
                event["args"] = {"entries": "three"}
        assert validate_chrome_trace(trace) != []

    def test_flags_missing_process_metadata(self):
        trace = self._base()
        trace["traceEvents"] = [event for event in trace["traceEvents"]
                                if event.get("name") != "process_name"]
        assert any("process_name" in error
                   for error in validate_chrome_trace(trace))

    def test_flags_non_list_envelope(self):
        assert validate_chrome_trace({"traceEvents": "nope"}) != []


# ---------------------------------------------------------------------------
# epoch sampler
# ---------------------------------------------------------------------------
class TestEpochSampler:
    def test_samples_on_boundary_crossings_only(self):
        tracer = Tracer()
        sampler = EpochSampler(tracer, epoch=10)
        values = iter(range(100))
        sampler.add_probe("tc", "tc0", "occupancy", lambda: next(values))
        sampler.on_advance(5)            # no boundary crossed
        sampler.on_advance(23)           # crossed 10 and 20 -> one sample
        sampler.on_advance(25)           # still inside [20, 30)
        sampler.on_advance(40)           # exactly on a boundary
        stamps = [e["ts"] for e in tracer.events()]
        assert stamps == [20, 40]

    def test_simulator_advance_hook_drives_sampler(self):
        sim = Simulator()
        tracer = Tracer()
        sampler = EpochSampler(tracer, epoch=10)
        sampler.add_probe("p", "t", "probe", lambda: 1)
        sim.set_advance_hook(sampler.on_advance)
        for t in (3, 7, 12, 12, 31):
            sim.schedule(t, lambda: None)
        sim.run()
        assert [e["ts"] for e in tracer.events()] == [10, 30]

    def test_epoch_must_be_positive(self):
        with pytest.raises(ValueError):
            EpochSampler(Tracer(), epoch=0)

    def test_disabled_tracer_skips_probe_reads(self):
        sampler = EpochSampler(NULL_TRACER, epoch=10)
        sampler.add_probe("p", "t", "boom",
                          lambda: (_ for _ in ()).throw(AssertionError))
        sampler.on_advance(50)           # must not read the probe


# ---------------------------------------------------------------------------
# stall report
# ---------------------------------------------------------------------------
class TestStallReport:
    COUNTERS = {
        "core.0.stall.load": 10.0,
        "core.0.stall.fence": 30.0,
        "core.0.stall.total": 40.0,
        "core.1.stall.flush": 5.0,
        "core.1.stall.total": 5.0,
        # derived/sample keys that must NOT parse as stall kinds
        "core.0.load.latency.mean": 12.5,
        "core.0.stall.load.latency.mean": 99.0,
        "mem.nvm.write.lines": 7.0,
    }

    def test_parses_only_stall_counters(self):
        report = StallReport.from_counters(self.COUNTERS, cycles=100)
        assert set(report.per_core) == {0, 1}
        assert report.per_core[0]["load"] == 10.0
        assert report.per_core[0]["store_buffer"] == 0.0   # defaulted
        assert report.attribution_errors() == []

    def test_totals_and_share(self):
        report = StallReport.from_counters(self.COUNTERS, cycles=100)
        totals = report.totals()
        assert totals["total"] == 45.0
        assert report.share("fence") == pytest.approx(30 / 45)

    def test_detects_attribution_violation(self):
        broken = dict(self.COUNTERS)
        broken["core.0.stall.total"] = 41.0      # kinds sum to 40
        report = StallReport.from_counters(broken, cycles=100)
        assert len(report.attribution_errors()) == 1
        assert "core 0" in report.attribution_errors()[0]

    def test_format_lists_every_kind(self):
        text = StallReport.from_counters(self.COUNTERS, cycles=100).format()
        for kind in STALL_KINDS:
            assert kind in text


# ---------------------------------------------------------------------------
# end-to-end: traced simulations
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def plain_result():
    return run_experiment(WORKLOAD, "txcache", num_cores=2,
                          operations=OPS, seed=SEED)


@pytest.fixture(scope="module")
def traced_run():
    obs = Observability(epoch=64)
    result = run_experiment(WORKLOAD, "txcache", num_cores=2,
                            operations=OPS, seed=SEED, obs=obs)
    return obs, result


class TestTracedSimulation:
    def test_tracing_never_changes_results(self, plain_result, traced_run):
        """Enabling the tracer + sampler must leave every simulated
        number — cycles first — bit-identical to the untraced run."""
        _obs, traced = traced_run
        assert traced.cycles == plain_result.cycles
        assert traced.to_dict(include_raw=True) == \
            plain_result.to_dict(include_raw=True)

    def test_trace_passes_schema(self, traced_run):
        obs, _result = traced_run
        assert validate_chrome_trace(obs.tracer.chrome_trace()) == []

    def test_trace_has_all_component_processes(self, traced_run):
        obs, _result = traced_run
        processes = {
            event["args"]["name"]
            for event in obs.tracer.chrome_trace()["traceEvents"]
            if event.get("name") == "process_name"}
        assert {"core", "tc", "mem", "cache"} <= processes

    def test_epoch_sampler_produced_time_series(self, traced_run):
        obs, result = traced_run
        samples = [event for event in obs.tracer.events()
                   if event["name"] == "occupancy_sampled"]
        assert samples, "no TC occupancy samples recorded"
        assert all(event["ts"] % 64 == 0 for event in samples)
        assert any(event["args"]["value"] > 0 for event in samples)
        assert max(event["ts"] for event in samples) <= result.cycles

    def test_enabled_trace_byte_identical_across_runs(self, tmp_path,
                                                      traced_run):
        obs_first, _result = traced_run
        obs_second = Observability(epoch=64)
        run_experiment(WORKLOAD, "txcache", num_cores=2,
                       operations=OPS, seed=SEED, obs=obs_second)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        obs_first.write(str(first))
        obs_second.write(str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_stall_attribution_sums_to_total(self, traced_run):
        _obs, result = traced_run
        assert StallReport.from_result(result).attribution_errors() == []

    def test_decimated_trace_still_valid_and_deterministic(self):
        traces = []
        for _run in range(2):
            obs = Observability(ring_capacity=256, sample_every=4)
            run_experiment(WORKLOAD, "sp", num_cores=1,
                           operations=OPS, seed=SEED, obs=obs)
            assert obs.tracer.decimated > 0
            assert len(obs.tracer) <= 256
            trace = obs.tracer.chrome_trace()
            assert validate_chrome_trace(trace) == []
            traces.append(json.dumps(trace, sort_keys=True))
        assert traces[0] == traces[1]

    def test_composes_with_fault_injection(self):
        """Tracing a chaos run must not perturb it: same faults, same
        cycles, and the trace still validates."""
        config = small_machine_config(num_cores=1)
        faulty = replace(config, faults=FaultConfig(
            seed=3, nvm_write_fail_rate=1e-3, ack_loss_rate=1e-3))
        plain = run_experiment(WORKLOAD, "txcache", config=faulty,
                               operations=OPS, seed=SEED)
        obs = Observability(epoch=128)
        traced = run_experiment(WORKLOAD, "txcache", config=faulty,
                                operations=OPS, seed=SEED, obs=obs)
        assert traced.to_dict(include_raw=True) == \
            plain.to_dict(include_raw=True)
        assert validate_chrome_trace(obs.tracer.chrome_trace()) == []


class TestEngineTraceCapture:
    def test_traced_point_same_key_bypasses_cache_writes_trace(
            self, tmp_path):
        """``trace_dir`` is not part of the cache key (tracing never
        changes results), but a traced point must re-simulate even on a
        warm cache so its trace file actually gets captured."""
        from repro.sim.parallel import ExperimentEngine, ExperimentPoint

        config = small_machine_config(num_cores=1)
        plain = ExperimentPoint(WORKLOAD, "txcache", config,
                                operations=OPS, seed=SEED)
        traced = ExperimentPoint(WORKLOAD, "txcache", config,
                                 operations=OPS, seed=SEED,
                                 trace_dir=str(tmp_path / "traces"),
                                 trace_epoch=64)
        assert plain.key == traced.key
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path / "cache"))
        [from_plain] = engine.run([plain])      # warms the cache
        [from_traced] = engine.run([traced])    # must still simulate
        assert engine.stats.counter("engine.executed") == 2
        trace_path = tmp_path / "traces" / f"{traced.key}.trace.json"
        assert trace_path.exists()
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []
        assert from_traced.to_dict(include_raw=True) == \
            from_plain.to_dict(include_raw=True)
