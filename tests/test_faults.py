"""Tests for the fault-injection & resilience subsystem.

Covers the injector's determinism contract (per-site independent
streams, zero-rate sites never draw), the SECDED ECC model, the NVM
write-verify-retry/remap path, the lossy-ack machinery (drop / delay /
duplicate, timeout + idempotent reissue), and graceful degradation to
the copy-on-write overflow path — plus the strict zero-rate no-op
guarantee at the ``System`` level.
"""

from dataclasses import replace

import pytest

from repro.common.config import FaultConfig, small_machine_config
from repro.common.event import Simulator
from repro.common.stats import Stats
from repro.common.types import NVM_BASE, SchemeName, Version
from repro.faults import AckFate, EccOutcome, FaultInjector, SECDEDModel
from repro.memory.system import MemorySystem
from repro.sim.runner import make_traces
from repro.sim.system import System


def faulty_config(**kwargs):
    return FaultConfig(**kwargs)


# ---------------------------------------------------------------------------
# injector
# ---------------------------------------------------------------------------
class TestInjectorDeterminism:
    def test_same_seed_same_draws(self):
        cfg = faulty_config(seed=7, nvm_write_fail_rate=0.5,
                            ack_loss_rate=0.2, ack_delay_rate=0.2,
                            tc_bit_flip_rate=1e-3)
        a, b = FaultInjector(cfg), FaultInjector(cfg)
        assert [a.nvm_write_fails() for _ in range(200)] == \
            [b.nvm_write_fails() for _ in range(200)]
        assert [a.ack_fate() for _ in range(200)] == \
            [b.ack_fate() for _ in range(200)]
        assert [a.tc_read_flips() for _ in range(200)] == \
            [b.tc_read_flips() for _ in range(200)]

    def test_different_seeds_differ(self):
        draws = []
        for seed in (0, 1):
            inj = FaultInjector(faulty_config(seed=seed,
                                              nvm_write_fail_rate=0.5))
            draws.append([inj.nvm_write_fails() for _ in range(64)])
        assert draws[0] != draws[1]

    def test_sites_are_independent_streams(self):
        # enabling the ack fault model must not perturb the NVM write
        # verification draw sequence
        write_only = FaultInjector(faulty_config(nvm_write_fail_rate=0.5))
        both = FaultInjector(faulty_config(nvm_write_fail_rate=0.5,
                                           ack_loss_rate=0.5))
        seq = []
        for _ in range(100):
            seq.append(both.nvm_write_fails())
            both.ack_fate()  # interleaved draws on the other site
        assert seq == [write_only.nvm_write_fails() for _ in range(100)]

    def test_zero_rate_site_never_draws(self):
        inj = FaultInjector(faulty_config(nvm_write_fail_rate=0.5))
        assert inj.ack_fate() == (AckFate.DELIVER, 0)
        assert inj.tc_read_flips() == 0
        for _ in range(32):
            inj.nvm_write_fails()
        assert set(inj._streams) == {"nvm.write"}

    def test_backoff_is_exponential_and_capped(self):
        inj = FaultInjector(faulty_config(nvm_write_fail_rate=0.1,
                                          retry_backoff_cycles=16))
        assert inj.write_retry_backoff(1) == 16
        assert inj.write_retry_backoff(2) == 32
        assert inj.write_retry_backoff(5) == 256
        assert inj.write_retry_backoff(11) == 16 * 1024
        assert inj.write_retry_backoff(50) == 16 * 1024  # capped


class TestAckFates:
    def test_certain_loss(self):
        inj = FaultInjector(faulty_config(ack_loss_rate=1.0))
        assert all(inj.ack_fate() == (AckFate.DROP, 0) for _ in range(16))

    def test_certain_delay_carries_configured_cycles(self):
        inj = FaultInjector(faulty_config(ack_delay_rate=1.0,
                                          ack_delay_cycles=321))
        assert inj.ack_fate() == (AckFate.DELAY, 321)

    def test_certain_duplicate(self):
        inj = FaultInjector(faulty_config(ack_duplicate_rate=1.0))
        assert inj.ack_fate() == (AckFate.DUPLICATE, 0)

    def test_rates_partition_the_draw(self):
        inj = FaultInjector(faulty_config(ack_loss_rate=0.3,
                                          ack_delay_rate=0.3,
                                          ack_duplicate_rate=0.3))
        counts = {fate: 0 for fate in AckFate}
        n = 4000
        for _ in range(n):
            fate, _delay = inj.ack_fate()
            counts[fate] += 1
        for fate in (AckFate.DROP, AckFate.DELAY, AckFate.DUPLICATE):
            assert abs(counts[fate] / n - 0.3) < 0.05
        assert abs(counts[AckFate.DELIVER] / n - 0.1) < 0.05


# ---------------------------------------------------------------------------
# SECDED ECC model
# ---------------------------------------------------------------------------
class TestSECDED:
    def make(self, **kwargs):
        cfg = faulty_config(**kwargs)
        stats = Stats()
        model = SECDEDModel(FaultInjector(cfg), cfg, stats.scoped("ecc"))
        return model, stats

    def test_zero_rate_always_clean(self):
        model, stats = self.make(nvm_write_fail_rate=0.5)  # no flip rate
        assert all(model.read() is EccOutcome.CLEAN for _ in range(64))
        assert model.error_rate == 0.0
        assert not model.degraded
        assert stats.counter("ecc.corrected") == 0

    def test_counters_track_outcomes(self):
        model, stats = self.make(tc_bit_flip_rate=2e-3)
        outcomes = [model.read() for _ in range(3000)]
        corrected = outcomes.count(EccOutcome.CORRECTED)
        uncorrectable = outcomes.count(EccOutcome.UNCORRECTABLE)
        assert corrected > 0 and uncorrectable > 0
        assert model.corrected == corrected == stats.counter("ecc.corrected")
        assert model.uncorrectable == uncorrectable == \
            stats.counter("ecc.uncorrectable")
        assert model.error_rate == pytest.approx(
            (corrected + uncorrectable) / 3000)

    def test_degradation_is_sticky_and_rate_gated(self):
        # per-bit rate high enough that essentially every read errors
        model, stats = self.make(tc_bit_flip_rate=0.01,
                                 degrade_error_rate=0.5,
                                 degrade_min_reads=8)
        for _ in range(7):
            model.read()
        assert not model.degraded  # below degrade_min_reads
        for _ in range(8):
            model.read()
        assert model.degraded
        assert stats.counter("ecc.degraded") == 1
        for _ in range(32):  # sticky: counted once
            model.read()
        assert model.degraded
        assert stats.counter("ecc.degraded") == 1


# ---------------------------------------------------------------------------
# NVM write-verify-retry at the controller
# ---------------------------------------------------------------------------
class TestWriteVerifyRetry:
    def run_one_write(self, fault_cfg):
        sim = Simulator()
        stats = Stats()
        faults = FaultInjector(fault_cfg) if fault_cfg.enabled else None
        memory = MemorySystem(sim, small_machine_config(num_cores=1),
                              stats, faults=faults)
        completions = []
        memory.write(NVM_BASE, Version(1, 0),
                     on_complete=lambda r, c: completions.append(c))
        sim.run(max_events=100_000)
        return sim, stats, memory, completions

    def test_retries_then_spare_row_remap(self):
        # rate 1.0: every verify fails; 2 retries then the remap path
        cfg = faulty_config(nvm_write_fail_rate=1.0, max_write_retries=2,
                            retry_backoff_cycles=16)
        sim, stats, memory, completions = self.run_one_write(cfg)
        assert len(completions) == 1  # completes exactly once
        assert not memory.busy()
        assert stats.counter("mem.nvm.write.verify_failures") == 3
        assert stats.counter("mem.nvm.write.retries") == 2
        assert stats.counter("mem.nvm.write.remaps") == 1

    def test_retry_adds_backoff_latency(self):
        clean = self.run_one_write(FaultConfig())
        faulty = self.run_one_write(
            faulty_config(nvm_write_fail_rate=1.0, max_write_retries=2,
                          retry_backoff_cycles=16))
        # two retries with backoff 16 then 32, plus re-run bank access
        assert faulty[3][0] >= clean[3][0] + 16 + 32

    def test_fault_free_config_never_retries(self):
        _sim, stats, _memory, completions = self.run_one_write(FaultConfig())
        assert len(completions) == 1
        assert stats.counter("mem.nvm.write.verify_failures") == 0


# ---------------------------------------------------------------------------
# end-to-end: lossy acks, reissue, ECC fallback, zero-rate no-op
# ---------------------------------------------------------------------------
def run_system(fault_cfg, workload="hashtable", operations=30, seed=3):
    config = replace(small_machine_config(num_cores=1), faults=fault_cfg)
    system = System(config, SchemeName.TXCACHE)
    system.load_traces(make_traces(workload, 1, operations, seed=seed))
    system.run(max_events=5_000_000)
    return system


class TestSystemUnderFaults:
    def test_zero_rates_construct_no_injector(self):
        system = run_system(FaultConfig(seed=123))  # all rates zero
        assert system.faults is None
        assert system.memory.nvm.faults is None

    def test_zero_rates_match_default_cycle_for_cycle(self):
        base = run_system(FaultConfig())
        seeded = run_system(FaultConfig(seed=99))  # still all-zero rates
        assert base.sim.now == seeded.sim.now
        assert base.stats.as_dict() == seeded.stats.as_dict()

    def test_lost_acks_recovered_by_timeout_reissue(self):
        cfg = faulty_config(ack_loss_rate=0.5, ack_timeout_cycles=500)
        system = run_system(cfg)
        assert system.cores[0].done
        assert not system.memory.busy()
        stats = system.stats
        assert stats.counter("mem.nvm.ack.dropped") > 0
        assert stats.counter("tc.ack.timeouts") > 0
        assert stats.counter("tc.ack.reissues") > 0
        # every reissue eventually freed its entry: the TC drained
        tc = system.scheme.accelerator.tcs[0]
        tc.check_invariants()
        assert tc.occupancy == 0

    def test_duplicate_acks_are_idempotent(self):
        cfg = faulty_config(ack_duplicate_rate=1.0)
        system = run_system(cfg)
        assert system.cores[0].done
        stats = system.stats
        assert stats.counter("mem.nvm.ack.duplicated") > 0
        # every duplicate surfaced as a warning-level event, none freed
        # a second entry (occupancy would go negative / assert)
        assert stats.counter("tc.0.ack.unmatched") > 0
        assert stats.events("tc.0.ack.unmatched")
        tc = system.scheme.accelerator.tcs[0]
        tc.check_invariants()
        assert tc.occupancy == 0

    def test_delayed_acks_do_not_stall_forever(self):
        cfg = faulty_config(ack_delay_rate=1.0, ack_delay_cycles=200)
        system = run_system(cfg)
        assert system.cores[0].done
        assert system.stats.counter("mem.nvm.ack.delayed") > 0

    def test_final_state_matches_fault_free_run(self):
        # faults cost latency but never change architectural results
        from repro.common.types import line_addr
        from repro.cpu.trace import OpType

        clean = run_system(FaultConfig())
        faulty = run_system(faulty_config(
            nvm_write_fail_rate=0.01, ack_loss_rate=0.05,
            ack_duplicate_rate=0.05, tc_bit_flip_rate=1e-4,
            ack_timeout_cycles=500))
        assert faulty.sim.now >= clean.sim.now
        for op in clean.source_traces[0].ops:
            if op.op is OpType.STORE:
                line = line_addr(op.addr)
                assert clean.hierarchy.newest_version(0, line) == \
                    faulty.hierarchy.newest_version(0, line)

    def test_degraded_tc_diverts_new_transactions_to_cow(self):
        # every read errors; after degrade_min_reads the TC goes sticky
        # degraded and the scheme routes whole transactions to COW
        cfg = faulty_config(tc_bit_flip_rate=0.05, degrade_error_rate=0.5,
                            degrade_min_reads=16, ack_timeout_cycles=1000)
        system = run_system(cfg, operations=40)
        assert system.cores[0].done
        stats = system.stats
        assert stats.counter("tc.0.ecc.degraded") == 1
        assert stats.counter("scheme.txcache.degraded_fallbacks") > 0


# ---------------------------------------------------------------------------
# the one shared backoff curve, property-tested
# ---------------------------------------------------------------------------
from hypothesis import given
from hypothesis import strategies as st

from repro.faults import exponential_backoff

_BASES = st.floats(min_value=1e-6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestExponentialBackoffProperties:
    """exponential_backoff is the retry discipline shared by NVM
    write-verify-retry, the serve worker pool, the serve client, and
    the cluster router — so its shape is pinned by properties, not
    just spot values."""

    @given(base=_BASES, attempt=st.integers(min_value=1, max_value=200),
           max_doublings=st.integers(min_value=0, max_value=40))
    def test_monotone_nondecreasing_in_attempt(self, base, attempt,
                                               max_doublings):
        here = exponential_backoff(base, attempt,
                                   max_doublings=max_doublings)
        next_one = exponential_backoff(base, attempt + 1,
                                       max_doublings=max_doublings)
        assert next_one >= here

    @given(base=_BASES, attempt=st.integers(min_value=1, max_value=500),
           max_doublings=st.integers(min_value=0, max_value=40))
    def test_capped_at_max_doublings(self, base, attempt,
                                     max_doublings):
        ceiling = base * 2 ** max_doublings
        value = exponential_backoff(base, attempt,
                                    max_doublings=max_doublings)
        assert value <= ceiling
        if attempt > max_doublings:          # cap actually binds
            assert value == ceiling

    @given(base=_BASES)
    def test_exact_values_for_first_three_attempts(self, base):
        assert exponential_backoff(base, 1) == base
        assert exponential_backoff(base, 2) == base * 2
        assert exponential_backoff(base, 3) == base * 4

    @given(base=_BASES, attempt=st.integers(min_value=1, max_value=200))
    def test_positive_and_scales_linearly_with_base(self, base, attempt):
        value = exponential_backoff(base, attempt)
        assert value > 0
        assert value == base * exponential_backoff(1.0, attempt)
