"""Software-transaction (swtx) scheme tests.

Covers the three first-class software competitors (undo-log, redo-log,
hybrid DRAM-logged): trace instrumentation shapes, the differential
invariants the design space implies (fence counts, NVM write
amplification, cycle ordering against OPT/TC), stall attribution with
the new ``log_*`` kinds, the dedicated log-bank address map, and
every-cycle crash recovery through the litmus oracle.
"""

from dataclasses import replace

import pytest

from repro.common.config import small_machine_config
from repro.common.types import NVM_BASE, SchemeName, is_home_line, is_log_region
from repro.cpu.trace import OpType
from repro.litmus import message_passing, overlapping_tx
from repro.litmus.runner import run_litmus
from repro.memory.bank import BankArray
from repro.obs.stalls import LOG_STALL_KINDS, StallReport
from repro.persistence.swtx.base import (
    LOG_BASE,
    RECORD_BASE,
    SHADOW_BASE,
    home_of_shadow,
)
from repro.sim.runner import make_traces, run_experiment
from repro.sim.system import System

SWTX_SCHEMES = ("undo_log", "redo_log", "hybrid_dram")

# the golden figure grid's shape (tests/test_golden_figures.py)
GRID_OPS = 60
GRID_SEED = 42
GRID_WORKLOADS = ("sps", "hashtable", "btree", "rbtree", "graph")
#: OPT can trail TC by ~1% on some workloads (fewer NVM writes shifts
#: bank scheduling, occasionally against it) — the invariant is "TC
#: adds at most marginal overhead", asserted with a 2% band
OPT_TC_TOLERANCE = 1.02


def _prepared(scheme: str, workload: str = "sps", operations: int = 12):
    """Instrument one single-core trace the way a run would."""
    trace = make_traces(workload, 1, operations, seed=5)[0]
    system = System(small_machine_config(num_cores=1), scheme)
    return trace, system.scheme.prepare_trace(trace)


def _tx_store_counts(trace):
    """Persistent-store count per transaction of the raw trace."""
    counts = {}
    open_tx = None
    for op in trace.ops:
        if op.op is OpType.TX_BEGIN:
            open_tx = op.tx_id
            counts[open_tx] = 0
        elif op.op is OpType.TX_END:
            open_tx = None
        elif (op.op is OpType.STORE and op.persistent
              and open_tx is not None):
            counts[open_tx] += 1
    return counts


class TestPrepareTrace:
    def test_undo_logs_flushes_and_fences_before_each_store(self):
        trace, prepared = _prepared("undo_log")
        counts = _tx_store_counts(trace)
        # N fences per N-store transaction plus the data fence and the
        # record fence — the protocol's defining N+2 ordering cost
        expected_fences = sum(n + 2 for n in counts.values() if n)
        fences = sum(op.op is OpType.SFENCE for op in prepared.ops)
        assert fences == expected_fences
        # every in-place store is preceded (somewhere earlier in the
        # trace) by a log store; the log lives in the log region
        log_stores = [op for op in prepared.ops
                      if op.op is OpType.STORE
                      and is_log_region(op.addr)]
        assert len(log_stores) >= sum(counts.values())
        assert all(op.addr >= LOG_BASE for op in log_stores)
        # the original home stores survive in place
        home_stores = [op for op in prepared.ops
                       if op.op is OpType.STORE and op.persistent
                       and is_home_line(op.addr)]
        assert len(home_stores) == sum(counts.values())

    def test_undo_writes_commit_record_per_transaction(self):
        trace, prepared = _prepared("undo_log")
        counts = _tx_store_counts(trace)
        records = [op for op in prepared.ops
                   if op.op is OpType.STORE and op.addr >= RECORD_BASE
                   and op.version is not None and op.version.seq == -1]
        assert len(records) == sum(1 for n in counts.values() if n)

    def test_redo_replaces_home_stores_and_fences_twice(self):
        trace, prepared = _prepared("redo_log")
        counts = _tx_store_counts(trace)
        # in-transaction home stores never appear: the write set lives
        # in DRAM until post-commit replay
        assert not any(op.op is OpType.STORE and op.persistent
                       and is_home_line(op.addr)
                       for op in prepared.ops)
        expected_fences = sum(2 for n in counts.values() if n)
        fences = sum(op.op is OpType.SFENCE for op in prepared.ops)
        assert fences == expected_fences

    def test_hybrid_has_no_ordering_instructions_at_all(self):
        trace, prepared = _prepared("hybrid_dram")
        counts = _tx_store_counts(trace)
        assert not any(op.op in (OpType.CLWB, OpType.SFENCE)
                       for op in prepared.ops)
        # each home store becomes a DRAM log append + a DRAM shadow
        # write; the shadow address maps back to a home-region line
        shadow_stores = [op for op in prepared.ops
                         if op.op is OpType.STORE
                         and op.addr >= SHADOW_BASE and op.addr < NVM_BASE]
        assert len(shadow_stores) == sum(counts.values())
        assert all(is_home_line(home_of_shadow(op.addr))
                   for op in shadow_stores)

    @pytest.mark.parametrize("scheme", SWTX_SCHEMES)
    def test_instrumented_traces_validate_and_preserve_work(self, scheme):
        trace, prepared = _prepared(scheme)
        prepared.validate()
        assert (sum(op.op is OpType.TX_BEGIN for op in prepared.ops)
                == sum(op.op is OpType.TX_BEGIN for op in trace.ops))
        assert (sum(op.op is OpType.TX_END for op in prepared.ops)
                == sum(op.op is OpType.TX_END for op in trace.ops))


@pytest.fixture(scope="module")
def figure_grid():
    """workload → scheme name → result, on the golden grid's config."""
    config = small_machine_config(num_cores=2)
    schemes = ("optimal", "txcache", "sp") + SWTX_SCHEMES
    out = {}
    for workload in GRID_WORKLOADS:
        traces = make_traces(workload, 2, GRID_OPS, seed=GRID_SEED)
        out[workload] = {
            scheme: run_experiment(
                workload, SchemeName.parse(scheme), config=config,
                traces=traces)
            for scheme in schemes
        }
    return out


@pytest.mark.parametrize("workload", GRID_WORKLOADS)
class TestDifferentialInvariants:
    def test_redo_write_amplification_le_undo(self, figure_grid, workload):
        """Redo packs four entries per log line and never writes undo
        records; its NVM write traffic must not exceed undo's."""
        row = figure_grid[workload]
        assert (row["redo_log"].nvm_write_lines
                <= row["undo_log"].nvm_write_lines)

    def test_undo_fence_count_ge_redo(self, figure_grid, workload):
        """N+2 fences per transaction vs 2; the hybrid scheme executes
        no fence instructions at all."""
        row = figure_grid[workload]
        undo = row["undo_log"].raw_stats.get("scheme.undo_log.fences", 0)
        redo = row["redo_log"].raw_stats.get("scheme.redo_log.fences", 0)
        hybrid = row["hybrid_dram"].raw_stats.get(
            "scheme.hybrid_dram.fences", 0)
        assert undo >= redo > 0
        assert hybrid == 0

    def test_opt_le_tc_le_swtx_cycles(self, figure_grid, workload):
        """The accelerator beats every software-transaction scheme;
        Optimal bounds the accelerator (within the documented band)."""
        row = figure_grid[workload]
        optimal = row["optimal"].cycles
        txcache = row["txcache"].cycles
        assert optimal <= txcache * OPT_TC_TOLERANCE
        for scheme in SWTX_SCHEMES:
            assert txcache <= row[scheme].cycles, scheme

    def test_stall_attribution_sums_to_total(self, figure_grid, workload):
        """Per core, per-kind stalls (including the log_* kinds) must
        sum exactly to the measured total, for every scheme."""
        for scheme, result in figure_grid[workload].items():
            report = StallReport.from_result(result)
            assert report.attribution_errors() == [], scheme

    def test_swtx_schemes_stall_on_the_log(self, figure_grid, workload):
        """The logging protocols' costs must show up under the log_*
        stall kinds, not be smeared into the generic fence bucket."""
        for scheme in SWTX_SCHEMES:
            stalls = figure_grid[workload][scheme].stall_cycles
            log_stall = sum(stalls.get(kind, 0)
                            for kind in LOG_STALL_KINDS)
            assert log_stall > 0, scheme

    def test_non_swtx_schemes_have_no_log_stalls(self, figure_grid,
                                                 workload):
        for scheme in ("optimal", "txcache", "sp"):
            stalls = figure_grid[workload][scheme].stall_cycles
            assert all(stalls.get(kind, 0) == 0
                       for kind in LOG_STALL_KINDS), scheme


class TestLogBankPartition:
    def _ctrl(self, log_banks: int):
        nvm = small_machine_config().nvm
        return replace(nvm, log_banks=log_banks)

    def test_partition_separates_log_and_data_banks(self):
        array = BankArray(self._ctrl(log_banks=4))
        num_banks = self._ctrl(0).num_banks
        data_banks = num_banks - 4
        for i in range(64):
            bank, _row = array.map_address(NVM_BASE + i * 64)
            assert 0 <= bank < data_banks
        for addr in (LOG_BASE, LOG_BASE + 64, RECORD_BASE,
                     LOG_BASE + 17 * 64):
            bank, _row = array.map_address(addr)
            assert data_banks <= bank < num_banks, hex(addr)

    def test_zero_log_banks_is_the_historic_unified_map(self):
        """log_banks=0 must reproduce ``line % num_banks`` exactly for
        home *and* log addresses — the golden-snapshot guarantee."""
        config = self._ctrl(log_banks=0)
        array = BankArray(config)
        lines_per_row = max(1, config.timing.row_size_bytes // 64)
        for addr in [NVM_BASE + i * 64 for i in range(40)] + [
                LOG_BASE, LOG_BASE + 64, RECORD_BASE]:
            line = (addr - NVM_BASE) // 64
            expected = (line % config.num_banks,
                        (line // config.num_banks) // lines_per_row)
            assert array.map_address(addr) == expected, hex(addr)

    def test_log_banks_bounds_validated(self):
        with pytest.raises(ValueError):
            self._ctrl(log_banks=small_machine_config().nvm.num_banks)
        with pytest.raises(ValueError):
            self._ctrl(log_banks=-1)

    @pytest.mark.parametrize("scheme", SWTX_SCHEMES)
    def test_runs_complete_with_dedicated_log_banks(self, scheme):
        base = small_machine_config(num_cores=1)
        config = replace(base, nvm=replace(base.nvm, log_banks=4))
        result = run_experiment("sps", SchemeName.parse(scheme),
                                config=config, operations=15, seed=3)
        assert result.transactions > 0


@pytest.mark.parametrize("scheme", SWTX_SCHEMES)
class TestCrashRecovery:
    """Every-cycle crash sweeps through the litmus legal-persist-set
    oracle — the recovery contract's acceptance gate."""

    def test_message_passing_consistent_at_every_cycle(self, scheme):
        result = run_litmus(message_passing(), scheme)
        assert result.consistent, result.violations[:3]

    def test_overlapping_tx_consistent_at_every_cycle(self, scheme):
        result = run_litmus(overlapping_tx(), scheme)
        assert result.consistent, result.violations[:3]
