"""Meta-tests: does the checker itself catch corrupted images?

A consistency oracle that silently passes everything is worse than no
oracle.  Each test takes a known-legal recovered image, corrupts it in
one specific way a broken scheme could, and asserts the corruption is
flagged with the right message.
"""

from repro.common.types import Version
from repro.litmus.generator import (
    message_passing,
    overlapping_tx,
    private_chain,
)
from repro.litmus.oracle import (
    all_tx_ids,
    check_membership,
    expected_image_from_summaries,
    tx_summaries,
)
from repro.litmus.program import line_address
from repro.sim.crash import check_recovery


def legal_state(program):
    summaries = tx_summaries(program.to_traces())
    committed = all_tx_ids(summaries)
    image = expected_image_from_summaries(summaries, committed)
    return summaries, committed, image


class TestCorruptionsAreFlagged:
    def test_clean_image_passes(self):
        summaries, committed, image = legal_state(private_chain())
        assert check_membership(summaries, committed, image) == []

    def test_dropped_committed_line_is_flagged(self):
        summaries, committed, image = legal_state(private_chain())
        dropped = sorted(image)[0]
        del image[dropped]
        violations = check_membership(summaries, committed, image)
        assert any(f"line {dropped:#x}: expected committed" in v
                   for v in violations), violations

    def test_stale_overwritten_version_is_flagged(self):
        # chain: core 0's tx 2 rewrites private line (0,0); exposing
        # tx 1's overwritten version violates per-line freshness
        summaries, committed, image = legal_state(private_chain())
        line = line_address(8)  # _private_line(0, 0)
        assert image[line] == Version(2, 0)
        image[line] = Version(1, 0)
        violations = check_membership(summaries, committed, image)
        assert any(f"line {line:#x}" in v and "V(tx=1,seq=0)" in v
                   for v in violations), violations

    def test_torn_tx_is_flagged(self):
        # overlap's tx 1 writes two lines; an image holding only one
        # of them (other line absent) breaks failure atomicity
        summaries, _, _ = legal_state(overlapping_tx())
        committed = {1}
        torn = {line_address(0): Version(1, 0)}  # line 1 missing
        violations = check_membership(summaries, committed, torn)
        assert any(f"line {line_address(1):#x}" in v
                   for v in violations), violations

    def test_uncommitted_leak_is_flagged(self):
        summaries, _, _ = legal_state(message_passing())
        committed = {1}
        leaked = {line_address(0): Version(1, 0),
                  line_address(1): Version(2, 0)}  # tx 2 not durable
        violations = check_membership(summaries, committed, leaked)
        assert any("uncommitted data" in v and "leaked into NVM" in v
                   for v in violations), violations

    def test_non_prefix_commit_set_is_flagged(self):
        summaries, _, _ = legal_state(message_passing())
        committed = {2}  # flag durable, data not: MP's failure mode
        image = expected_image_from_summaries(summaries, committed)
        violations = check_membership(summaries, committed, image)
        assert any("write-order violation" in v for v in violations)

    def test_not_in_legal_set_message_on_conflict_lines(self):
        # a version no core's last committed writer produced is
        # reported against the (multi-valued) legal set
        summaries, committed, image = legal_state(overlapping_tx())
        line = line_address(0)
        image[line] = Version(1, 7)  # never written
        violations = check_membership(summaries, committed, image)
        assert any("not in legal persist set" in v for v in violations)


class TestCheckRecoveryWrapper:
    """The historic trace-level entry point must flag the same
    corruptions — crash_sweep and chaos_sweep go through it."""

    def test_flags_through_traces(self):
        program = private_chain()
        traces = program.to_traces()
        summaries, committed, image = legal_state(program)
        assert check_recovery(traces, image, committed) == []
        dropped = sorted(image)[0]
        del image[dropped]
        assert check_recovery(traces, image, committed)
