"""Tests for pre-flight setup validation."""

from dataclasses import replace

import pytest

from repro.common.config import (
    CacheLevelConfig,
    paper_machine_config,
    small_machine_config,
)
from repro.common.types import NVM_BASE
from repro.cpu.trace import Trace, TraceBuilder, TraceOp, OpType
from repro.sim.validate import validate_config, validate_setup, validate_traces


class TestValidateConfig:
    def test_paper_config_is_clean(self):
        report = validate_config(paper_machine_config())
        assert report.ok
        assert report.warnings == []

    def test_small_config_is_usable(self):
        report = validate_config(small_machine_config())
        assert report.ok

    def test_tiny_llc_warns_about_inclusion(self):
        config = small_machine_config(num_cores=4).scaled_llc(16 * 1024)
        report = validate_config(config)
        assert report.ok
        assert any("sum of private L2s" in w for w in report.warnings)

    def test_bad_geometry_is_an_error(self):
        config = replace(small_machine_config(),
                         l1=CacheLevelConfig("l1", 100 * 64, 3, 0.5))
        report = validate_config(config)
        assert not report.ok

    def test_bad_overflow_threshold(self):
        # now rejected at construction time (config validation), before
        # validate_config can even see it
        base = small_machine_config()
        with pytest.raises(ValueError, match="overflow_threshold"):
            replace(base.txcache, overflow_threshold=1.5)

    def test_oversized_issue_window_warns(self):
        base = small_machine_config(num_cores=4)
        config = replace(base, txcache=replace(base.txcache,
                                               issue_window=64))
        report = validate_config(config)
        assert any("issue window" in w for w in report.warnings)


class TestValidateTraces:
    def test_too_many_traces_is_error(self):
        config = small_machine_config(num_cores=1)
        traces = [Trace("a"), Trace("b")]
        report = validate_traces(config, traces)
        assert not report.ok

    def test_tiny_footprint_warns(self):
        builder = TraceBuilder("tiny")
        builder.begin_tx()
        builder.store(NVM_BASE)
        builder.end_tx()
        report = validate_traces(small_machine_config(num_cores=1),
                                 [builder.build()])
        assert any("fits" in w for w in report.warnings)

    def test_oversized_tx_warns_about_fallback(self):
        builder = TraceBuilder("big")
        builder.begin_tx()
        for index in range(100):
            builder.store(NVM_BASE + index * 64)
        builder.end_tx()
        report = validate_traces(small_machine_config(num_cores=1),
                                 [builder.build()])
        assert any("copy-on-write" in w for w in report.warnings)

    def test_malformed_trace_is_error(self):
        bad = Trace("bad", [TraceOp(OpType.TX_END, tx_id=1)])
        report = validate_traces(small_machine_config(num_cores=1), [bad])
        assert not report.ok

    def test_workload_traces_pass(self):
        from repro.sim.runner import make_traces
        config = small_machine_config(num_cores=2)
        traces = make_traces("rbtree", 2, 50)
        report = validate_traces(config, traces)
        assert report.ok

    def test_format_mentions_everything(self):
        config = small_machine_config(num_cores=1)
        report = validate_setup(config, [Trace("empty")])
        text = report.format()
        assert "warning" in text or text == "setup looks sane"
