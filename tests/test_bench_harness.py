"""Unit tests for the benchmark-regression harness itself.

These always run (no timing assertions): they pin down the comparison
semantics the perf gate relies on — tolerance arithmetic, missing-point
detection, normalization — and keep the committed baseline file honest
(schema, smoke coverage, internally-consistent numbers).
"""

from __future__ import annotations

import json
import os

from repro.bench.kernel import (
    BASELINE_PATH,
    SCHEMA_VERSION,
    SMOKE_POINTS,
    BenchPoint,
    compare_reports,
    format_report,
    load_baseline,
    measure_point,
    run_bench,
    stale_baseline,
)
from repro.common.event import KERNEL_ENV, KERNEL_NAMES


def _report(normalized_by_key, kernel="wheel"):
    return {
        "schema": SCHEMA_VERSION,
        "calibration_ops_per_sec": 1_000_000.0,
        "kernels": {
            kernel: {
                key: {"normalized": norm, "events_per_sec": norm * 1e6,
                      "events": 1000, "wall_s": 0.001}
                for key, norm in normalized_by_key.items()
            }
        },
    }


class TestComparison:
    def test_identical_reports_pass(self):
        base = _report({"a": 0.01, "b": 0.02})
        assert compare_reports(base, base) == []

    def test_drop_within_tolerance_passes(self):
        base = _report({"a": 0.0100})
        cur = _report({"a": 0.0071})  # 29% below, tolerance 30%
        assert compare_reports(base, cur, tolerance=0.30) == []

    def test_drop_beyond_tolerance_fails(self):
        base = _report({"a": 0.0100})
        cur = _report({"a": 0.0069})  # 31% below
        failures = compare_reports(base, cur, tolerance=0.30)
        assert len(failures) == 1
        assert "a" in failures[0] and "31%" in failures[0]

    def test_improvement_passes(self):
        base = _report({"a": 0.01})
        cur = _report({"a": 0.05})
        assert compare_reports(base, cur) == []

    def test_missing_point_is_a_failure(self):
        """The gate must not pass just because coverage shrank."""
        base = _report({"a": 0.01, "b": 0.02})
        cur = _report({"a": 0.01})
        failures = compare_reports(base, cur)
        assert len(failures) == 1 and "missing" in failures[0]

    def test_extra_current_points_are_ignored(self):
        base = _report({"a": 0.01})
        cur = _report({"a": 0.01, "new": 0.001})
        assert compare_reports(base, cur) == []

    def test_unknown_kernel_compares_nothing(self):
        base = _report({"a": 0.01})
        assert compare_reports(base, base, kernel="heap") == []

    def test_keys_restricts_comparison_to_claimed_points(self):
        """A smoke run covers a subset of the full baseline — only the
        points it claims must be present and within tolerance."""
        base = _report({"a": 0.01, "b": 0.02})
        cur = _report({"a": 0.01})
        assert compare_reports(base, cur, keys=["a"]) == []
        failures = compare_reports(base, cur, keys=["a", "b"])
        assert len(failures) == 1 and "missing" in failures[0]

    def test_key_absent_from_baseline_is_a_failure(self):
        """Claiming a point the baseline never measured means the
        baseline is stale — surface it, don't skip it."""
        base = _report({"a": 0.01})
        cur = _report({"a": 0.01, "b": 0.02})
        failures = compare_reports(base, cur, keys=["a", "b"])
        assert len(failures) == 1 and "baseline" in failures[0]


class TestStaleBaseline:
    def test_missing_kernel_is_flagged(self):
        """A baseline that predates a kernel must fail --check loudly
        instead of letting the new kernel escape the gate."""
        partial = _report({"a": 0.01})  # wheel only
        problems = stale_baseline(partial)
        flagged = {k for k in KERNEL_NAMES
                   if any(repr(k) in p for p in problems)}
        assert flagged == set(KERNEL_NAMES) - {"wheel"}

    def test_empty_kernel_records_are_flagged(self):
        report = _report({"a": 0.01})
        for kernel in KERNEL_NAMES:
            report["kernels"][kernel] = report["kernels"]["wheel"]
        report["kernels"]["heap"] = {}
        problems = stale_baseline(report)
        assert len(problems) == 1 and "'heap'" in problems[0]

    def test_full_baseline_is_fresh(self):
        report = _report({"a": 0.01})
        for kernel in KERNEL_NAMES:
            report["kernels"][kernel] = report["kernels"]["wheel"]
        assert stale_baseline(report) == []


class TestBenchPoint:
    def test_key_encodes_every_parameter(self):
        point = BenchPoint("sps", "sp", cores=2, operations=30, seed=7)
        assert point.key == "sps/sp/c2/o30/s7"

    def test_smoke_points_cover_both_paths(self):
        """One accelerator-path scheme, one software-path scheme —
        the smoke gate must notice a kernel slowdown on either."""
        schemes = {p.scheme for p in SMOKE_POINTS}
        assert "txcache" in schemes and "sp" in schemes


class TestCommittedBaseline:
    def test_baseline_exists_and_loads(self):
        report = load_baseline()
        assert report["schema"] == SCHEMA_VERSION
        assert report["calibration_ops_per_sec"] > 0

    def test_baseline_covers_smoke_points_for_every_kernel(self):
        report = load_baseline()
        for kernel in KERNEL_NAMES:
            records = report["kernels"][kernel]
            for point in SMOKE_POINTS:
                rec = records[point.key]
                assert rec["events"] > 0
                assert rec["normalized"] > 0
                # determinism: every kernel executed the same events
                assert rec["events"] == \
                    report["kernels"]["wheel"][point.key]["events"]

    def test_committed_baseline_is_fresh(self):
        """Every kernel in KERNEL_NAMES has committed records — a new
        kernel must not silently escape the --check gate."""
        assert stale_baseline(load_baseline()) == []

    def test_baseline_round_trips(self, tmp_path):
        path = tmp_path / "baseline.json"
        report = load_baseline()
        path.write_text(json.dumps(report))
        assert load_baseline(path) == report


class TestMeasurement:
    def test_measure_point_record_shape_and_env_restore(self):
        point = BenchPoint("hashtable", "txcache", cores=1, operations=2)
        saved = os.environ.get(KERNEL_ENV)
        rec = measure_point(point, kernel="heap", repeats=1)
        assert os.environ.get(KERNEL_ENV) == saved  # env restored
        assert rec["kernel"] == "heap"
        assert rec["events"] > 0 and rec["cycles"] > 0
        assert rec["events_per_sec"] > 0

    def test_measure_point_deterministic_events(self):
        point = BenchPoint("hashtable", "txcache", cores=1, operations=2)
        a = measure_point(point, kernel="wheel", repeats=1)
        b = measure_point(point, kernel="heap", repeats=1)
        assert a["events"] == b["events"]
        assert a["cycles"] == b["cycles"]

    def test_run_bench_normalizes_against_calibration(self):
        point = BenchPoint("hashtable", "txcache", cores=1, operations=2)
        report = run_bench([point], kernels=("heap",), repeats=1,
                           calibration=1_000_000.0)
        rec = report["kernels"]["heap"][point.key]
        assert rec["normalized"] == round(rec["events_per_sec"] / 1e6, 6)
        assert "heap" in format_report(report)
