"""Tests for report formatting and normalization helpers."""

import pytest

from repro.common.config import paper_machine_config
from repro.common.types import SchemeName
from repro.sim.report import (
    SCHEME_ORDER,
    add_mean_row,
    format_bars,
    format_figure,
    format_table1,
    format_table2,
    format_table3,
    geomean,
    normalized_rows,
)
from repro.sim.runner import SimulationResult


def fake_result(workload, scheme, cycles, instructions=1000,
                nvm_writes=100.0):
    return SimulationResult(
        workload=workload, scheme=scheme, cycles=cycles,
        instructions=instructions, instructions_executed=instructions,
        transactions=10, llc_accesses=1000, llc_misses=100,
        nvm_write_lines=nvm_writes, nvm_read_lines=50,
        persist_load_latency=10.0, persist_llc_load_latency=100.0,
        load_latency=5.0)


def fake_grid():
    return {
        "wl_a": {
            SchemeName.OPTIMAL: fake_result("wl_a", SchemeName.OPTIMAL, 1000),
            SchemeName.TXCACHE: fake_result("wl_a", SchemeName.TXCACHE, 1100),
            SchemeName.SP: fake_result("wl_a", SchemeName.SP, 2000),
            SchemeName.KILN: fake_result("wl_a", SchemeName.KILN, 1250),
        },
        "wl_b": {
            SchemeName.OPTIMAL: fake_result("wl_b", SchemeName.OPTIMAL, 500),
            SchemeName.TXCACHE: fake_result("wl_b", SchemeName.TXCACHE, 520),
            SchemeName.SP: fake_result("wl_b", SchemeName.SP, 1500),
            SchemeName.KILN: fake_result("wl_b", SchemeName.KILN, 600),
        },
    }


class TestGeomean:
    def test_single_value(self):
        assert geomean([4.0]) == pytest.approx(4.0)

    def test_two_values(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert geomean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geomean([0.0, 2.0]) == pytest.approx(2.0)


class TestNormalizedRows:
    def test_optimal_is_one(self):
        rows = normalized_rows(fake_grid(), lambda r: r.ipc)
        for row in rows.values():
            assert row[SchemeName.OPTIMAL] == pytest.approx(1.0)

    def test_slower_scheme_below_one(self):
        rows = normalized_rows(fake_grid(), lambda r: r.ipc)
        assert rows["wl_a"][SchemeName.SP] == pytest.approx(0.5)
        assert rows["wl_a"][SchemeName.KILN] == pytest.approx(0.8)

    def test_mean_row_appended(self):
        rows = normalized_rows(fake_grid(), lambda r: r.ipc)
        add_mean_row(rows)
        assert "gmean" in rows
        assert rows["gmean"][SchemeName.OPTIMAL] == pytest.approx(1.0)

    def test_mean_row_is_idempotent(self):
        rows = normalized_rows(fake_grid(), lambda r: r.ipc)
        add_mean_row(rows)
        first = dict(rows["gmean"])
        add_mean_row(rows)
        assert rows["gmean"] == first


class TestFormatting:
    def test_format_figure_contains_all_cells(self):
        rows = normalized_rows(fake_grid(), lambda r: r.ipc)
        text = format_figure("Test figure", rows)
        assert "Test figure" in text
        assert "wl_a" in text and "wl_b" in text
        for scheme in SCHEME_ORDER:
            assert scheme.value in text

    def test_format_bars_scales_to_peak(self):
        rows = {"wl": {SchemeName.OPTIMAL: 1.0, SchemeName.SP: 2.0}}
        text = format_bars("Bars", rows, schemes=(SchemeName.SP,
                                                  SchemeName.OPTIMAL))
        sp_line = next(l for l in text.splitlines() if "sp" in l)
        opt_line = next(l for l in text.splitlines() if "optimal" in l)
        assert sp_line.count("#") > opt_line.count("#")
        assert "2.000" in sp_line

    def test_tables_render(self):
        config = paper_machine_config()
        assert "Table 1" in format_table1(config)
        assert "Table 2" in format_table2(config)
        assert "Table 3" in format_table3()


class TestSimulationResultSerialization:
    def test_to_dict_round_trips_through_json(self):
        import json
        result = fake_result("wl", SchemeName.TXCACHE, 1234)
        data = json.loads(json.dumps(result.to_dict()))
        assert data["cycles"] == 1234
        assert data["scheme"] == "txcache"
        assert data["ipc"] == pytest.approx(result.ipc)

    def test_to_dict_with_raw_stats(self):
        result = fake_result("wl", SchemeName.SP, 10)
        result.raw_stats["x"] = 1.0
        data = result.to_dict(include_raw=True)
        assert data["raw_stats"] == {"x": 1.0}
