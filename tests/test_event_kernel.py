"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.event import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(10, order.append, "late")
    sim.schedule(1, order.append, "early")
    sim.schedule(5, order.append, "middle")
    sim.run()
    assert order == ["early", "middle", "late"]


def test_same_cycle_events_run_in_insertion_order():
    sim = Simulator()
    order = []
    for tag in range(8):
        sim.schedule(3, order.append, tag)
    sim.run()
    assert order == list(range(8))


def test_now_advances_to_last_event():
    sim = Simulator()
    sim.schedule(42, lambda: None)
    sim.run()
    assert sim.now == 42


def test_schedule_during_run_is_executed():
    sim = Simulator()
    seen = []

    def chain(depth):
        seen.append(depth)
        if depth < 3:
            sim.schedule(2, chain, depth + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 6


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, "a")
    sim.schedule(50, fired.append, "b")
    sim.run(until=10)
    assert fired == ["a"]
    assert sim.now == 10
    sim.run()
    assert fired == ["a", "b"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_max_events_guard_raises():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_counts_queued_events():
    sim = Simulator()
    assert sim.pending() == 0
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    assert sim.pending() == 2
