"""Unit tests for the discrete-event kernel.

Every behavioural test is parametrized over both kernels — the heapq
reference :class:`Simulator` and the :class:`TimingWheelSimulator` —
because the two must be observationally indistinguishable.
"""

import pytest

from repro.common.event import (
    KERNEL_ENV,
    SimulationError,
    Simulator,
    TimingWheelSimulator,
    create_simulator,
    default_kernel,
)

WHEEL = TimingWheelSimulator.WHEEL_SIZE


@pytest.fixture(params=["heap", "wheel"])
def sim(request):
    return create_simulator(request.param)


def test_events_run_in_time_order(sim):
    order = []
    sim.schedule(10, order.append, "late")
    sim.schedule(1, order.append, "early")
    sim.schedule(5, order.append, "middle")
    sim.run()
    assert order == ["early", "middle", "late"]


def test_same_cycle_events_run_in_insertion_order(sim):
    order = []
    for tag in range(8):
        sim.schedule(3, order.append, tag)
    sim.run()
    assert order == list(range(8))


def test_now_advances_to_last_event(sim):
    sim.schedule(42, lambda: None)
    sim.run()
    assert sim.now == 42


def test_schedule_during_run_is_executed(sim):
    seen = []

    def chain(depth):
        seen.append(depth)
        if depth < 3:
            sim.schedule(2, chain, depth + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 6


def test_run_until_stops_before_future_events(sim):
    fired = []
    sim.schedule(5, fired.append, "a")
    sim.schedule(50, fired.append, "b")
    sim.run(until=10)
    assert fired == ["a"]
    assert sim.now == 10
    sim.run()
    assert fired == ["a", "b"]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_max_events_guard_raises(sim):
    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_counts_queued_events(sim):
    assert sim.pending() == 0
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    assert sim.pending() == 2


def test_run_returns_executed_count(sim):
    for delay in (1, 1, 7):
        sim.schedule(delay, lambda: None)
    assert sim.run() == 3


def test_advance_hook_fires_between_time_steps(sim):
    """The hook fires once per distinct timestamp, after the clock
    moves and before any callback at the new time — even when several
    events share a cycle."""
    log = []
    sim.set_advance_hook(lambda t: log.append(("hook", t)))
    for tag in ("a", "b"):
        sim.schedule(3, lambda tag=tag: log.append(("ev3", tag)))
    sim.schedule(5, lambda: log.append(("ev5", "c")))
    sim.run()
    assert log == [("hook", 3), ("ev3", "a"), ("ev3", "b"),
                   ("hook", 5), ("ev5", "c")]


def test_advance_hook_not_fired_on_until_jump(sim):
    """run(until=...) jumping the clock past the last event is a quiet
    jump in the reference kernel; the wheel must match."""
    log = []
    sim.schedule(2, lambda: None)
    sim.set_advance_hook(lambda t: log.append(t))
    sim.run(until=100)
    assert log == [2]
    assert sim.now == 100


# ---------------------------------------------------------------------------
# Integral-time validation (regression: `schedule` used to truncate
# floats via int(), silently firing 1.5-cycle delays one cycle early).

def test_fractional_delay_rejected(sim):
    with pytest.raises(SimulationError, match="non-integral"):
        sim.schedule(1.5, lambda: None)
    assert sim.pending() == 0


def test_fractional_absolute_time_rejected(sim):
    with pytest.raises(SimulationError, match="non-integral"):
        sim.schedule_at(2.25, lambda: None)
    assert sim.pending() == 0


def test_integral_float_times_accepted(sim):
    """Whole-number floats (e.g. from ns->cycle arithmetic) are fine
    and behave exactly like their int counterparts."""
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule_at(1.0, order.append, "a")
    sim.run()
    assert order == ["a", "b"]
    assert sim.now == 2
    assert isinstance(sim.now, int)


def test_non_numeric_time_rejected(sim):
    with pytest.raises(SimulationError, match="integral number of cycles"):
        sim.schedule("soon", lambda: None)


# ---------------------------------------------------------------------------
# Timing-wheel specifics: far-future overflow and migration ordering.

def test_wheel_far_future_events_fire_in_order():
    sim = TimingWheelSimulator()
    order = []
    sim.schedule(3 * WHEEL + 5, order.append, "far")
    sim.schedule(2, order.append, "near")
    assert sim.pending() == 2
    sim.run()
    assert order == ["near", "far"]
    assert sim.now == 3 * WHEEL + 5


def test_wheel_migrated_event_precedes_later_same_cycle_schedule():
    """A far-future event scheduled FIRST must still run before a
    same-timestamp event scheduled later from within the horizon —
    migration must beat direct bucket inserts."""
    sim = TimingWheelSimulator()
    target = 2 * WHEEL + 10
    order = []
    sim.schedule_at(target, order.append, "scheduled-first-from-afar")

    def near_scheduler():
        sim.schedule_at(target, order.append, "scheduled-second-from-near")

    # runs inside the horizon of `target`, after the far schedule
    sim.schedule_at(target - 5, near_scheduler)
    sim.run()
    assert order == ["scheduled-first-from-afar",
                     "scheduled-second-from-near"]


def test_wheel_until_jump_migrates_far_events():
    """After run(until=...) jumps the clock, a previously-far event now
    inside the horizon must still order before later same-cycle
    schedules."""
    sim = TimingWheelSimulator()
    target = WHEEL + 50
    order = []
    sim.schedule_at(target, order.append, "old-far")
    sim.run(until=WHEEL)          # quiet jump; `target` is now near
    assert sim.now == WHEEL
    sim.schedule_at(target, order.append, "new-near")
    sim.run()
    assert order == ["old-far", "new-near"]


def test_wheel_same_cycle_burst_across_horizon_boundary():
    sim = TimingWheelSimulator()
    order = []
    for tag in range(4):
        sim.schedule_at(WHEEL - 1, order.append, ("edge", tag))
    for tag in range(4):
        sim.schedule_at(WHEEL, order.append, ("far", tag))
    sim.run()
    assert order == ([("edge", t) for t in range(4)]
                     + [("far", t) for t in range(4)])


def test_wheel_max_events_raise_keeps_state_consistent():
    """A mid-bucket max_events abort must leave already-run events
    removed so a resumed run() continues from the right place."""
    sim = TimingWheelSimulator()
    order = []
    for tag in range(6):
        sim.schedule(1, order.append, tag)
    with pytest.raises(SimulationError):
        sim.run(max_events=3)
    assert order == [0, 1, 2, 3]          # same as the reference kernel
    assert sim.pending() == 2
    sim.run()
    assert order == list(range(6))


def test_wheel_matches_heap_on_max_events_abort():
    def build(kernel):
        s = create_simulator(kernel)
        fired = []
        for tag in range(6):
            s.schedule(1, fired.append, tag)
        return s, fired

    heap_sim, heap_fired = build("heap")
    wheel_sim, wheel_fired = build("wheel")
    for s in (heap_sim, wheel_sim):
        with pytest.raises(SimulationError):
            s.run(max_events=3)
    assert wheel_fired == heap_fired
    assert wheel_sim.pending() == heap_sim.pending()
    assert wheel_sim.now == heap_sim.now


# ---------------------------------------------------------------------------
# Kernel factory.

def test_create_simulator_kernels():
    assert type(create_simulator("heap")) is Simulator
    assert type(create_simulator("wheel")) is TimingWheelSimulator


def test_create_simulator_reads_environment(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, "heap")
    assert default_kernel() == "heap"
    assert type(create_simulator()) is Simulator
    monkeypatch.setenv(KERNEL_ENV, "wheel")
    assert type(create_simulator()) is TimingWheelSimulator
    monkeypatch.delenv(KERNEL_ENV)
    assert type(create_simulator()) is TimingWheelSimulator


def test_create_simulator_rejects_unknown_kernel():
    with pytest.raises(SimulationError, match="unknown simulator kernel"):
        create_simulator("fifo")
