"""MESI directory protocol tests: transitions, invariants, integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.coherence import CoherenceState, MesiDirectory
from repro.common.stats import Stats

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID

LINE = 0x1000


def make(num_cores=4):
    return MesiDirectory(num_cores, Stats().scoped("coh"))


class TestReadTransitions:
    def test_cold_read_grants_exclusive(self):
        directory = make()
        outcome = directory.on_read(0, LINE)
        assert outcome.requester_state is E
        assert outcome.supplier is None
        assert directory.state_of(0, LINE) is E

    def test_second_reader_downgrades_exclusive(self):
        directory = make()
        directory.on_read(0, LINE)
        outcome = directory.on_read(1, LINE)
        assert outcome.requester_state is S
        assert outcome.supplier == 0
        assert not outcome.supplier_was_dirty
        assert directory.state_of(0, LINE) is S
        assert directory.state_of(1, LINE) is S

    def test_read_of_modified_line_snoops_dirty_owner(self):
        directory = make()
        directory.on_write(0, LINE)
        outcome = directory.on_read(1, LINE)
        assert outcome.supplier == 0
        assert outcome.supplier_was_dirty
        assert directory.state_of(0, LINE) is S

    def test_repeated_read_is_silent(self):
        directory = make()
        directory.on_read(0, LINE)
        outcome = directory.on_read(0, LINE)
        assert outcome.requester_state is E  # unchanged
        assert outcome.supplier is None


class TestWriteTransitions:
    def test_cold_write_takes_modified(self):
        directory = make()
        outcome = directory.on_write(0, LINE)
        assert directory.state_of(0, LINE) is M
        assert outcome.invalidated == []
        assert not outcome.was_upgrade

    def test_write_invalidates_all_sharers(self):
        directory = make()
        for core in (0, 1, 2):
            directory.on_read(core, LINE)
        outcome = directory.on_write(3, LINE)
        assert sorted(outcome.invalidated) == [0, 1, 2]
        for core in (0, 1, 2):
            assert directory.state_of(core, LINE) is I
        assert directory.state_of(3, LINE) is M

    def test_upgrade_from_shared(self):
        directory = make()
        directory.on_read(0, LINE)
        directory.on_read(1, LINE)
        outcome = directory.on_write(0, LINE)
        assert outcome.was_upgrade
        assert outcome.invalidated == [1]
        assert directory.state_of(0, LINE) is M

    def test_write_over_remote_modified_reports_dirty_owner(self):
        directory = make()
        directory.on_write(0, LINE)
        outcome = directory.on_write(1, LINE)
        assert outcome.dirty_owner == 0
        assert directory.state_of(0, LINE) is I
        assert directory.state_of(1, LINE) is M

    def test_write_to_own_modified_is_silent(self):
        directory = make()
        directory.on_write(0, LINE)
        outcome = directory.on_write(0, LINE)
        assert outcome.was_upgrade
        assert outcome.invalidated == []


class TestEvictions:
    def test_evict_removes_holder(self):
        directory = make()
        directory.on_read(0, LINE)
        directory.on_evict(0, LINE)
        assert directory.state_of(0, LINE) is I
        assert directory.holders(LINE) == set()

    def test_drop_line_returns_holders(self):
        directory = make()
        directory.on_read(0, LINE)
        directory.on_read(1, LINE)
        assert directory.drop_line(LINE) == {0, 1}
        assert directory.holders(LINE) == set()

    def test_owner_query(self):
        directory = make()
        assert directory.owner(LINE) is None
        directory.on_write(2, LINE)
        assert directory.owner(LINE) == 2
        directory.on_read(1, LINE)
        assert directory.owner(LINE) is None  # downgraded to S


class TestInvariantsUnderRandomTraffic:
    @given(st.lists(st.tuples(
        st.sampled_from(["read", "write", "evict"]),
        st.integers(0, 3),            # core
        st.integers(0, 7)),           # line index
        min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_invariants_hold(self, ops):
        directory = make(num_cores=4)
        for kind, core, line_index in ops:
            line = 0x1000 + line_index * 64
            if kind == "read":
                directory.on_read(core, line)
            elif kind == "write":
                directory.on_write(core, line)
            else:
                directory.on_evict(core, line)
            directory.check_invariants()

    @given(st.lists(st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(0, 3),
        st.integers(0, 3)),
        min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_writer_is_sole_holder(self, ops):
        directory = make(num_cores=4)
        for kind, core, line_index in ops:
            line = line_index * 64
            if kind == "read":
                directory.on_read(core, line)
            else:
                directory.on_write(core, line)
                assert directory.holders(line) == {core}
                assert directory.state_of(core, line) is M


class TestHierarchyIntegration:
    def build(self):
        from repro.cache.hierarchy import CacheHierarchy
        from repro.common.config import small_machine_config
        from repro.common.event import Simulator
        from repro.memory.system import MemorySystem

        sim = Simulator()
        stats = Stats()
        config = small_machine_config(num_cores=2)
        memory = MemorySystem(sim, config, stats)
        hierarchy = CacheHierarchy(sim, config, stats, memory)
        return sim, stats, memory, hierarchy

    def test_cross_core_write_visibility(self):
        from repro.common.types import NVM_BASE, Version

        sim, stats, memory, hierarchy = self.build()
        done = {}
        hierarchy.store(0, NVM_BASE, Version(1, 0))
        sim.run()
        hierarchy.load(1, NVM_BASE, lambda lat, v: done.update(v=v))
        sim.run()
        assert done["v"] == Version(1, 0)
        # core 0 downgraded M -> S by core 1's read
        assert hierarchy.coherence.state_of(0, NVM_BASE) in (
            CoherenceState.SHARED, CoherenceState.INVALID)

    def test_ping_pong_ownership(self):
        from repro.common.types import NVM_BASE, Version

        sim, stats, memory, hierarchy = self.build()
        for round_ in range(6):
            core = round_ % 2
            hierarchy.store(core, NVM_BASE, Version(1, round_))
            sim.run()
            assert hierarchy.coherence.holders(NVM_BASE) == {core}
            hierarchy.coherence.check_invariants()
        assert stats.counter("hierarchy.coherence.invalidations") >= 5
        # the final owner (core 1 wrote round 5) holds the newest data,
        # and an actual coherent load from core 0 observes it
        assert hierarchy.newest_version(1, NVM_BASE) == Version(1, 5)
        seen = {}
        hierarchy.load(0, NVM_BASE, lambda lat, v: seen.update(v=v))
        sim.run()
        assert seen["v"] == Version(1, 5)
