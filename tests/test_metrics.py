"""Prometheus exposition renderer, strict parser, and merge properties."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import Histogram, Stats
from repro.obs import (PROMETHEUS_CONTENT_TYPE, parse_prometheus,
                       sanitize_metric_name, stats_to_prometheus)

import pytest

metric_names = st.from_regex(r"[a-z][a-z0-9._]{0,20}", fullmatch=True)
counter_values = st.integers(min_value=0, max_value=10**9)
observations = st.floats(min_value=0.0, max_value=1e12,
                         allow_nan=False, allow_infinity=False)


def registries(draw):
    stats = Stats()
    for name, value in draw(st.dictionaries(
            metric_names, counter_values, max_size=6)).items():
        stats.inc(name, value)
    for name, values in draw(st.dictionaries(
            metric_names, st.lists(observations, min_size=1, max_size=8),
            max_size=4)).items():
        for value in values:
            stats.hist(name, value)
    return stats


registry_strategy = st.composite(registries)()


class TestSanitize:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_metric_name("serve.request.ms") == \
            "serve_request_ms"
        assert sanitize_metric_name("a-b c") == "a_b_c"

    def test_leading_digit_guarded(self):
        assert sanitize_metric_name("5xx") == "_5xx"

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_always_legal(self, name):
        import re
        assert re.match(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z",
                        sanitize_metric_name(name))


class TestRenderer:
    def test_counter_family_shape(self):
        stats = Stats()
        stats.inc("serve.admitted", 3)
        text = stats_to_prometheus(stats, labels={"node": "n0"})
        assert "# TYPE repro_serve_admitted_total counter" in text
        assert 'repro_serve_admitted_total{node="n0"} 3' in text

    def test_histogram_family_shape(self):
        stats = Stats()
        for value in (0.5, 3, 3, 9):
            stats.hist("lat.ms", value)
        families = parse_prometheus(stats_to_prometheus(stats))
        entry = families["repro_lat_ms"]
        assert entry["type"] == "histogram"
        buckets = {labels["le"]: value
                   for name, labels, value in entry["samples"]
                   if name == "repro_lat_ms_bucket"}
        # 0.5 → bucket 0 (le=2), 3,3 → bucket 1 (le=4), 9 → bucket 3
        assert buckets["2"] == 1
        assert buckets["4"] == 3
        assert buckets["16"] == 4
        assert buckets["+Inf"] == 4
        by_name = {name: value
                   for name, _labels, value in entry["samples"]}
        assert by_name["repro_lat_ms_count"] == 4
        assert by_name["repro_lat_ms_sum"] == pytest.approx(15.5)

    def test_histogram_shadow_counter_not_doubled(self):
        stats = Stats()
        stats.hist("lat", 4)
        stats.inc("lat", 1)          # same name used as a counter too
        text = stats_to_prometheus(stats)
        assert "repro_lat_total" not in text
        assert "# TYPE repro_lat histogram" in text

    def test_gauges_and_empty_registry(self):
        stats = Stats()
        assert stats_to_prometheus(stats) == ""
        text = stats_to_prometheus(stats, gauges={"queue_depth": 7})
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 7" in text

    def test_label_values_escaped(self):
        stats = Stats()
        stats.inc("x")
        text = stats_to_prometheus(
            stats, labels={"path": 'a"b\\c\nd'})
        families = parse_prometheus(text)
        (_name, labels, _value) = families["repro_x_total"]["samples"][0]
        assert labels["path"] == 'a"b\\c\nd'

    def test_content_type_constant(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestStrictParser:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no preceding"):
            parse_prometheus("foo_total 1\n")

    def test_rejects_malformed_comment(self):
        with pytest.raises(ValueError, match="malformed comment"):
            parse_prometheus("# NOPE foo counter\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown TYPE"):
            parse_prometheus("# TYPE foo enum\n")

    def test_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus("# TYPE foo counter\n"
                             "# TYPE foo counter\n")

    def test_rejects_counter_sample_without_total_suffix(self):
        with pytest.raises(ValueError, match="must end in _total"):
            parse_prometheus("# TYPE foo counter\nfoo 1\n")

    def test_rejects_bad_value_and_bad_labels(self):
        with pytest.raises(ValueError, match="unparsable sample value"):
            parse_prometheus("# TYPE g gauge\ng over9000\n")
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus('# TYPE g gauge\ng{oops} 1\n')
        with pytest.raises(ValueError, match="bad escape"):
            parse_prometheus('# TYPE g gauge\ng{a="\\q"} 1\n')

    def test_rejects_non_monotonic_histogram(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="2"} 5\n'
                'h_bucket{le="4"} 3\n'
                'h_bucket{le="+Inf"} 5\n')
        with pytest.raises(ValueError, match="non-monotonic"):
            parse_prometheus(text)

    def test_rejects_missing_inf_bucket(self):
        text = '# TYPE h histogram\nh_bucket{le="2"} 5\n'
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus(text)

    def test_rejects_inf_count_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 5\n'
                "h_count 6\n")
        with pytest.raises(ValueError, match="!= _count"):
            parse_prometheus(text)

    def test_accepts_timestamps_and_blank_lines(self):
        families = parse_prometheus(
            "\n# HELP g help text here\n# TYPE g gauge\n"
            "g 1.5 1700000000\n\n")
        assert families["g"]["samples"] == [("g", {}, 1.5)]
        assert families["g"]["help"] == "help text here"


class TestRoundTrip:
    @given(registry_strategy)
    @settings(max_examples=60, deadline=None)
    def test_rendered_text_parses_back_exactly(self, stats):
        text = stats_to_prometheus(stats, labels={"node": "n0"})
        if not text:
            return
        families = parse_prometheus(text)
        hist_names = set(stats.histograms())
        for name, value in stats.counters().items():
            if name in hist_names:
                continue
            family = "repro_%s_total" % sanitize_metric_name(name)
            samples = families[family]["samples"]
            assert samples == [(family, {"node": "n0"}, value)]
        for name, histogram in stats.histograms().items():
            family = "repro_%s" % sanitize_metric_name(name)
            entry = families[family]
            assert entry["type"] == "histogram"
            by_name = {}
            for sample_name, _labels, value in entry["samples"]:
                by_name.setdefault(sample_name, []).append(value)
            assert by_name[family + "_count"] == [histogram.count]
            assert by_name[family + "_sum"][0] == pytest.approx(
                stats.summary(name).total)

    @given(registry_strategy)
    @settings(max_examples=40, deadline=None)
    def test_histogram_buckets_reconstruct(self, stats):
        """Per-bucket counts are recoverable from the cumulative
        series: de-accumulating the parsed buckets gives back exactly
        Histogram.buckets()."""
        text = stats_to_prometheus(stats)
        if not text:
            return
        families = parse_prometheus(text)
        for name, histogram in stats.histograms().items():
            family = "repro_%s" % sanitize_metric_name(name)
            series = [(labels["le"], value)
                      for sample_name, labels, value
                      in families[family]["samples"]
                      if sample_name == family + "_bucket"]
            recovered = {}
            previous = 0
            for le, cumulative in series:
                if le == "+Inf":
                    continue
                bucket = int(math.log2(float(le))) - 1
                recovered[bucket] = int(cumulative - previous)
                previous = cumulative
            assert recovered == histogram.buckets()


class TestMergeProperties:
    @staticmethod
    def _filled(entries):
        stats = Stats()
        for name, values in entries:
            for value in values:
                stats.hist(name, value)
        return stats

    registry_entries = st.lists(
        st.tuples(metric_names,
                  st.lists(observations, min_size=1, max_size=5)),
        max_size=4)

    @given(registry_entries, registry_entries, registry_entries)
    @settings(max_examples=60, deadline=None)
    def test_histogram_merge_is_associative(self, a, b, c):
        left = self._filled(a)
        left_bc = self._filled(b)
        left_bc.merge(self._filled(c))
        left.merge(left_bc)

        right = self._filled(a)
        right.merge(self._filled(b))
        right.merge(self._filled(c))

        names = set(left.histograms()) | set(right.histograms())
        for name in names:
            assert left.histogram(name).buckets() == \
                right.histogram(name).buckets()
            assert left.histogram(name).count == \
                right.histogram(name).count
            assert left.summary(name).count == right.summary(name).count
            assert left.summary(name).total == pytest.approx(
                right.summary(name).total)

    @given(st.dictionaries(metric_names, counter_values,
                           min_size=1, max_size=5),
           st.dictionaries(metric_names, counter_values,
                           min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_prefix_namespacing_is_collision_free(self, mine, theirs):
        """Merging under a prefix never disturbs the target's own keys:
        every pre-existing counter reads exactly as before, and every
        merged counter reads at its prefixed name."""
        stats = Stats()
        for name, value in mine.items():
            stats.inc(name, value)
        other = Stats()
        for name, value in theirs.items():
            other.inc(name, value)
        stats.merge(other, prefix="node0.")
        for name, value in mine.items():
            expected = value + (theirs.get(name[len("node0."):], 0)
                                if name.startswith("node0.") else 0)
            assert stats.counter(name) == expected
        for name, value in theirs.items():
            expected = value + mine.get("node0." + name, 0)
            assert stats.counter("node0." + name) == expected
