"""Unit tests for the core timing model (run under the Optimal scheme)."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import small_machine_config
from repro.common.event import Simulator
from repro.common.stats import Stats
from repro.common.types import NVM_BASE, Version
from repro.cpu.core import Core
from repro.cpu.trace import OpType, Trace, TraceBuilder, TraceOp
from repro.memory.system import MemorySystem
from repro.persistence.base import OptimalScheme


def build_core(num_cores=1, core_config=None):
    sim = Simulator()
    stats = Stats()
    config = small_machine_config(num_cores=num_cores)
    if core_config is not None:
        from dataclasses import replace
        config = replace(config, core=core_config)
    memory = MemorySystem(sim, config, stats)
    hierarchy = CacheHierarchy(sim, config, stats, memory)
    scheme = OptimalScheme(sim, config, stats, hierarchy, memory)
    core = Core(sim, 0, config.core, stats.scoped("core.0"), scheme)
    return sim, stats, core, hierarchy, memory


def run(sim, core, trace):
    done = []
    core.run_trace(trace, on_done=lambda: done.append(True))
    sim.run()
    assert done, "core did not finish its trace"
    return core


class TestCompute:
    def test_compute_retires_issue_width_per_cycle(self):
        sim, stats, core, _h, _m = build_core()
        trace = Trace("t", [TraceOp(OpType.COMPUTE, count=40)])
        run(sim, core, trace)
        assert core.cycle == 10  # 40 instructions / 4-issue
        assert core.instructions_retired == 40

    def test_compute_rounds_up(self):
        sim, stats, core, _h, _m = build_core()
        trace = Trace("t", [TraceOp(OpType.COMPUTE, count=5)])
        run(sim, core, trace)
        assert core.cycle == 2


class TestLoads:
    def test_l1_hit_load_costs_one_cycle(self):
        sim, stats, core, hierarchy, _m = build_core()
        trace = Trace("t", [
            TraceOp(OpType.LOAD, addr=NVM_BASE),
            TraceOp(OpType.LOAD, addr=NVM_BASE),
        ])
        run(sim, core, trace)
        # first load misses to NVM; second is an L1 hit fully hidden
        assert stats.counter("l1.0.hit") == 1
        summary = stats.summary("core.0.load.latency")
        assert summary.count == 2
        assert summary.minimum == hierarchy.l1[0].latency

    def test_memory_miss_stalls_full_latency(self):
        sim, stats, core, _h, _m = build_core()
        trace = Trace("t", [TraceOp(OpType.LOAD, addr=NVM_BASE)])
        run(sim, core, trace)
        assert core.cycle > 130
        assert stats.counter("core.0.stall.load") > 0

    def test_persistent_load_latency_sampled(self):
        sim, stats, core, _h, _m = build_core()
        trace = Trace("t", [
            TraceOp(OpType.LOAD, addr=NVM_BASE),
            TraceOp(OpType.LOAD, addr=1 << 20),
        ])
        run(sim, core, trace)
        assert stats.summary("core.0.persist_load.latency").count == 1
        assert stats.summary("core.0.load.latency").count == 2


class TestStores:
    def test_store_issues_in_one_cycle(self):
        sim, stats, core, _h, _m = build_core()
        trace = Trace("t", [TraceOp(OpType.STORE, addr=NVM_BASE,
                                    version=Version(None, 0))])
        core.run_trace(trace)
        sim.run(until=2)
        # core moved on immediately even though the fill is outstanding
        assert core.instructions_retired == 1
        sim.run()

    def test_store_buffer_backpressure(self):
        from repro.common.config import CoreConfig
        sim, stats, core, _h, _m = build_core(
            core_config=CoreConfig(store_buffer_entries=2))
        ops = [TraceOp(OpType.STORE, addr=NVM_BASE + i * 4096)
               for i in range(16)]
        run(sim, core, Trace("t", ops))
        assert stats.counter("core.0.stall.store_buffer.events") > 0

    def test_stores_complete_architecturally_in_order(self):
        sim, stats, core, hierarchy, memory = build_core()
        ops = [TraceOp(OpType.STORE, addr=NVM_BASE, version=Version(None, i))
               for i in range(4)]
        run(sim, core, Trace("t", ops))
        assert hierarchy.newest_version(0, NVM_BASE) == Version(None, 3)


class TestTransactions:
    def test_tx_registers_follow_paper_semantics(self):
        sim, stats, core, _h, _m = build_core()
        builder = TraceBuilder("t")
        builder.begin_tx()
        builder.store(NVM_BASE)
        builder.end_tx()
        trace = builder.build()
        core.run_trace(trace)
        # step until inside the transaction
        while core.mode_tx is None and sim.step():
            pass
        assert core.mode_tx == 1
        assert core.next_tx_id == 2
        sim.run()
        assert core.mode_tx is None
        assert core.committed_transactions == 1

    def test_instruction_accounting_includes_markers(self):
        sim, stats, core, _h, _m = build_core()
        builder = TraceBuilder("t")
        builder.compute(8)
        builder.begin_tx()
        builder.store(NVM_BASE)
        builder.end_tx()
        trace = builder.build()
        run(sim, core, trace)
        assert core.instructions_retired == trace.instructions == 11


class TestMultiOpPrograms:
    def test_dependent_load_chain_time_accumulates(self):
        sim, stats, core, _h, _m = build_core()
        ops = [TraceOp(OpType.LOAD, addr=NVM_BASE + i * 4096) for i in range(4)]
        run(sim, core, Trace("t", ops))
        # four independent NVM misses, serialized by the blocking-load model
        assert core.cycle > 4 * 130

    def test_core_finishes_exactly_once(self):
        sim, stats, core, _h, _m = build_core()
        finishes = []
        trace = Trace("t", [TraceOp(OpType.COMPUTE, count=4)])
        core.run_trace(trace, on_done=lambda: finishes.append(1))
        sim.run()
        assert finishes == [1]
        assert stats.counter("core.0.finished") == 1
