"""The litmus engine end to end: stepped sweeps, the broken scheme,
minimization, fault composition, and the serve/CLI surfaces."""

import json

import pytest

from repro.cli import main
from repro.common.config import FaultConfig, small_machine_config
from repro.litmus import (
    BROKEN_COMMIT,
    CLASSIC_SHAPES,
    LitmusProgram,
    minimize_violation,
    run_litmus,
    run_litmus_matrix,
)
from repro.litmus.generator import message_passing, private_chain
from repro.litmus.runner import iter_crash_states
from repro.serve.protocol import ProtocolError, parse_request
from repro.sim.parallel import LitmusPoint
from repro.sim.system import System

SCHEMES = ("sp", "kiln", "txcache")


class TestCleanMatrix:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_classic_shapes_are_consistent_at_every_cycle(self, scheme):
        for shape in CLASSIC_SHAPES:
            result = run_litmus(shape(), scheme)
            assert result.consistent, (
                f"{result.program}/{scheme}: {result.first_violation}")
            # the sweep actually covered the whole run
            assert result.crash_cycles == result.total_cycles + 1
            assert 0 < result.states_checked <= result.crash_cycles

    def test_check_every_stride_covers_fewer_states(self):
        program = message_passing()
        dense = run_litmus(program, "txcache")
        strided = run_litmus(program, "txcache", check_every=8)
        assert strided.consistent
        assert strided.states_checked < dense.states_checked

    def test_matrix_report_aggregates(self):
        report = run_litmus_matrix([message_passing(), private_chain()],
                                   SCHEMES)
        assert report.total_runs == 6
        assert report.consistent_runs == 6
        assert report.violations == []
        assert "6 runs" in report.format()


class TestSteppedStatesMatchFreshRuns:
    """Soundness of the single-simulation sweep: the state the stepped
    runner checks at cycle C equals what a fresh simulation paused at
    C reports — for every scheme's recovery model."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_differential_at_sampled_cycles(self, scheme):
        program = message_passing()
        config = small_machine_config(num_cores=program.num_cores)

        stepped = System(config, scheme)
        stepped.load_traces(program.to_traces())
        states = {cycle: (committed, dict(recovered))
                  for cycle, committed, recovered
                  in iter_crash_states(stepped)}

        samples = sorted(states)[:: max(1, len(states) // 12)]
        for cycle in samples:
            fresh = System(config, scheme)
            fresh.load_traces(program.to_traces())
            fresh.run(until=cycle)
            assert fresh.scheme.durably_committed(cycle) == \
                states[cycle][0], f"committed diverged @ {cycle}"
            assert fresh.scheme.durable_lines(cycle) == \
                states[cycle][1], f"image diverged @ {cycle}"


class TestBrokenScheme:
    def test_broken_commit_is_caught_on_every_classic_shape(self):
        for shape in CLASSIC_SHAPES:
            result = run_litmus(shape(), BROKEN_COMMIT)
            assert not result.consistent, result.program
            assert result.first_violation is not None

    def test_violation_minimizes_to_a_tiny_counterexample(self):
        small = minimize_violation(message_passing(), BROKEN_COMMIT)
        assert small.op_count <= 8
        small.validate()
        # still failing after the rename
        assert not run_litmus(small, BROKEN_COMMIT).consistent

    def test_minimizer_rejects_passing_programs(self):
        from repro.litmus import minimize_program

        with pytest.raises(ValueError, match="requires a failing"):
            minimize_program(message_passing(), lambda p: False)

    def test_broken_scheme_is_not_a_servable_scheme(self):
        with pytest.raises(ProtocolError, match="scheme must be one of"):
            parse_request({"kind": "litmus",
                           "program": message_passing().to_dict(),
                           "scheme": BROKEN_COMMIT,
                           "config": {"num_cores": 2}})


class TestFaultComposition:
    def test_consistent_under_injected_faults(self):
        faults = FaultConfig(seed=7, nvm_write_fail_rate=1e-3,
                             ack_loss_rate=1e-3, tc_bit_flip_rate=1e-4)
        report = run_litmus_matrix(
            [message_passing(), private_chain()], ["txcache"],
            fault_config=faults)
        assert report.total_runs == 2
        assert all(r.consistent for r in report.results), \
            report.violations
        assert all(r.faulty for r in report.results)

    def test_fault_seeds_differ_per_run(self):
        # the matrix derives per-run seeds chaos_sweep-style; two runs
        # of the same program must not share a fault timeline
        faults = FaultConfig(seed=0, nvm_write_fail_rate=0.05)
        program = message_passing()
        a = run_litmus(program, "txcache",
                       fault_config=FaultConfig(seed=0,
                                                nvm_write_fail_rate=0.05))
        b = run_litmus(program, "txcache",
                       fault_config=FaultConfig(seed=1,
                                                nvm_write_fail_rate=0.05))
        report = run_litmus_matrix([program, program], ["txcache"],
                                   fault_config=faults)
        assert [r.total_cycles for r in report.results] == \
            [a.total_cycles, b.total_cycles]


class TestServeProtocol:
    def request(self, **over):
        data = {"kind": "litmus",
                "program": message_passing().to_dict(),
                "scheme": "txcache",
                "config": {"num_cores": 2}}
        data.update(over)
        return data

    def test_parses_to_the_engine_identical_point(self):
        program = message_passing()
        parsed = parse_request(self.request()).point
        built = LitmusPoint(
            program=program.canonical_json(), scheme="txcache",
            config=small_machine_config(num_cores=2))
        assert parsed == built
        assert parsed.key == built.key

    def test_deadline_and_check_every(self):
        request = parse_request(self.request(check_every=4,
                                             deadline_ms=1500))
        assert request.point.check_every == 4
        assert request.deadline == 1.5

    def test_rejects_program_on_other_kinds(self):
        with pytest.raises(ProtocolError, match="only applies to litmus"):
            parse_request({"kind": "experiment", "workload": "sps",
                           "scheme": "txcache",
                           "program": message_passing().to_dict()})

    def test_rejects_workload_keys_on_litmus(self):
        with pytest.raises(ProtocolError, match="does not apply"):
            parse_request(self.request(workload="sps"))

    def test_rejects_missing_program(self):
        data = self.request()
        del data["program"]
        with pytest.raises(ProtocolError, match="requires a program"):
            parse_request(data)

    def test_rejects_malformed_program(self):
        bad = {"name": "x", "cores": [[{"op": "store", "line": 0}]]}
        with pytest.raises(ProtocolError,
                           match="store outside a transaction"):
            parse_request(self.request(program=bad))

    def test_rejects_too_few_cores(self):
        with pytest.raises(ProtocolError, match="needs 2 cores"):
            parse_request(self.request(config={"num_cores": 1}))

    def test_litmus_point_roundtrips_through_execute(self):
        program = private_chain()
        point = LitmusPoint(
            program=program.canonical_json(), scheme="kiln",
            config=small_machine_config(num_cores=2))
        payload = point.execute()
        restored = LitmusPoint.deserialize(json.loads(json.dumps(payload)))
        assert restored.consistent
        assert restored.program == program.name


class TestCli:
    def test_small_clean_matrix_exits_zero(self, capsys):
        assert main(["litmus", "--programs", "6",
                     "--schemes", "kiln", "txcache"]) == 0
        out = capsys.readouterr().out
        assert "litmus matrix: 12 runs" in out
        assert "OK" in out and "VIOLATION" not in out

    def test_broken_scheme_exits_nonzero_and_minimizes(self, capsys):
        code = main(["litmus", "--programs", "1",
                     "--schemes", "broken_commit", "--minimize"])
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "minimized mp/broken_commit" in out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["litmus", "--programs", "2",
                     "--schemes", "txcache", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["matrix"]) == 2
        assert payload["matrix"][0]["violating_cycles"] == 0

    def test_chaos_flag_adds_fault_subset(self, capsys):
        assert main(["litmus", "--programs", "2",
                     "--schemes", "kiln", "--chaos", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["chaos"]) == 2
        assert all(r["faulty"] for r in payload["chaos"])
        assert not any(r["faulty"] for r in payload["matrix"])
