"""Tests for the parallel experiment engine and its result cache.

The engine's contract is stronger than "runs stuff in parallel": the
merged output must be **identical** to the serial output (same objects,
field for field), and a cache hit must never change a report.  The
Hypothesis properties at the bottom drive random grids through the
serial path, the pooled path, and a cold/warm cache cycle and require
exact agreement every time.
"""

import json
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import (
    FaultConfig,
    config_fingerprint,
    small_machine_config,
)
from repro.common.types import SchemeName
from repro.sim.chaos import ChaosRun, chaos_sweep
from repro.sim.crash import CrashReport, crash_sweep, run_with_crash
from repro.sim.parallel import (
    ChaosPoint,
    CrashPoint,
    ExperimentEngine,
    ExperimentPoint,
    ResultCache,
    RunLengthPoint,
)
from repro.sim.runner import run_experiment
from repro.sim.sweep import tc_size_sweep

CONFIG = small_machine_config(num_cores=1)


def result_dicts(results):
    return [r.to_dict(include_raw=True) for r in results]


class TestPointKeys:
    def test_key_is_stable(self):
        a = ExperimentPoint("sps", "txcache", CONFIG, operations=20)
        b = ExperimentPoint("sps", "txcache", CONFIG, operations=20)
        assert a.key == b.key

    @pytest.mark.parametrize("change", [
        lambda p: replace(p, workload="hashtable"),
        lambda p: replace(p, scheme="optimal"),
        lambda p: replace(p, operations=21),
        lambda p: replace(p, seed=43),
        lambda p: replace(p, workload_params=(("array_elements", 64),)),
        lambda p: replace(p, config=replace(
            p.config, txcache=replace(p.config.txcache, size_bytes=1024))),
        # a knob buried three dataclasses deep still changes the key
        lambda p: replace(p, config=replace(
            p.config, faults=FaultConfig(nvm_write_fail_rate=1e-3))),
    ])
    def test_any_spec_change_changes_key(self, change):
        base = ExperimentPoint("sps", "txcache", CONFIG, operations=20)
        assert change(base).key != base.key

    def test_kinds_never_collide(self):
        exp = ExperimentPoint("sps", "txcache", CONFIG, operations=20)
        length = RunLengthPoint("sps", "txcache", CONFIG, operations=20)
        assert exp.key != length.key

    def test_config_fingerprint_covers_every_knob(self):
        base = small_machine_config()
        assert config_fingerprint(base) == config_fingerprint(
            small_machine_config())
        deep = replace(base, nvm=replace(
            base.nvm, timing=replace(base.nvm.timing, write_ns=77.0)))
        assert config_fingerprint(deep) != config_fingerprint(base)


class TestRoundTrips:
    """from_dict(to_dict(x)) must reproduce x exactly — through JSON."""

    def test_simulation_result(self):
        result = run_experiment("sps", "txcache", config=CONFIG,
                                operations=20)
        data = json.loads(json.dumps(result.to_dict(include_raw=True)))
        rebuilt = type(result).from_dict(data)
        assert rebuilt.to_dict(include_raw=True) == \
            result.to_dict(include_raw=True)
        assert rebuilt.scheme is SchemeName.TXCACHE

    def test_crash_report(self):
        report = run_with_crash("sps", "txcache", 2000, config=CONFIG,
                                operations=15)
        data = json.loads(json.dumps(report.to_dict()))
        rebuilt = CrashReport.from_dict(data)
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.committed == report.committed

    def test_chaos_run(self):
        report = chaos_sweep(["sps"], fractions=[0.5], operations=15)
        run = report.runs[0]
        data = json.loads(json.dumps(run.to_dict()))
        assert ChaosRun.from_dict(data).to_dict() == run.to_dict()


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", {"workload": "sps"}, {"cycles": 7})
        assert cache.get("k1") == {"cycles": 7}
        assert len(cache) == 1

    def test_missing_key_is_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("nope") is None

    def test_corrupt_file_is_miss_not_error(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path("bad").write_text("{not json")
        cache.path("shape").write_text(json.dumps(["wrong", "shape"]))
        assert cache.get("bad") is None
        assert cache.get("shape") is None

    def test_spec_stored_for_debugging(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", {"workload": "sps"}, {"cycles": 7})
        entry = json.loads(cache.path("k1").read_text())
        assert entry["spec"] == {"workload": "sps"}

    def test_put_leaves_no_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", {}, {"cycles": 7})
        assert [path.name for path in tmp_path.iterdir()] == ["k1.json"]

    def test_concurrent_writers_always_leave_valid_entries(self, tmp_path):
        import threading as _threading

        cache = ResultCache(tmp_path)
        errors = []

        def hammer(worker):
            try:
                for i in range(25):
                    cache.put("shared", {"w": worker},
                              {"cycles": 7, "i": i})
                    assert cache.get("shared") is not None
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [_threading.Thread(target=hammer, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        payload = cache.get("shared")
        assert payload is not None and payload["cycles"] == 7
        assert sorted(path.name for path in tmp_path.iterdir()) \
            == ["shared.json"]

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=0)

    def test_cap_evicts_oldest_mtime_first(self, tmp_path):
        import os as _os

        filler = ResultCache(tmp_path)          # uncapped: no eviction
        for index, key in enumerate(("old", "mid", "new")):
            filler.put(key, {}, {"pad": "x" * 200})
            _os.utime(filler.path(key), (100 + index, 100 + index))
        entry_size = filler.path("old").stat().st_size
        capped = ResultCache(tmp_path, max_bytes=entry_size * 2 + 10)
        capped.put("now", {}, {"pad": "x" * 200})
        assert capped.get("old") is None        # oldest two went
        assert capped.get("mid") is None
        assert capped.get("new") is not None
        assert capped.get("now") is not None
        assert capped.size_bytes() <= capped.max_bytes

    def test_just_written_entry_survives_tiny_cap(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        cache.put("only", {}, {"pad": "x" * 200})
        assert cache.get("only") is not None    # never evicts itself

    def test_uncapped_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(5):
            cache.put(f"k{index}", {}, {"pad": "x" * 200})
        assert len(cache) == 5


class TestEngineBasics:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=0)

    def test_engine_matches_direct_run(self):
        point = ExperimentPoint("sps", "txcache", CONFIG, operations=20)
        (via_engine,) = ExperimentEngine(jobs=1).run([point])
        direct = run_experiment("sps", "txcache", config=CONFIG,
                                operations=20)
        assert via_engine.to_dict(include_raw=True) == \
            direct.to_dict(include_raw=True)

    def test_duplicate_points_execute_once(self):
        engine = ExperimentEngine(jobs=1)
        point = ExperimentPoint("sps", "txcache", CONFIG, operations=15)
        first, second = engine.run([point, point])
        assert engine.stats.counter("engine.executed") == 1
        assert first.to_dict(include_raw=True) == \
            second.to_dict(include_raw=True)

    def test_per_point_timing_recorded(self):
        engine = ExperimentEngine(jobs=1)
        engine.run([ExperimentPoint("sps", "txcache", CONFIG,
                                    operations=15)])
        timing = engine.stats.summary("engine.point.seconds")
        assert timing.count == 1
        assert timing.total > 0

    def test_no_cache_flag_means_no_files(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                  use_cache=False)
        engine.run([ExperimentPoint("sps", "txcache", CONFIG,
                                    operations=15)])
        assert list(tmp_path.glob("*.json")) == []

    def test_summary_mentions_hits(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        point = ExperimentPoint("sps", "txcache", CONFIG, operations=15)
        engine.run([point])
        engine.run([point])
        assert "hits=1" in engine.summary()


class TestSweepThroughEngine:
    def test_engine_sweep_equals_serial_sweep(self):
        sweep = tc_size_sweep(sizes=(512, 4096))
        serial = sweep.run("sps", "txcache", operations=20,
                           array_elements=64)
        engine = sweep.run("sps", "txcache", operations=20,
                           array_elements=64,
                           engine=ExperimentEngine(jobs=2))
        assert serial.to_json() == engine.to_json()

    def test_engine_rejects_prebuilt_traces(self):
        from repro.sim.runner import make_traces

        traces = make_traces("sps", 1, 10)
        with pytest.raises(ValueError, match="traces"):
            tc_size_sweep(sizes=(4096,)).run(
                "sps", "txcache", traces=traces,
                engine=ExperimentEngine(jobs=1))


class TestCrashAndChaosThroughEngine:
    def test_crash_sweep_identical(self):
        kwargs = dict(fractions=[0.4, 0.8], operations=15)
        serial = crash_sweep("sps", "txcache", **kwargs)
        pooled = crash_sweep("sps", "txcache",
                             engine=ExperimentEngine(jobs=2), **kwargs)
        assert [r.to_dict() for r in serial] == \
            [r.to_dict() for r in pooled]

    def test_chaos_sweep_identical(self):
        fault = FaultConfig(nvm_write_fail_rate=1e-3, ack_loss_rate=1e-3)
        kwargs = dict(schemes=["txcache"], fault_config=fault,
                      fractions=[0.3, 0.7], operations=15)
        serial = chaos_sweep(["sps"], **kwargs)
        pooled = chaos_sweep(["sps"], engine=ExperimentEngine(jobs=2),
                             **kwargs)
        assert serial.format() == pooled.format()
        assert [r.to_dict() for r in serial.runs] == \
            [r.to_dict() for r in pooled.runs]


class TestUpfrontValidation:
    """A bad knob value must raise before any point simulates."""

    def test_chaos_bad_config_raises_before_running(self, monkeypatch):
        executed = []
        monkeypatch.setattr(
            "repro.sim.chaos.run_chaos_crash",
            lambda *a, **k: executed.append(a))
        monkeypatch.setattr(
            "repro.sim.chaos.measure_run_length",
            lambda *a, **k: executed.append(a))
        bad = replace(CONFIG, llc=replace(CONFIG.llc, size_bytes=1000))
        with pytest.raises(ValueError, match="chaos sweep config"):
            chaos_sweep(["sps"], config=bad, operations=15)
        assert executed == []


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------
POINT = st.tuples(
    st.sampled_from(["sps", "hashtable"]),
    st.sampled_from(["optimal", "txcache"]),
    st.integers(min_value=8, max_value=15),   # operations
    st.integers(min_value=0, max_value=3),    # seed
)
GRID = st.lists(POINT, min_size=1, max_size=3)


def build_points(grid):
    return [ExperimentPoint(workload, scheme, CONFIG,
                            operations=operations, seed=seed)
            for workload, scheme, operations, seed in grid]


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(grid=GRID)
def test_property_pooled_equals_serial(grid):
    """Random grids: the pooled path's merged report is identical to
    the serial path's, element for element."""
    points = build_points(grid)
    serial = ExperimentEngine(jobs=1).run(points)
    pooled = ExperimentEngine(jobs=2).run(points)
    assert result_dicts(serial) == result_dicts(pooled)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(grid=GRID)
def test_property_cache_hits_never_change_a_report(grid, tmp_path_factory):
    """Cold run, then a warm run on the same cache: every unique point
    hits, nothing re-simulates, and the merged report is unchanged."""
    cache_dir = tmp_path_factory.mktemp("engine-cache")
    points = build_points(grid)
    unique = len({point.key for point in points})
    cold_engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    cold = cold_engine.run(points)
    assert cold_engine.stats.counter("engine.executed") == unique
    warm_engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
    warm = warm_engine.run(points)
    assert warm_engine.stats.counter("engine.cache.hits") == unique
    assert warm_engine.stats.counter("engine.executed") == 0
    assert result_dicts(cold) == result_dicts(warm)


class TestResultCacheCounters:
    """hit/miss/eviction counters feed the serve /stats endpoint and
    the cluster's merged cache-effectiveness view."""

    def test_fresh_cache_counts_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.counters() == {"hits": 0, "misses": 0,
                                    "evictions": 0}

    def test_misses_then_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("nope") is None
        cache.put("k", {}, {"cycles": 1})
        assert cache.get("k") == {"cycles": 1}
        assert cache.get("k") == {"cycles": 1}
        assert cache.counters() == {"hits": 2, "misses": 1,
                                    "evictions": 0}

    def test_corrupt_entries_count_as_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path("bad").write_text("{not json")
        cache.path("shape").write_text(json.dumps(["wrong"]))
        assert cache.get("bad") is None
        assert cache.get("shape") is None
        assert cache.counters()["misses"] == 2

    def test_evictions_counted_by_the_evicting_instance(self, tmp_path):
        import os as _os

        filler = ResultCache(tmp_path)
        for index, key in enumerate(("old", "mid", "new")):
            filler.put(key, {}, {"pad": "x" * 200})
            _os.utime(filler.path(key), (100 + index, 100 + index))
        entry_size = filler.path("old").stat().st_size
        capped = ResultCache(tmp_path, max_bytes=entry_size * 2 + 10)
        capped.put("now", {}, {"pad": "x" * 200})
        assert capped.counters()["evictions"] == 2
        assert filler.counters()["evictions"] == 0   # not its doing

    def test_uncapped_cache_never_counts_evictions(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(5):
            cache.put(f"k{index}", {}, {"pad": "x" * 200})
        assert cache.counters()["evictions"] == 0
