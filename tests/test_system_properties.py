"""System-level property tests: completeness and conservation laws.

These invariants must hold for any trace under any scheme:

* every memory request enqueued at a controller completes exactly once;
* the core retires exactly the instructions of its (prepared) trace;
* the inclusive hierarchy never holds a line in L1/L2 whose LLC entry
  was back-invalidated;
* the simulation always drains (no lost wakeups / deadlock).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import small_machine_config
from repro.common.event import Simulator
from repro.common.stats import Stats
from repro.common.types import (
    CACHE_LINE_SIZE,
    NVM_BASE,
    MemReqType,
    MemRequest,
    SchemeName,
)
from repro.cpu.trace import OpType, Trace, TraceBuilder
from repro.memory.system import MemorySystem
from repro.sim.system import System


# ---------------------------------------------------------------------------
# random well-formed traces
# ---------------------------------------------------------------------------
@st.composite
def small_traces(draw):
    builder = TraceBuilder("prop")
    for _ in range(draw(st.integers(1, 25))):
        action = draw(st.sampled_from(["tx", "load", "store", "compute"]))
        addr_line = draw(st.integers(0, 30))
        persistent = draw(st.booleans())
        base = NVM_BASE if persistent else (1 << 20)
        addr = base + addr_line * CACHE_LINE_SIZE
        if action == "tx":
            builder.begin_tx()
            for _ in range(draw(st.integers(1, 6))):
                inner = draw(st.integers(0, 30))
                builder.store(NVM_BASE + inner * CACHE_LINE_SIZE)
            builder.end_tx()
        elif action == "load":
            builder.load(addr)
        elif action == "store" and not persistent:
            builder.store(addr)
        else:
            builder.compute(draw(st.integers(1, 50)))
    return builder.build()


class TestExecutionProperties:
    @given(trace=small_traces(),
           scheme=st.sampled_from(["optimal", "sp", "kiln", "txcache"]))
    @settings(max_examples=40, deadline=None)
    def test_simulation_drains_and_retires_everything(self, trace, scheme):
        system = System.build(scheme, num_cores=1)
        system.load_traces([trace])
        system.run(max_events=2_000_000)
        assert system.cores[0].done
        prepared_instructions = system.cores[0].instructions_retired
        # the core retired exactly the prepared trace's instructions
        prepared = system.scheme.prepare_trace(trace)
        # (prepare_trace is deterministic but stateful for SP's log
        # cursor; compare against the retired count being >= original)
        assert prepared_instructions >= trace.instructions
        assert not system.memory.busy()
        assert not system.scheme.busy()

    @given(trace=small_traces())
    @settings(max_examples=30, deadline=None)
    def test_architectural_state_identical_across_schemes(self, trace):
        final = {}
        for scheme in ("optimal", "txcache", "kiln", "sp"):
            system = System.build(scheme, num_cores=1)
            system.load_traces([trace])
            system.run(max_events=2_000_000)
            state = {}
            for op in trace.ops:
                if op.op is OpType.STORE:
                    from repro.common.types import line_addr
                    line = line_addr(op.addr)
                    state[line] = system.hierarchy.newest_version(0, line)
            final[scheme] = state
        assert final["optimal"] == final["txcache"] == \
            final["kiln"] == final["sp"]


class TestControllerCompleteness:
    @given(st.lists(
        st.tuples(st.integers(0, 63), st.booleans()),
        min_size=1, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_every_request_completes_exactly_once(self, accesses):
        sim = Simulator()
        stats = Stats()
        memory = MemorySystem(sim, small_machine_config(num_cores=1), stats)
        completions = []
        for index, (line_index, is_write) in enumerate(accesses):
            addr = NVM_BASE + line_index * CACHE_LINE_SIZE
            if is_write:
                memory.write(addr, None,
                             on_complete=lambda r, c, i=index:
                             completions.append(i))
            else:
                memory.read(addr, lambda v, c, i=index:
                            completions.append(i))
        sim.run(max_events=1_000_000)
        assert sorted(completions) == list(range(len(accesses)))
        assert not memory.busy()


class TestDeterminism:
    """Same seed → same simulation, bit for bit — including under fault
    injection, whose draws come from seeded per-site streams, and under
    crash injection, whose reports must be reproducible artifacts."""

    FAULTY = dict(seed=11, nvm_write_fail_rate=1e-2, ack_loss_rate=1e-2,
                  ack_duplicate_rate=1e-2, tc_bit_flip_rate=1e-3,
                  ack_timeout_cycles=500)

    def _run(self, fault_kwargs):
        from dataclasses import replace

        from repro.common.config import FaultConfig
        from repro.sim.runner import make_traces

        config = replace(small_machine_config(num_cores=2),
                         faults=FaultConfig(**fault_kwargs))
        system = System(config, "txcache")
        system.load_traces(make_traces("hashtable", 2, 40, seed=5))
        system.run(max_events=5_000_000)
        return system

    def test_identical_stats_dumps_fault_free(self):
        first, second = self._run({}), self._run({})
        assert first.sim.now == second.sim.now
        assert first.stats.as_dict() == second.stats.as_dict()

    def test_identical_stats_dumps_under_fault_injection(self):
        first, second = self._run(self.FAULTY), self._run(self.FAULTY)
        # sanity: faults actually fired in this configuration
        assert first.stats.counter("mem.nvm.write.verify_failures") > 0
        assert first.sim.now == second.sim.now
        assert first.stats.as_dict() == second.stats.as_dict()

    def test_identical_crash_reports_under_fault_injection(self):
        from dataclasses import replace

        from repro.common.config import FaultConfig
        from repro.sim.crash import run_with_crash

        config = replace(small_machine_config(num_cores=1),
                         faults=FaultConfig(**self.FAULTY))
        reports = [run_with_crash("sps", "txcache", 4000, config=config,
                                  operations=40, seed=5)
                   for _ in range(2)]
        assert reports[0] == reports[1]

    def test_identical_chaos_reports(self):
        from repro.common.config import FaultConfig
        from repro.sim.chaos import chaos_sweep

        fault_config = FaultConfig(seed=1, nvm_write_fail_rate=1e-2,
                                   ack_loss_rate=1e-2,
                                   tc_bit_flip_rate=1e-3,
                                   ack_timeout_cycles=500)
        sweeps = [chaos_sweep(["sps"], fault_config=fault_config,
                              fractions=(0.3, 0.7), operations=25)
                  for _ in range(2)]
        assert sweeps[0].runs == sweeps[1].runs
        assert sweeps[0].format() == sweeps[1].format()


class TestInclusionProperty:
    @given(trace=small_traces())
    @settings(max_examples=30, deadline=None)
    def test_private_lines_are_tracked_by_directory(self, trace):
        system = System.build("optimal", num_cores=1)
        system.load_traces([trace])
        system.run(max_events=2_000_000)
        hierarchy = system.hierarchy
        hierarchy.coherence.check_invariants()
        for level in (hierarchy.l1[0], hierarchy.l2[0]):
            for entry in level.array.iter_lines():
                assert 0 in hierarchy.coherence.holders(entry.tag), (
                    f"line {entry.tag:#x} resident in {level.name} but "
                    "not tracked by the MESI directory")
