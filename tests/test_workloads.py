"""Functional + trace tests for the workload generators."""

import pytest

from repro.common.types import NVM_BASE, is_persistent_addr
from repro.cpu.trace import OpType
from repro.workloads import (
    PAPER_WORKLOADS,
    WORKLOADS,
    BTreeWorkload,
    GraphWorkload,
    HashtableWorkload,
    OutOfMemory,
    PersistentHeap,
    RbTreeWorkload,
    SpsWorkload,
    VolatileHeap,
    create_workload,
    workload_table,
)


class TestHeaps:
    def test_persistent_heap_addresses_are_persistent(self):
        heap = PersistentHeap(core_id=0)
        addr = heap.alloc(64)
        assert is_persistent_addr(addr)

    def test_volatile_heap_addresses_are_volatile(self):
        heap = VolatileHeap(core_id=0)
        assert not is_persistent_addr(heap.alloc(64))

    def test_alignment(self):
        heap = PersistentHeap()
        heap.alloc(3)
        addr = heap.alloc(8)
        assert addr % 8 == 0

    def test_cores_get_disjoint_regions(self):
        a = PersistentHeap(core_id=0)
        b = PersistentHeap(core_id=1)
        assert not a.contains(b.alloc(64))

    def test_out_of_memory(self):
        heap = PersistentHeap(capacity=128)
        heap.alloc(100)
        with pytest.raises(OutOfMemory):
            heap.alloc(100)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            PersistentHeap().alloc(0)


class TestRegistry:
    def test_paper_workloads_registered(self):
        for name in PAPER_WORKLOADS:
            assert name in WORKLOADS

    def test_create_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            create_workload("nope")

    def test_table3_descriptions(self):
        table = workload_table()
        assert table["graph"] == "Insert in an adjacency list graph."
        assert table["sps"] == "Randomly swap elements in an array."
        assert "B+tree" in table["btree"]


@pytest.mark.parametrize("name", PAPER_WORKLOADS)
class TestAllWorkloadTraces:
    def test_trace_is_valid_and_transactional(self, name):
        workload = create_workload(name, seed=1)
        trace = workload.generate(50)
        trace.validate()
        assert trace.transactions > 0
        assert trace.persistent_stores > 0

    def test_deterministic_given_seed(self, name):
        t1 = create_workload(name, seed=3).generate(30)
        t2 = create_workload(name, seed=3).generate(30)
        assert t1.ops == t2.ops

    def test_different_seeds_differ(self, name):
        t1 = create_workload(name, seed=3).generate(30)
        t2 = create_workload(name, seed=4).generate(30)
        assert t1.ops != t2.ops

    def test_all_persistent_stores_inside_transactions(self, name):
        trace = create_workload(name, seed=1).generate(30)
        open_tx = False
        for op in trace.ops:
            if op.op is OpType.TX_BEGIN:
                open_tx = True
            elif op.op is OpType.TX_END:
                open_tx = False
            elif op.op is OpType.STORE and op.persistent:
                assert open_tx, f"{name}: persistent store outside tx"


class TestSps:
    def test_swaps_mirror_values(self):
        workload = SpsWorkload(seed=7, array_elements=64)
        workload.generate(100)
        assert sorted(workload.values) == list(range(64))

    def test_write_intensity_is_highest(self):
        sps = SpsWorkload(seed=1, array_elements=128).generate(100)
        graph = GraphWorkload(seed=1, vertices=128).generate(100)
        sps_ratio = sps.persistent_stores / sps.instructions
        graph_ratio = graph.persistent_stores / graph.instructions
        assert sps_ratio > graph_ratio


class TestGraph:
    def test_adjacency_mirrors_inserts(self):
        workload = GraphWorkload(seed=5, vertices=16)
        workload.generate(200)
        assert sum(workload.degree(v) for v in range(16)) == 200


class TestHashtable:
    def test_search_finds_inserted_values(self):
        table = HashtableWorkload(seed=2, buckets=32)
        table.setup()
        table.insert(10, 1010)
        table.insert(42, 4242)
        assert table.search(10) == 1010
        assert table.search(42) == 4242
        assert table.search(999) is None

    def test_chaining_collisions(self):
        table = HashtableWorkload(seed=2, buckets=1)
        table.setup()
        for key in range(20):
            table.insert(key, key * 2)
        for key in range(20):
            assert table.search(key) == key * 2

    def test_oracle_tracks_contents(self):
        table = HashtableWorkload(seed=9, buckets=64)
        table.generate(200)
        for key, value in list(table.contents.items())[:20]:
            assert table.search(key) == value


class TestRbTree:
    def test_invariants_hold_after_many_inserts(self):
        tree = RbTreeWorkload(seed=3, initial_keys=0)
        for key in range(500):
            tree.insert(key * 37 % 1000, key)
        tree.check_invariants()

    def test_sorted_order(self):
        tree = RbTreeWorkload(seed=3, initial_keys=0)
        keys = [k * 131 % 997 for k in range(300)]
        for key in keys:
            tree.insert(key, key)
        assert tree.sorted_keys() == sorted(set(keys))

    def test_search(self):
        tree = RbTreeWorkload(seed=3, initial_keys=0)
        tree.insert(5, 50)
        tree.insert(1, 10)
        tree.insert(9, 90)
        assert tree.search(1) == 10
        assert tree.search(9) == 90
        assert tree.search(7) is None

    def test_update_existing_key(self):
        tree = RbTreeWorkload(seed=3, initial_keys=0)
        tree.insert(5, 50)
        tree.insert(5, 55)
        assert tree.search(5) == 55
        assert tree.sorted_keys() == [5]

    def test_generate_keeps_invariants(self):
        tree = RbTreeWorkload(seed=11, initial_keys=64)
        tree.generate(100)
        tree.check_invariants()


class TestBTree:
    def test_invariants_hold_after_many_inserts(self):
        tree = BTreeWorkload(seed=3, initial_keys=0)
        for key in range(500):
            tree.insert(key * 37 % 1000, key)
        tree.check_invariants()

    def test_sorted_leaf_chain(self):
        tree = BTreeWorkload(seed=3, initial_keys=0)
        keys = [k * 131 % 997 for k in range(300)]
        for key in keys:
            tree.insert(key, key)
        assert tree.sorted_keys() == sorted(set(keys))

    def test_search(self):
        tree = BTreeWorkload(seed=3, initial_keys=0)
        for key in range(100):
            tree.insert(key, key * 3)
        for key in range(100):
            assert tree.search(key) == key * 3
        assert tree.search(1000) is None

    def test_update_existing_key(self):
        tree = BTreeWorkload(seed=3, initial_keys=0)
        tree.insert(7, 70)
        tree.insert(7, 77)
        assert tree.search(7) == 77

    def test_root_splits_increase_depth(self):
        tree = BTreeWorkload(seed=3, initial_keys=0)
        for key in range(200):
            tree.insert(key, key)
        assert not tree.root.leaf
        tree.check_invariants()

    def test_generate_keeps_invariants(self):
        tree = BTreeWorkload(seed=11, initial_keys=64)
        tree.generate(100)
        tree.check_invariants()


class TestSynthetic:
    def test_store_count_matches_configuration(self):
        from repro.workloads import SyntheticWorkload
        workload = SyntheticWorkload(seed=1, footprint_lines=64,
                                     stores_per_tx=5, loads_per_tx=2)
        trace = workload.generate(10)
        # setup writes 64 lines + 10 tx x 5 stores
        assert trace.persistent_stores == 64 + 50
