"""Unit tests for the memory controller, banks, and queues."""

import pytest

from repro.common.config import MemCtrlConfig, MemTimingConfig, paper_machine_config
from repro.common.event import Simulator
from repro.common.stats import Stats
from repro.common.types import NVM_BASE, MemReqType, MemRequest, Version
from repro.memory.bank import BankArray
from repro.memory.controller import DurableImage, MemoryController
from repro.memory.queues import RequestQueue

FREQ = 2.0


def nvm_config(**overrides) -> MemCtrlConfig:
    base = paper_machine_config().nvm
    if not overrides:
        return base
    from dataclasses import replace

    return replace(base, **overrides)


def make_controller(sim=None, config=None, ack_handler=None, image=None):
    sim = sim or Simulator()
    stats = Stats()
    ctrl = MemoryController(
        sim,
        config or nvm_config(),
        stats.scoped("nvm"),
        FREQ,
        durable_image=image,
        ack_handler=ack_handler,
    )
    return sim, stats, ctrl


def read(addr, callback=None):
    return MemRequest(addr=addr, req_type=MemReqType.READ, callback=callback)


def write(addr, persistent=False, version=None, callback=None):
    return MemRequest(
        addr=addr,
        req_type=MemReqType.WRITE,
        persistent=persistent,
        version=version,
        callback=callback,
    )


class TestBankArray:
    def test_stride_of_num_banks_lines_maps_to_same_bank(self):
        cfg = nvm_config()
        banks = BankArray(cfg)
        b1, r1 = banks.map_address(NVM_BASE)
        b2, r2 = banks.map_address(NVM_BASE + cfg.num_banks * 64)
        assert b1 == b2
        assert r1 == r2  # still within one row-buffer chunk

    def test_adjacent_lines_spread_over_banks(self):
        banks = BankArray(nvm_config())
        b1, _ = banks.map_address(NVM_BASE)
        b2, _ = banks.map_address(NVM_BASE + 64)
        assert b1 != b2

    def test_far_addresses_reach_new_rows(self):
        cfg = nvm_config()
        banks = BankArray(cfg)
        stride = cfg.num_banks * cfg.timing.row_size_bytes
        b1, r1 = banks.map_address(NVM_BASE)
        b2, r2 = banks.map_address(NVM_BASE + stride)
        assert b1 == b2
        assert r2 == r1 + 1

    def test_row_hit_tracking(self):
        cfg = nvm_config()
        banks = BankArray(cfg)
        bank = banks.bank_for(NVM_BASE)
        row = banks.row_for(NVM_BASE)
        bank.access(row, 0, hit_cycles=10, miss_cycles=50)
        assert bank.row_misses == 1
        bank.access(row, 100, hit_cycles=10, miss_cycles=50)
        assert bank.row_hits == 1

    def test_busy_until_advances(self):
        banks = BankArray(nvm_config())
        bank = banks.bank_for(NVM_BASE)
        done = bank.access(0, 5, hit_cycles=10, miss_cycles=50)
        assert done == 55  # first access is a row miss
        assert not bank.available(54)
        assert bank.available(55)


class TestRequestQueue:
    def test_push_within_capacity(self):
        q = RequestQueue("q", 2)
        assert q.push(read(0)) is True
        assert q.push(read(64)) is True
        assert len(q) == 2

    def test_overflow_goes_to_backlog(self):
        q = RequestQueue("q", 1)
        q.push(read(0))
        assert q.push(read(64)) is False
        assert q.backlog_depth == 1
        assert q.is_full()

    def test_pop_admits_backlog_in_order(self):
        q = RequestQueue("q", 1)
        first, second, third = read(0), read(64), read(128)
        q.push(first)
        q.push(second)
        q.push(third)
        q.pop(first)
        assert list(q) == [second]
        assert q.backlog_depth == 1

    def test_find_line_searches_backlog(self):
        q = RequestQueue("q", 1)
        q.push(read(0))
        target = read(NVM_BASE + 64)
        q.push(target)
        assert q.find_line(NVM_BASE + 64) is target

    def test_occupancy_fraction(self):
        q = RequestQueue("q", 4)
        q.push(read(0))
        q.push(read(64))
        assert q.occupancy == pytest.approx(0.5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RequestQueue("q", 0)


class TestControllerReads:
    def test_read_completes_with_device_latency(self):
        sim, stats, ctrl = make_controller()
        done = []
        ctrl.enqueue(read(NVM_BASE, callback=lambda r, c: done.append(c)))
        sim.run()
        assert len(done) == 1
        # 65ns read + 12ns row activation at 2 GHz = 154 cycles + queue entry
        assert done[0] >= 154

    def test_row_hit_read_is_faster(self):
        sim, stats, ctrl = make_controller()
        same_bank_stride = nvm_config().num_banks * 64  # next line, same row
        times = []
        ctrl.enqueue(read(NVM_BASE, callback=lambda r, c: times.append(c - r.issue_cycle)))
        sim.run()
        ctrl.enqueue(read(NVM_BASE + same_bank_stride,
                          callback=lambda r, c: times.append(c - r.issue_cycle)))
        sim.run()
        assert times[1] < times[0]

    def test_read_forwarded_from_write_queue(self):
        sim, stats, ctrl = make_controller()
        ctrl.enqueue(write(NVM_BASE))
        latencies = []
        ctrl.enqueue(read(NVM_BASE, callback=lambda r, c: latencies.append(c - r.issue_cycle)))
        sim.run()
        assert latencies[0] == MemoryController.FORWARD_LATENCY
        assert stats.counter("nvm.read.forwarded") == 1

    def test_controller_drains_to_idle(self):
        sim, stats, ctrl = make_controller()
        for i in range(10):
            ctrl.enqueue(read(NVM_BASE + i * 64))
            ctrl.enqueue(write(NVM_BASE + (i + 100) * 64))
        assert ctrl.busy()
        sim.run()
        assert not ctrl.busy()
        assert stats.counter("nvm.read.requests") == 10
        assert stats.counter("nvm.write.requests") == 10


class TestControllerWrites:
    def test_write_records_durable_image(self):
        image = DurableImage()
        sim, stats, ctrl = make_controller(image=image)
        version = Version(tx_id=1, seq=0)
        ctrl.enqueue(write(NVM_BASE, persistent=True, version=version))
        sim.run()
        assert image.final_state() == {NVM_BASE: version}

    def test_persistent_write_triggers_ack(self):
        acks = []
        sim, stats, ctrl = make_controller(ack_handler=lambda r, c: acks.append((r.line, c)))
        ctrl.enqueue(write(NVM_BASE, persistent=True))
        ctrl.enqueue(write(NVM_BASE + 4096))  # volatile: no ack
        sim.run()
        assert len(acks) == 1
        assert acks[0][0] == NVM_BASE

    def test_same_line_writes_complete_in_program_order(self):
        image = DurableImage()
        sim, stats, ctrl = make_controller(image=image)
        for seq in range(6):
            ctrl.enqueue(write(NVM_BASE, persistent=True, version=Version(1, seq)))
        sim.run()
        versions = [v.seq for _c, _s, _l, v in image.events]
        assert versions == sorted(versions)
        assert image.final_state()[NVM_BASE].seq == 5

    def test_reads_have_priority_over_writes(self):
        sim, stats, ctrl = make_controller()
        # Fill the write queue lightly, then issue a read to a different bank.
        row = nvm_config().timing.row_size_bytes
        order = []
        ctrl.enqueue(write(NVM_BASE, callback=lambda r, c: order.append("w")))
        ctrl.enqueue(read(NVM_BASE + 2 * row, callback=lambda r, c: order.append("r")))
        sim.run()
        # Different banks: the write is scheduled first (it arrived first and
        # the scheduler was idle), but the read must not wait behind the
        # whole write queue once drained scheduling applies; with one write
        # only, both orders are plausible — assert both completed.
        assert sorted(order) == ["r", "w"]

    def test_write_drain_mode_engages(self):
        cfg = nvm_config(write_queue_entries=10, read_queue_entries=4)
        sim, stats, ctrl = make_controller(config=cfg)
        for i in range(10):
            ctrl.enqueue(write(NVM_BASE + i * 64))
        sim.run()
        assert stats.counter("nvm.write.drain_entries") >= 1


class TestDurableImage:
    def test_state_at_replays_prefix(self):
        image = DurableImage()
        image.record(10, 0, Version(1, 0))
        image.record(20, 64, Version(1, 1))
        image.record(30, 0, Version(2, 0))
        assert image.state_at(5) == {}
        assert image.state_at(15) == {0: Version(1, 0)}
        assert image.state_at(25) == {0: Version(1, 0), 64: Version(1, 1)}
        assert image.state_at(30)[0] == Version(2, 0)

    def test_final_state_matches_last_record(self):
        image = DurableImage()
        image.record(1, 0, Version(1, 0))
        image.record(2, 0, Version(1, 1))
        assert image.final_state() == {0: Version(1, 1)}
        assert image.last_cycle == 2
