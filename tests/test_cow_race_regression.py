"""Regression test for the COW-home-copy vs TC-write recovery race.

Found by the pheap demo: a transaction big enough to fall back to
copy-on-write writes line L; the next (normal, TC-buffered)
transaction rewrites L.  The fall-back's background home copy of L can
be *older* than the later transaction's write — recovery must never
roll the line back to the fall-back's version.
"""

import pytest

from repro.common.types import NVM_BASE, Version
from repro.cpu.trace import TraceBuilder
from repro.sim.crash import check_recovery
from repro.sim.system import System

LINE = NVM_BASE  # the contended line


def racing_trace(big_stores=100):
    builder = TraceBuilder("race")
    # tx 1: overflows the 64-entry TC -> copy-on-write path; writes LINE
    builder.begin_tx()
    builder.store(LINE)
    for index in range(1, big_stores):
        builder.store(NVM_BASE + index * 64)
    builder.end_tx()
    # tx 2: small TC transaction rewriting the same line
    builder.begin_tx()
    builder.store(LINE)
    builder.end_tx()
    builder.compute(50)
    return builder.build()


@pytest.fixture()
def finished_system():
    system = System.build("txcache", num_cores=1)
    system.load_traces([racing_trace()])
    system.run()
    return system


class TestCowRace:
    def test_both_transactions_took_their_paths(self, finished_system):
        scheme = finished_system.scheme
        assert scheme.overflow.is_fallback(1)
        assert not scheme.overflow.is_fallback(2)
        assert scheme.durably_committed(finished_system.sim.now) == {1, 2}

    def test_recovery_keeps_the_newer_write_at_every_cycle(self):
        # sweep crash cycles densely through the interesting region
        probe = System.build("txcache", num_cores=1)
        trace = racing_trace()
        probe.load_traces([trace])
        probe.run()
        total = probe.sim.now
        for fraction in (0.5, 0.7, 0.8, 0.9, 0.95, 1.0):
            crash = max(1, int(total * fraction))
            system = System.build("txcache", num_cores=1)
            system.load_traces([trace])
            system.run(until=crash)
            committed = system.scheme.durably_committed(crash)
            recovered = system.scheme.durable_lines(crash)
            violations = check_recovery([trace], recovered, committed)
            assert violations == [], (fraction, violations[:3])
            if 2 in committed:
                assert recovered[LINE] == Version(2, 0), fraction

    def test_timed_recovery_procedure_agrees(self, finished_system):
        from repro.common.types import is_home_line
        from repro.core.recovery import simulate_recovery

        system = finished_system
        crashed = {
            line: version
            for line, version in
            system.memory.durable_state_at(system.sim.now).items()
            if is_home_line(line)
        }
        result = simulate_recovery(
            system.config, system.scheme.accelerator,
            system.scheme.overflow, crashed, system.sim.now,
            commit_cycle=system.scheme.commit_cycle)
        assert result.image[LINE] == Version(2, 0)
        assert result.image == system.scheme.durable_lines(system.sim.now)
