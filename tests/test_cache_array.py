"""Unit tests for the set-associative array and LRU/pinning policies."""

import pytest

from repro.cache.line import CacheArray, EvictionImpossible
from repro.common.types import CACHE_LINE_SIZE, Version

SETS = 4
ASSOC = 2


def make_array():
    return CacheArray(SETS, ASSOC, CACHE_LINE_SIZE)


def addr_for_set(set_index, way):
    """An address mapping to ``set_index``, distinct per ``way``."""
    return (way * SETS + set_index) * CACHE_LINE_SIZE


class TestLookupInsert:
    def test_miss_then_hit(self):
        array = make_array()
        assert array.lookup(0) is None
        array.insert(0)
        assert array.lookup(0) is not None

    def test_insert_existing_updates_attrs(self):
        array = make_array()
        array.insert(0, version=Version(1, 0))
        victim = array.insert(0, version=Version(2, 0), dirty=True)
        assert victim is None
        entry = array.lookup(0)
        assert entry.version == Version(2, 0)
        assert entry.dirty

    def test_distinct_sets_do_not_conflict(self):
        array = make_array()
        for set_index in range(SETS):
            array.insert(addr_for_set(set_index, 0))
        assert array.resident_count() == SETS

    def test_lru_eviction_order(self):
        array = make_array()
        a, b, c = (addr_for_set(0, w) for w in range(3))
        array.insert(a)
        array.insert(b)
        array.lookup(a)  # refresh a: b becomes LRU
        victim = array.insert(c)
        assert victim is not None and victim.tag == b
        assert array.contains(a) and array.contains(c)

    def test_eviction_returns_dirty_state(self):
        array = make_array()
        a, b, c = (addr_for_set(1, w) for w in range(3))
        array.insert(a, dirty=True, version=Version(7, 3))
        array.insert(b)
        array.lookup(b)
        victim = array.insert(c)
        assert victim.tag == a
        assert victim.dirty and victim.version == Version(7, 3)


class TestPinning:
    def test_pinned_line_survives_eviction_pressure(self):
        array = make_array()
        pinned = addr_for_set(2, 0)
        array.insert(pinned, pinned=True)
        for way in range(1, 5):
            array.insert(addr_for_set(2, way))
        assert array.contains(pinned)

    def test_fully_pinned_set_raises(self):
        array = make_array()
        for way in range(ASSOC):
            array.insert(addr_for_set(3, way), pinned=True)
        with pytest.raises(EvictionImpossible):
            array.insert(addr_for_set(3, ASSOC))

    def test_pinned_count(self):
        array = make_array()
        array.insert(addr_for_set(0, 0), pinned=True)
        array.insert(addr_for_set(1, 0))
        assert array.pinned_count() == 1


class TestInvalidate:
    def test_invalidate_removes_line(self):
        array = make_array()
        array.insert(0, dirty=True)
        removed = array.invalidate(0)
        assert removed is not None and removed.dirty
        assert array.lookup(0) is None

    def test_invalidate_absent_returns_none(self):
        array = make_array()
        assert array.invalidate(64) is None

    def test_untouched_lookup_preserves_lru(self):
        array = make_array()
        a, b, c = (addr_for_set(0, w) for w in range(3))
        array.insert(a)
        array.insert(b)
        array.lookup(a, touch=False)  # must NOT refresh a
        victim = array.insert(c)
        assert victim.tag == a
