"""The legal-persist-set oracle: summaries, prefixes, candidates.

These tests pin the oracle's *model* — what a correct persistency
implementation is allowed to expose after a crash — independently of
any simulator.  The runner tests then hold the schemes to it.
"""

import pytest

from repro.common.types import Version
from repro.litmus.generator import (
    message_passing,
    overlapping_tx,
    private_chain,
    shared_counter,
)
from repro.litmus.oracle import (
    TxSummary,
    all_tx_ids,
    check_membership,
    expected_image_from_summaries,
    legal_commit_sets,
    legal_images,
    line_candidates,
    prefix_violations,
    tx_summaries,
)
from repro.litmus.program import line_address


def summaries_of(program):
    return tx_summaries(program.to_traces())


class TestTxSummaries:
    def test_mp_extracts_both_cores(self):
        summaries = summaries_of(message_passing())
        assert len(summaries) == 2
        # core 0: data tx then flag tx, in program order
        assert [tx.tx_id for tx in summaries[0]] == [1, 2]
        assert summaries[0][0].writes == (
            (line_address(0), Version(1, 0)),)
        assert summaries[0][1].writes == (
            (line_address(1), Version(2, 0)),)
        assert [tx.index for tx in summaries[0]] == [0, 1]

    def test_final_version_per_line_within_a_tx(self):
        # counter commits the same line twice inside each core;
        # within one tx only the final version counts
        summaries = summaries_of(shared_counter())
        for core_txs in summaries:
            for tx in core_txs:
                lines = [line for line, _ in tx.writes]
                assert len(lines) == len(set(lines))

    def test_all_tx_ids(self):
        program = message_passing()
        assert all_tx_ids(summaries_of(program)) == program.tx_ids()


class TestPrefixClosure:
    def test_empty_and_full_sets_are_prefixes(self):
        summaries = summaries_of(message_passing())
        assert prefix_violations(summaries, set()) == []
        assert prefix_violations(summaries, all_tx_ids(summaries)) == []

    def test_flag_without_data_is_flagged(self):
        # MP's whole point: tx 2 (flag) durable while tx 1 (data) is
        # not violates write-order control
        summaries = summaries_of(message_passing())
        violations = prefix_violations(summaries, {2})
        assert violations
        assert "write-order violation on core 0" in violations[0]
        assert "tx 2" in violations[0] and "tx 1" in violations[0]

    def test_write_free_tx_creates_no_gap(self):
        # a read-only transaction has no durable footprint; schemes
        # that never mark it committed (SP emits no commit record for
        # it) must not trip the prefix check
        summaries = [[
            TxSummary(tx_id=1, core=0, index=0,
                      writes=((line_address(0), Version(1, 0)),)),
            TxSummary(tx_id=2, core=0, index=1, writes=()),
            TxSummary(tx_id=3, core=0, index=2,
                      writes=((line_address(1), Version(3, 0)),)),
        ]]
        assert prefix_violations(summaries, {1, 3}) == []
        # ...but skipping a *writing* tx is still a violation
        assert prefix_violations(summaries, {3})

    def test_legal_commit_sets_are_per_core_prefix_products(self):
        summaries = summaries_of(message_passing())
        sets = legal_commit_sets(summaries)
        # core 0 has 3 prefixes ({}, {1}, {1,2}), core 1 has 2
        assert len(sets) == 6
        assert set() in sets
        assert {1, 2, 65} in sets
        assert all(prefix_violations(summaries, s) == [] for s in sets)
        # the non-prefix set is absent
        assert {2} not in sets


class TestLineCandidates:
    def test_private_lines_are_singletons(self):
        summaries = summaries_of(private_chain())
        committed = all_tx_ids(summaries)
        for candidates in line_candidates(summaries, committed).values():
            assert len(candidates) == 1

    def test_conflicting_committed_writers_are_both_legal(self):
        # overlap: both cores commit to shared lines 0 and 1
        summaries = summaries_of(overlapping_tx())
        committed = all_tx_ids(summaries)
        candidates = line_candidates(summaries, committed)
        assert candidates[line_address(0)] == {Version(1, 0),
                                               Version(65, 1)}
        assert candidates[line_address(1)] == {Version(1, 1),
                                               Version(65, 0)}

    def test_within_core_only_last_committed_writer_counts(self):
        # counter: core 0 commits line 0 in tx 1 then tx 2 — only the
        # tx 2 version is a legal exposure from core 0's side
        summaries = summaries_of(shared_counter())
        candidates = line_candidates(summaries, {1, 2})
        assert candidates[line_address(0)] == {Version(2, 0)}

    def test_touched_but_uncommitted_lines_must_be_absent(self):
        summaries = summaries_of(message_passing())
        candidates = line_candidates(summaries, set())
        assert all(c == {None} for c in candidates.values())


class TestLegalImages:
    def test_conflict_free_set_is_singleton_and_matches_expected(self):
        summaries = summaries_of(private_chain())
        for committed in legal_commit_sets(summaries):
            images = legal_images(summaries, committed)
            assert len(images) == 1
            assert images[0] == expected_image_from_summaries(
                summaries, committed)

    def test_overlap_full_commit_has_four_images(self):
        summaries = summaries_of(overlapping_tx())
        committed = all_tx_ids(summaries)
        images = legal_images(summaries, committed)
        # 2 candidates on each of 2 shared lines
        assert len(images) == 4
        # deterministic enumeration order
        assert images == legal_images(summaries, committed)
        # the old single-image expectation is one member of the set
        assert expected_image_from_summaries(summaries,
                                             committed) in images

    def test_enumeration_limit_is_enforced(self):
        summaries = summaries_of(overlapping_tx())
        committed = all_tx_ids(summaries)
        with pytest.raises(ValueError, match="legal persist set larger"):
            legal_images(summaries, committed, limit=2)

    def test_every_enumerated_image_passes_membership(self):
        summaries = summaries_of(overlapping_tx())
        for committed in legal_commit_sets(summaries):
            for image in legal_images(summaries, committed):
                assert check_membership(summaries, committed,
                                        image) == []
