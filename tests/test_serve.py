"""Tests for the simulation service (repro.serve).

Three layers, matched to the subsystem's structure:

* **protocol** — a wire spec builds the *identical* frozen point (and
  therefore the identical cache key) the batch engine builds, and every
  malformed spec is a :class:`ProtocolError`, never a crashed worker;
* **scheduler/pool** — coalescing, load shedding, deadline expiry,
  cancellation, drain, and crash-retry are tested deterministically
  against stub fleets (no timing races);
* **end-to-end over HTTP** — a real service on an ephemeral port: the
  served payload is byte-identical to the batch engine's for the same
  spec key, concurrent duplicates coalesce to one execution, and a warm
  cache hit answers in under 100 ms.
"""

import asyncio
import json
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.common.config import (
    config_from_dict,
    config_to_dict,
    paper_machine_config,
    small_machine_config,
)
from repro.serve import (
    DeadlineExpired,
    Draining,
    ProtocolError,
    QueueFull,
    Scheduler,
    ServeClient,
    ServeError,
    ServeService,
    WorkerCrashed,
    WorkerFleet,
    parse_request,
    run_in_thread,
)
from repro.serve.ops import healthz_payload, stats_payload
from repro.sim.parallel import (
    ExperimentEngine,
    ExperimentPoint,
    ResultCache,
)

CONFIG = small_machine_config(num_cores=1)


def run_async(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# config dict round trip
# ---------------------------------------------------------------------------
class TestConfigDict:
    def test_round_trip_is_exact(self):
        for config in (small_machine_config(num_cores=2),
                       paper_machine_config()):
            assert config_from_dict(config_to_dict(config)) == config

    def test_partial_dict_takes_defaults(self):
        config = config_from_dict({"num_cores": 3})
        assert config.num_cores == 3
        assert config.txcache == paper_machine_config().txcache

    def test_unknown_key_rejected_with_path(self):
        with pytest.raises(ValueError, match="config.txcache"):
            config_from_dict({"txcache": {"sise_bytes": 1024}})

    def test_invalid_value_surfaces_as_value_error(self):
        with pytest.raises(ValueError, match="overflow_threshold"):
            config_from_dict(
                {"txcache": {"overflow_threshold": 2.0}})


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_round_trip_builds_engine_identical_point(self):
        request = parse_request({
            "kind": "experiment", "workload": "sps", "scheme": "txcache",
            "operations": 20, "seed": 7,
            "config": {"preset": "small", "num_cores": 1},
        })
        direct = ExperimentPoint("sps", "txcache", CONFIG,
                                 operations=20, seed=7)
        assert request.point == direct
        assert request.key == direct.key

    def test_defaults_match_point_defaults(self):
        request = parse_request({"workload": "sps", "scheme": "txcache"})
        assert request.point.kind == "experiment"
        assert request.point.operations == 300
        assert request.point.seed == 42
        assert request.deadline is None

    def test_overrides_reach_nested_knobs(self):
        request = parse_request({
            "workload": "sps", "scheme": "txcache",
            "config": {"num_cores": 1,
                       "overrides": {"txcache": {"size_bytes": 8192}}},
        })
        assert request.point.config.txcache.size_bytes == 8192
        # everything else still the small preset
        assert request.point.config.l1 == CONFIG.l1

    def test_crash_kind_requires_cycle_fields(self):
        base = {"kind": "crash", "workload": "sps", "scheme": "txcache"}
        with pytest.raises(ProtocolError, match="crash_cycle"):
            parse_request(base)
        request = parse_request(
            dict(base, crash_cycle=100, total_cycles=400,
                 config={"num_cores": 1}))
        assert request.point.kind == "crash"

    def test_cycle_fields_rejected_on_plain_points(self):
        with pytest.raises(ProtocolError, match="crash/chaos"):
            parse_request({"workload": "sps", "scheme": "txcache",
                           "crash_cycle": 5})

    def test_deadline_ms_converts_to_seconds(self):
        request = parse_request({"workload": "sps", "scheme": "txcache",
                                 "deadline_ms": 1500})
        assert request.deadline == pytest.approx(1.5)

    @pytest.mark.parametrize("bad", [
        {"workload": "nope", "scheme": "txcache"},
        {"workload": "sps", "scheme": "nope"},
        {"workload": "sps", "scheme": "txcache", "kind": "nope"},
        {"workload": "sps", "scheme": "txcache", "operations": 0},
        {"workload": "sps", "scheme": "txcache", "operations": True},
        {"workload": "sps", "scheme": "txcache", "typo_key": 1},
        {"workload": "sps", "scheme": "txcache",
         "config": {"preset": "huge"}},
        {"workload": "sps", "scheme": "txcache",
         "config": {"overrides": {"txcache": {"typo": 1}}}},
        {"workload": "sps", "scheme": "txcache",
         "workload_params": {"x": [1, 2]}},
        "not an object",
    ])
    def test_malformed_requests_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(bad)

    def test_invalid_config_values_are_protocol_errors(self):
        # an override that passes construction but fails validation
        # (LLC geometry that does not divide into sets)
        with pytest.raises(ProtocolError):
            parse_request({
                "workload": "sps", "scheme": "txcache",
                "config": {"overrides": {"llc": {"size_bytes": 1000}}},
            })


# ---------------------------------------------------------------------------
# deterministic fleet stubs
# ---------------------------------------------------------------------------
class GatedFleet:
    """Async fleet whose executions block on an event; counts calls."""

    jobs = 4

    def __init__(self):
        self.calls = 0
        self.gate = asyncio.Event()

    async def execute(self, point, request_id=None):
        self.calls += 1
        await self.gate.wait()
        return point.key, {"total_cycles": self.calls}, 0.01


class FailingFleet:
    jobs = 1

    async def execute(self, point):
        raise RuntimeError("simulated execution bug")


def _point(operations=20, seed=42):
    return ExperimentPoint("sps", "txcache", CONFIG,
                           operations=operations, seed=seed)


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------
class TestScheduler:
    def test_identical_concurrent_requests_coalesce_to_one_execution(self):
        async def scenario():
            fleet = GatedFleet()
            scheduler = Scheduler(fleet, max_queue=8)
            submits = [asyncio.create_task(scheduler.submit(_point()))
                       for _ in range(5)]
            while fleet.calls == 0:      # first request reached the fleet
                await asyncio.sleep(0)
            fleet.gate.set()
            results = await asyncio.gather(*submits)
            return fleet.calls, results, scheduler.stats

        calls, results, stats = run_async(scenario())
        assert calls == 1
        assert all(result == results[0] for result in results)
        assert stats.counter("serve.coalesced") == 4
        assert stats.counter("serve.admitted") == 1
        assert stats.counter("serve.executed") == 1

    def test_distinct_points_do_not_coalesce(self):
        async def scenario():
            fleet = GatedFleet()
            fleet.gate.set()
            scheduler = Scheduler(fleet, max_queue=8)
            a = await scheduler.submit(_point(seed=1))
            b = await scheduler.submit(_point(seed=2))
            return fleet.calls, a, b

        calls, a, b = run_async(scenario())
        assert calls == 2
        assert a["key"] != b["key"]

    def test_queue_full_sheds_with_retry_after(self):
        async def scenario():
            fleet = GatedFleet()
            scheduler = Scheduler(fleet, max_queue=2, max_inflight=1)
            first = asyncio.create_task(scheduler.submit(_point(seed=1)))
            while fleet.calls == 0:      # seed=1 now holds the one slot
                await asyncio.sleep(0)
            queued = [asyncio.create_task(scheduler.submit(_point(seed=s)))
                      for s in (2, 3)]
            await asyncio.sleep(0)
            assert scheduler.queue_depth == 2
            with pytest.raises(QueueFull) as excinfo:
                await scheduler.submit(_point(seed=4))
            assert excinfo.value.retry_after >= 1
            # coalescing onto an in-flight point is NOT shed
            rider = asyncio.create_task(scheduler.submit(_point(seed=1)))
            await asyncio.sleep(0)
            fleet.gate.set()
            await asyncio.gather(first, rider, *queued)
            return scheduler.stats

        stats = run_async(scenario())
        assert stats.counter("serve.shed") == 1
        assert stats.counter("serve.coalesced") == 1

    def test_deadline_expiry_is_per_waiter(self):
        async def scenario():
            fleet = GatedFleet()
            scheduler = Scheduler(fleet, max_queue=8)
            patient = asyncio.create_task(scheduler.submit(_point()))
            while fleet.calls == 0:
                await asyncio.sleep(0)
            with pytest.raises(DeadlineExpired):
                await scheduler.submit(_point(), deadline=0.01)
            # the shared computation survived the impatient waiter
            fleet.gate.set()
            result = await patient
            return result, scheduler.stats

        result, stats = run_async(scenario())
        assert result["cached"] is False
        assert stats.counter("serve.deadline_expired") == 1
        assert stats.counter("serve.executed") == 1

    def test_abandoned_queued_point_is_cancelled(self):
        async def scenario():
            fleet = GatedFleet()
            scheduler = Scheduler(fleet, max_queue=8, max_inflight=1)
            blocker = asyncio.create_task(scheduler.submit(_point(seed=1)))
            while fleet.calls == 0:
                await asyncio.sleep(0)
            # sole waiter on a *queued* (never started) point times out
            with pytest.raises(DeadlineExpired):
                await scheduler.submit(_point(seed=2), deadline=0.01)
            await asyncio.sleep(0)       # let the cancellation land
            fleet.gate.set()
            await blocker
            return fleet.calls, scheduler.stats

        calls, stats = run_async(scenario())
        assert calls == 1                # seed=2 never burned a worker
        assert stats.counter("serve.cancelled") == 1

    def test_cache_hit_bypasses_admission(self, tmp_path):
        async def scenario():
            fleet = GatedFleet()
            cache = ResultCache(tmp_path)
            scheduler = Scheduler(fleet, cache=cache, max_queue=1,
                                  max_inflight=1)
            point = _point()
            cache.put(point.key, point.spec(), {"total_cycles": 9})
            # saturate the queue with a different point
            blocker = asyncio.create_task(
                scheduler.submit(_point(seed=99)))
            while fleet.calls == 0:
                await asyncio.sleep(0)
            queued = asyncio.create_task(scheduler.submit(_point(seed=98)))
            await asyncio.sleep(0)
            # the warm point answers despite the full queue
            result = await scheduler.submit(point)
            fleet.gate.set()
            await asyncio.gather(blocker, queued)
            return result

        result = run_async(scenario())
        assert result["cached"] is True
        assert result["payload"] == {"total_cycles": 9}

    def test_execution_writes_through_to_cache(self, tmp_path):
        async def scenario():
            fleet = GatedFleet()
            fleet.gate.set()
            cache = ResultCache(tmp_path)
            scheduler = Scheduler(fleet, cache=cache, max_queue=8)
            first = await scheduler.submit(_point())
            second = await scheduler.submit(_point())
            return fleet.calls, first, second

        calls, first, second = run_async(scenario())
        assert calls == 1
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["payload"] == first["payload"]

    def test_execution_error_propagates_to_every_waiter(self):
        async def scenario():
            scheduler = Scheduler(FailingFleet(), max_queue=8)
            submits = [asyncio.create_task(scheduler.submit(_point()))
                       for _ in range(3)]
            results = await asyncio.gather(*submits,
                                           return_exceptions=True)
            return results, scheduler.stats

        results, stats = run_async(scenario())
        assert all(isinstance(result, RuntimeError)
                   for result in results)
        assert stats.counter("serve.errors") == 1

    def test_drain_rejects_new_and_finishes_inflight(self):
        async def scenario():
            fleet = GatedFleet()
            scheduler = Scheduler(fleet, max_queue=8)
            inflight = asyncio.create_task(scheduler.submit(_point()))
            while fleet.calls == 0:
                await asyncio.sleep(0)
            drain = asyncio.create_task(scheduler.drain())
            await asyncio.sleep(0)
            with pytest.raises(Draining):
                await scheduler.submit(_point(seed=2))
            fleet.gate.set()
            await drain
            result = await inflight
            return result, scheduler.inflight

        result, inflight = run_async(scenario())
        assert result["payload"] == {"total_cycles": 1}
        assert inflight == 0


# ---------------------------------------------------------------------------
# worker fleet
# ---------------------------------------------------------------------------
class BrokenPoolFleet(WorkerFleet):
    """Fleet whose first ``failures`` submissions break the pool."""

    def __init__(self, failures, **kwargs):
        super().__init__(retry_backoff_seconds=0.001, **kwargs)
        self.failures = failures
        self.submissions = 0

    def _submit(self, point):
        self.submissions += 1
        if self.submissions <= self.failures:
            future = Future()
            future.set_exception(
                BrokenProcessPool("worker died"))
            return future
        future = Future()
        future.set_result((point.key, {"ok": 1}, 0.0))
        return future


class TestWorkerFleet:
    def test_recovers_within_retry_budget(self):
        fleet = BrokenPoolFleet(failures=2, jobs=1, max_retries=2)
        key, payload, _seconds = run_async(fleet.execute(_point()))
        assert payload == {"ok": 1}
        assert fleet.stats.counter("pool.retries") == 2
        assert fleet.stats.counter("pool.broken") == 2

    def test_crash_past_budget_raises_worker_crashed(self):
        fleet = BrokenPoolFleet(failures=10, jobs=1, max_retries=1)
        with pytest.raises(WorkerCrashed):
            run_async(fleet.execute(_point()))
        assert fleet.stats.counter("pool.broken") == 2  # 1 try + 1 retry

    def test_real_pool_executes_points(self):
        fleet = WorkerFleet(jobs=1)
        try:
            key, payload, seconds = run_async(
                fleet.execute(_point(operations=5)))
            assert key == _point(operations=5).key
            assert payload["cycles"] > 0
            assert seconds > 0
        finally:
            fleet.shutdown()

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="crash helper pickles by reference; needs fork")
    def test_real_worker_crash_returns_500_error(self):
        fleet = WorkerFleet(jobs=1, max_retries=1,
                            retry_backoff_seconds=0.001)
        try:
            with pytest.raises(WorkerCrashed):
                run_async(fleet.execute(KamikazePoint()))
            assert fleet.stats.counter("pool.broken") == 2
        finally:
            fleet.shutdown()


class KamikazePoint:
    """A 'point' that kills its worker process mid-execution."""

    kind = "kamikaze"

    @property
    def key(self):
        return "kamikaze" * 8

    def spec(self):
        return {"kind": self.kind}

    def execute(self):
        os._exit(13)


# ---------------------------------------------------------------------------
# end to end over HTTP
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    svc = ServeService(port=0, jobs=1, cache_dir=cache_dir,
                       max_queue=8)
    thread, port = run_in_thread(svc)
    client = ServeClient(port=port, timeout=120)
    yield svc, client, cache_dir
    svc.request_shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()


SPEC = {"workload": "sps", "scheme": "txcache", "operations": 20,
        "config": {"num_cores": 1}}


class TestServiceEndToEnd:
    def test_healthz(self, service):
        _svc, client, _cache = service
        health = client.healthz()
        assert health["status"] == "ok"

    def test_round_trip_and_warm_hit_under_100ms(self, service):
        _svc, client, _cache = service
        cold = client.submit(SPEC)
        assert cold["cached"] is False
        assert cold["kind"] == "experiment"
        assert cold["payload"]["cycles"] > 0
        best = float("inf")
        for _ in range(3):               # best-of-3 absorbs CI noise
            start = time.perf_counter()
            warm = client.submit(SPEC)
            best = min(best, time.perf_counter() - start)
            assert warm["cached"] is True
            assert warm["payload"] == cold["payload"]
        assert best < 0.1, f"warm hit took {best * 1000:.1f} ms"

    def test_served_payload_byte_identical_to_engine(self, service,
                                                     tmp_path):
        _svc, client, _cache = service
        served = client.submit(SPEC)
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        point = ExperimentPoint("sps", "txcache", CONFIG, operations=20)
        engine.run([point])
        assert served["key"] == point.key
        with open(engine.cache.path(point.key)) as fp:
            engine_payload = json.load(fp)["payload"]
        assert json.dumps(served["payload"]) == \
            json.dumps(engine_payload)

    def test_served_point_warms_the_shared_batch_cache(self, service):
        svc, client, _cache = service
        client.submit(SPEC)
        engine = ExperimentEngine(jobs=1,
                                  cache_dir=svc.scheduler.cache.root)
        point = ExperimentPoint("sps", "txcache", CONFIG, operations=20)
        engine.run([point])
        assert engine.stats.counter("engine.cache.hits") == 1
        assert engine.stats.counter("engine.executed") == 0

    def test_concurrent_duplicates_coalesce(self, service):
        svc, client, _cache = service
        spec = dict(SPEC, operations=40, seed=4242)  # fresh point
        executed_before = svc.stats.counter("serve.executed")
        coalesced_before = svc.stats.counter("serve.coalesced")
        results = [None] * 4
        errors = []

        def worker(index):
            try:
                results[index] = client.submit(spec)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        payloads = [json.dumps(result["payload"]) for result in results]
        assert len(set(payloads)) == 1
        executed = svc.stats.counter("serve.executed") - executed_before
        coalesced = svc.stats.counter("serve.coalesced") - coalesced_before
        cached = sum(result["cached"] for result in results)
        # every duplicate either joined the in-flight computation or
        # arrived after it finished and hit the cache — never recomputed
        assert executed == 1
        assert coalesced + cached == 3

    def test_bad_request_is_400(self, service):
        _svc, client, _cache = service
        with pytest.raises(ServeError) as excinfo:
            client.submit({"workload": "nope", "scheme": "txcache"})
        assert excinfo.value.status == 400
        assert "workload" in str(excinfo.value)

    def test_unknown_endpoint_is_404(self, service):
        _svc, client, _cache = service
        status, _headers, payload = client._request("GET", "/nope")
        assert status == 404
        assert "error" in payload

    def test_stats_endpoint_reports_cache_and_series(self, service):
        svc, client, _cache = service
        client.submit(SPEC)
        # probes sample on epoch boundaries; make sure one has passed
        while svc.slicer.uptime_seconds < 1.05:
            time.sleep(0.05)
        svc.slicer.tick()                # force one sample
        stats = client.stats()
        assert stats["cache"]["hits"] >= 1
        assert 0 < stats["cache"]["hit_ratio"] <= 1
        assert stats["queue_depth"] == 0
        assert stats["counters"]["serve.http.200"] >= 1
        assert "queue_depth" in stats["timeseries"]

    def test_graceful_drain_finishes_inflight_request(self, tmp_path):
        svc = ServeService(port=0, jobs=1, cache_dir=tmp_path / "c",
                           max_queue=4)
        thread, port = run_in_thread(svc)
        client = ServeClient(port=port, timeout=120)
        spec = {"workload": "sps", "scheme": "txcache",
                "operations": 60, "seed": 777,
                "config": {"num_cores": 1}}
        box = {}

        def submit():
            box["response"] = client.submit(spec)

        submitter = threading.Thread(target=submit)
        submitter.start()
        # wait until the point is actually admitted, then pull the plug
        deadline = time.time() + 30
        while svc.scheduler.inflight == 0 and time.time() < deadline:
            time.sleep(0.005)
        svc.request_shutdown()
        submitter.join(timeout=60)
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert box["response"]["payload"]["cycles"] > 0
        # ...and the drained point made it into the cache
        assert svc.scheduler.cache.get(box["response"]["key"]) \
            is not None


# ---------------------------------------------------------------------------
# liveness vs readiness
# ---------------------------------------------------------------------------
class TestLivenessReadiness:
    def test_fresh_service_is_live_and_ready(self, tmp_path):
        svc = ServeService(port=0, jobs=1, cache_dir=tmp_path)
        health = healthz_payload(svc)
        assert health["live"] is True
        assert health["ready"] is True
        assert health["status"] == "ok"

    def test_draining_service_is_live_but_not_ready(self, tmp_path):
        svc = ServeService(port=0, jobs=1, cache_dir=tmp_path)
        run_async(svc.scheduler.drain())
        health = healthz_payload(svc)
        # live: the loop still turns, in-flight points still finish;
        # ready: false, so the cluster router fails new keys over
        assert health["live"] is True
        assert health["ready"] is False
        assert health["status"] == "draining"

    def test_node_identity_travels_in_health_and_stats(self, tmp_path):
        svc = ServeService(port=0, jobs=1, cache_dir=tmp_path,
                           node_id="node7")
        assert healthz_payload(svc)["node"] == "node7"
        assert stats_payload(svc)["node"] == "node7"

    def test_standalone_service_has_no_node_identity(self, tmp_path):
        svc = ServeService(port=0, jobs=1, cache_dir=tmp_path)
        assert healthz_payload(svc)["node"] is None


# ---------------------------------------------------------------------------
# client-side bounded retry
# ---------------------------------------------------------------------------
class SheddingStub:
    """Async stub endpoint scripted like a saturated node: answers
    503 + Retry-After ``sheds`` times, then 200s forever."""

    def __init__(self, sheds, retry_after=0):
        self.sheds = sheds
        self.retry_after = retry_after
        self.calls = 0
        self.server = None
        self.port = None

    async def start(self):
        self.server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()

    async def _handle(self, reader, writer):
        from repro.serve import read_http_request, write_http_response
        try:
            while True:
                request = await read_http_request(reader)
                if request is None:
                    break
                self.calls += 1
                if self.calls <= self.sheds:
                    await write_http_response(
                        writer, 503, {"error": "shed"},
                        {"Retry-After": str(self.retry_after)}, True)
                else:
                    await write_http_response(
                        writer, 200,
                        {"key": "k", "cached": False,
                         "payload": {"cycles": 1}}, {}, True)
        except (asyncio.IncompleteReadError, ConnectionError,
                ValueError):
            pass
        finally:
            writer.close()


class TestClientRetries:
    def _submit_through(self, sheds, retries, retry_after=0):
        async def scenario():
            stub = await SheddingStub(sheds,
                                      retry_after=retry_after).start()
            client = ServeClient(port=stub.port, timeout=10)
            loop = asyncio.get_running_loop()
            try:
                result = await loop.run_in_executor(
                    None, lambda: client.submit(
                        SPEC, retries=retries,
                        retry_backoff_seconds=0.01))
                return result, stub.calls
            finally:
                await stub.stop()
        return run_async(scenario())

    def test_retries_through_sheds_to_success(self):
        result, calls = self._submit_through(sheds=2, retries=3)
        assert result["payload"] == {"cycles": 1}
        assert calls == 3

    def test_exhausted_retries_raise_the_last_shed(self):
        with pytest.raises(ServeError) as excinfo:
            self._submit_through(sheds=5, retries=1)
        assert excinfo.value.status == 503

    def test_zero_retries_raise_immediately(self):
        with pytest.raises(ServeError):
            self._submit_through(sheds=1, retries=0)

    def test_negative_retries_rejected(self):
        client = ServeClient(port=1)
        with pytest.raises(ValueError):
            client.submit(SPEC, retries=-1)

    def test_retry_waits_at_least_retry_after(self):
        start = time.monotonic()
        result, calls = self._submit_through(sheds=1, retries=2,
                                             retry_after=1)
        elapsed = time.monotonic() - start
        assert calls == 2
        assert elapsed >= 1.0       # honored the server's hint
        assert result["payload"] == {"cycles": 1}

    def test_connection_refused_retries_until_server_exists(self):
        # a dead port never answers: OSError should burn every retry
        async def scenario():
            with pytest.raises(OSError):
                client = ServeClient(port=1, timeout=1)
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None, lambda: client.submit(
                        SPEC, retries=2, retry_backoff_seconds=0.01))
        run_async(scenario())

    def test_bad_request_is_never_retried(self):
        async def scenario():
            stub = await SheddingStub(0).start()
            # scripted 200s, but a malformed spec dies at the real
            # service's edge; against the stub we just assert the
            # client gives deterministic rejections no second chance
            client = ServeClient(port=stub.port, timeout=10)

            calls = {"n": 0}
            original = client._checked

            def counting(method, path, body=None):
                calls["n"] += 1
                raise ServeError(400, {"error": "bad spec"})

            client._checked = counting
            loop = asyncio.get_running_loop()
            try:
                with pytest.raises(ServeError) as excinfo:
                    await loop.run_in_executor(
                        None, lambda: client.submit(SPEC, retries=5))
                assert excinfo.value.status == 400
                assert calls["n"] == 1
            finally:
                await stub.stop()
        run_async(scenario())


# ---------------------------------------------------------------------------
# cache counters on /stats
# ---------------------------------------------------------------------------
class TestStatsCacheCounters:
    def test_store_counters_surface_in_stats(self, service):
        _svc, client, _cache = service
        spec = dict(SPEC, seed=31337)          # fresh key: one miss
        client.submit(spec)
        client.submit(spec)                    # warm: one store hit
        stats = client.stats()
        cache = stats["cache"]
        assert cache["store_misses"] >= 1
        assert cache["store_hits"] >= 1
        assert cache["evictions"] == 0         # uncapped fixture cache
        assert cache["configured"] is True


# ---------------------------------------------------------------------------
# observability: request ids, spans, /metrics, /trace
# ---------------------------------------------------------------------------
class RecordingFleet:
    """Async fleet that records the request_id the scheduler handed it."""

    jobs = 2

    def __init__(self):
        self.request_ids = []

    async def execute(self, point, request_id=None):
        self.request_ids.append(request_id)
        return point.key, {"total_cycles": 1}, 0.01


class TestRequestCorrelation:
    def test_supplied_request_id_round_trips(self, service):
        _svc, client, _cache = service
        response = client.submit(SPEC, request_id="corr-req-1")
        assert response["request_id"] == "corr-req-1"

    def test_generated_request_id_when_absent(self, service):
        _svc, client, _cache = service
        response = client.submit(SPEC)
        rid = response["request_id"]
        assert isinstance(rid, str) and len(rid) == 32
        assert all(ch in "0123456789abcdef" for ch in rid)

    def test_response_header_carries_request_id(self, service):
        _svc, client, _cache = service
        status, headers, payload = client._request(
            "POST", "/v1/points", body=SPEC,
            headers={"X-Request-Id": "hdr-req-9"})
        assert status == 200
        assert headers["x-request-id"] == "hdr-req-9"
        assert payload["request_id"] == "hdr-req-9"

    def test_malformed_request_id_is_replaced_not_rejected(self, service):
        _svc, client, _cache = service
        status, _headers, payload = client._request(
            "POST", "/v1/points", body=SPEC,
            headers={"X-Request-Id": "bad id with spaces\x01"})
        assert status == 200
        assert payload["request_id"] != "bad id with spaces\x01"
        assert len(payload["request_id"]) == 32

    def test_request_id_never_reaches_payload_or_key(self, service):
        _svc, client, _cache = service
        spec = dict(SPEC, seed=616)
        first = client.submit(spec, request_id="id-one")
        second = client.submit(spec, request_id="id-two")
        assert first["key"] == second["key"]
        assert json.dumps(first["payload"]) == \
            json.dumps(second["payload"])
        assert "request_id" not in first["payload"]

    def test_scheduler_hands_request_id_to_fleet(self):
        async def scenario():
            fleet = RecordingFleet()
            scheduler = Scheduler(fleet, max_queue=8)
            await scheduler.submit(_point(seed=90), request_id="sched-1")
            return fleet.request_ids

        assert run_async(scenario()) == ["sched-1"]

    def test_coalesced_waiters_all_tagged_on_entry(self):
        async def scenario():
            fleet = GatedFleet()
            scheduler = Scheduler(fleet, max_queue=8)
            first = asyncio.create_task(
                scheduler.submit(_point(seed=91), request_id="lead"))
            while fleet.calls == 0:
                await asyncio.sleep(0)
            entry = next(iter(scheduler._entries.values()))
            second = asyncio.create_task(
                scheduler.submit(_point(seed=91), request_id="rider"))
            await asyncio.sleep(0)
            ids = list(entry.request_ids)
            fleet.gate.set()
            await asyncio.gather(first, second)
            return ids

        assert run_async(scenario()) == ["lead", "rider"]


class TestServeObservability:
    def test_metrics_endpoint_strict_parses(self, service):
        from repro.obs import parse_prometheus
        svc, client, _cache = service
        client.submit(SPEC)
        text = client.metrics()
        families = parse_prometheus(text)
        assert "repro_serve_http_200_total" in families
        assert families["repro_serve_request_ms"]["type"] == "histogram"
        assert "repro_queue_depth" in families
        assert "repro_cache_entries" in families
        node_label = svc.node_id
        if node_label:
            (_n, labels, _v) = \
                families["repro_queue_depth"]["samples"][0]
            assert labels["node"] == node_label

    def test_trace_endpoint_validates_and_correlates(self, service):
        from repro.obs import validate_chrome_trace
        _svc, client, _cache = service
        spec = dict(SPEC, seed=5150)
        client.submit(spec, request_id="trace-req-5")
        trace = client.trace()
        assert validate_chrome_trace(trace) == []
        tagged = {event["name"]
                  for event in trace["traceEvents"]
                  if event.get("args", {}).get("request_id")
                  == "trace-req-5"}
        assert "serve.request" in tagged
        assert "pool.execute" in tagged

    def test_admission_wait_histogram_recorded(self, service):
        svc, client, _cache = service
        client.submit(SPEC)
        assert svc.stats.histogram("serve.admission.wait.ms").count >= 1
        assert svc.stats.histogram("serve.request.ms").count >= 1
