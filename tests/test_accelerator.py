"""Integration tests: accelerator + memory system (ack path, probes)."""

import pytest

from repro.common.config import small_machine_config
from repro.common.event import Simulator
from repro.common.stats import Stats
from repro.common.types import NVM_BASE, Version
from repro.core.accelerator import PersistentMemoryAccelerator
from repro.core.overflow import OverflowManager, record_addr, shadow_addr
from repro.memory.system import MemorySystem


def build(num_cores=2, tc_entries=None):
    sim = Simulator()
    stats = Stats()
    config = small_machine_config(num_cores=num_cores)
    if tc_entries is not None:
        from dataclasses import replace
        config = replace(config, txcache=replace(
            config.txcache, size_bytes=tc_entries * 64))
    memory = MemorySystem(sim, config, stats)
    accel = PersistentMemoryAccelerator(sim, config, stats, memory)
    return sim, stats, memory, accel


def line(i):
    return NVM_BASE + i * 64


class TestCommitDrain:
    def test_committed_writes_reach_nvm_and_free_entries(self):
        sim, stats, memory, accel = build()
        for i in range(4):
            assert accel.cpu_write(0, 1, line(i), Version(1, i))
        accel.cpu_commit(0, 1)
        assert accel.busy()
        sim.run()
        assert not accel.busy()
        final = memory.durable_image.final_state()
        for i in range(4):
            assert final[line(i)] == Version(1, i)
        assert stats.counter("tc.0.ack.matched") == 4

    def test_uncommitted_writes_never_reach_nvm(self):
        sim, stats, memory, accel = build()
        accel.cpu_write(0, 1, line(0), Version(1, 0))
        sim.run()
        assert memory.durable_image.final_state() == {}
        assert accel.busy()  # the active entry still occupies the TC

    def test_per_core_tcs_are_independent(self):
        sim, stats, memory, accel = build()
        accel.cpu_write(0, 1, line(0), Version(1, 0))
        accel.cpu_write(1, 2, line(1), Version(2, 0))
        accel.cpu_commit(0, 1)
        sim.run()
        final = memory.durable_image.final_state()
        assert line(0) in final
        assert line(1) not in final

    def test_same_line_versions_arrive_in_program_order(self):
        # distinct transactions: coalescing only merges within one tx
        sim, stats, memory, accel = build()
        for seq in range(5):
            accel.cpu_write(0, seq + 1, line(0), Version(seq + 1, 0))
            accel.cpu_commit(0, seq + 1)
        sim.run()
        events = [v for _c, _s, l, v in memory.durable_image.events
                  if l == line(0)]
        assert [v.tx_id for v in events] == [1, 2, 3, 4, 5]

    def test_same_tx_same_line_writes_coalesce(self):
        sim, stats, memory, accel = build()
        for seq in range(5):
            accel.cpu_write(0, 1, line(0), Version(1, seq))
        accel.cpu_commit(0, 1)
        sim.run()
        events = [v for _c, _s, l, v in memory.durable_image.events
                  if l == line(0)]
        assert events == [Version(1, 4)]  # one write, newest data
        assert stats.counter("tc.0.write.coalesced") == 4


class TestFullStalls:
    def test_writes_rejected_when_full_then_resume_on_ack(self):
        sim, stats, memory, accel = build(tc_entries=2)
        assert accel.cpu_write(0, 1, line(0), Version(1, 0))
        assert accel.cpu_write(0, 1, line(1), Version(1, 1))
        assert not accel.cpu_write(0, 2, line(2), Version(2, 0))
        resumed = []
        accel.wait_for_space(0, lambda: resumed.append(sim.now))
        accel.cpu_commit(0, 1)
        sim.run()
        assert resumed, "stalled CPU was never woken"
        assert resumed[0] > 0
        assert stats.counter("tc.full_stalls") == 1


class TestProbe:
    def test_probe_finds_newest_across_cores(self):
        sim, stats, memory, accel = build()
        accel.cpu_write(0, 1, line(0), Version(1, 0))
        accel.cpu_write(1, 2, line(0), Version(2, 0))
        latency, version = accel.llc_probe(line(0))
        assert version == Version(2, 0)
        assert latency == accel.latency

    def test_probe_miss_returns_none(self):
        sim, stats, memory, accel = build()
        assert accel.llc_probe(line(5)) is None

    def test_probe_hits_committed_unacked_entries(self):
        sim, stats, memory, accel = build()
        accel.cpu_write(0, 1, line(0), Version(1, 0))
        accel.cpu_commit(0, 1)
        # before the simulator runs, the write is still unacked
        latency, version = accel.llc_probe(line(0))
        assert version == Version(1, 0)


class TestRecovery:
    def test_recover_replays_committed_entries(self):
        sim, stats, memory, accel = build()
        accel.cpu_write(0, 1, line(0), Version(1, 0))
        accel.cpu_write(0, 1, line(1), Version(1, 1))
        accel.cpu_commit(0, 1)
        accel.cpu_write(0, 2, line(2), Version(2, 0))  # never committed
        recovered = accel.recover({line(9): Version(0, 0)})
        assert recovered[line(0)] == Version(1, 0)
        assert recovered[line(1)] == Version(1, 1)
        assert line(2) not in recovered
        assert recovered[line(9)] == Version(0, 0)


class TestOverflowManager:
    def test_fallback_commit_waits_for_record(self):
        sim, stats, memory, accel = build()
        overflow = OverflowManager(sim, memory, Stats().scoped("cow"))
        overflow.divert(0, 5, [(line(0), Version(5, 0))])
        overflow.write(0, 5, line(1), Version(5, 1))
        committed = []
        overflow.commit(0, 5, lambda: committed.append(sim.now))
        sim.run()
        assert committed
        state = overflow.fallback[5]
        assert state.record_durable_at is not None
        assert state.record_durable_at <= committed[0]
        # home copies performed in background
        final = memory.durable_image.final_state()
        assert final[line(0)] == Version(5, 0)
        assert final[line(1)] == Version(5, 1)
        assert final[record_addr(5)] == Version(5, -1)

    def test_shadow_writes_precede_record(self):
        sim, stats, memory, accel = build()
        overflow = OverflowManager(sim, memory, Stats().scoped("cow"))
        overflow.divert(0, 7, [])
        overflow.write(0, 7, line(0), Version(7, 0))
        overflow.commit(0, 7, lambda: None)
        sim.run()
        events = memory.durable_image.events
        shadow_cycle = next(c for c, _s, l, _v in events
                            if l == shadow_addr(line(0)))
        record_cycle = next(c for c, _s, l, _v in events
                            if l == record_addr(7))
        assert shadow_cycle <= record_cycle

    def test_committed_at_respects_crash_cycle(self):
        sim, stats, memory, accel = build()
        overflow = OverflowManager(sim, memory, Stats().scoped("cow"))
        overflow.divert(0, 3, [(line(0), Version(3, 0))])
        overflow.commit(0, 3, lambda: None)
        sim.run()
        durable_at = overflow.fallback[3].record_durable_at
        assert overflow.committed_at(durable_at - 1) == []
        assert [s.tx_id for s in overflow.committed_at(durable_at)] == [3]
