"""Tests for DRAM refresh and configurable bank interleaving."""

from dataclasses import replace

import pytest

from repro.common.config import (
    MemCtrlConfig,
    MemTimingConfig,
    paper_machine_config,
)
from repro.common.event import Simulator
from repro.common.stats import Stats
from repro.common.types import NVM_BASE, MemReqType, MemRequest
from repro.memory.bank import Bank, BankArray
from repro.memory.controller import MemoryController


class TestRefresh:
    def make_bank(self, interval=1000, trfc=100):
        return Bank(0, refresh_interval=interval, refresh_cycles=trfc)

    def test_no_refresh_when_disabled(self):
        bank = Bank(0)
        assert bank.available(10_000_000)
        assert bank.refreshes == 0

    def test_refresh_blocks_bank_after_epoch_boundary(self):
        bank = self.make_bank()
        bank.access(row=5, now=0, hit_cycles=10, miss_cycles=10)
        # cross one refresh boundary: bank busy until 1000 + tRFC
        assert not bank.available(1001)
        assert bank.available(1100)
        assert bank.refreshes >= 1

    def test_refresh_closes_open_row(self):
        bank = self.make_bank()
        bank.access(row=5, now=0, hit_cycles=10, miss_cycles=10)
        bank.available(1200)  # catch up past a refresh
        assert bank.open_row is None

    def test_dram_default_refreshes_nvm_does_not(self):
        cfg = paper_machine_config()
        dram_banks = BankArray(cfg.dram, freq_ghz=2.0)
        nvm_banks = BankArray(cfg.nvm, freq_ghz=2.0)
        assert dram_banks.banks[0].refresh_interval > 0
        assert nvm_banks.banks[0].refresh_interval == 0

    def test_refresh_visible_in_end_to_end_latency(self):
        # a DRAM read landing inside a refresh window waits for tRFC
        cfg = paper_machine_config().dram
        sim = Simulator()
        stats = Stats()
        ctrl = MemoryController(sim, cfg, stats.scoped("dram"), 2.0)
        interval = ctrl.banks.banks[0].refresh_interval
        done = []
        # advance time near a refresh boundary, then issue a read
        sim.schedule_at(interval + 1, lambda: ctrl.enqueue(MemRequest(
            addr=0, req_type=MemReqType.READ,
            callback=lambda r, c: done.append(c - r.issue_cycle))))
        sim.run()
        baseline_hitless = cfg.timing.read_cycles(2.0, row_hit=False)
        assert done[0] >= baseline_hitless  # at least the array access
        assert ctrl.banks.banks[0].refreshes >= 1


class TestInterleave:
    def row_config(self):
        base = paper_machine_config().nvm
        return replace(base, interleave="row")

    def test_row_interleave_keeps_row_in_one_bank(self):
        banks = BankArray(self.row_config())
        b1, r1 = banks.map_address(NVM_BASE)
        b2, r2 = banks.map_address(NVM_BASE + 4096)  # same 8 KB row
        assert (b1, r1) == (b2, r2)

    def test_line_interleave_spreads_adjacent_lines(self):
        banks = BankArray(paper_machine_config().nvm)
        b1, _ = banks.map_address(NVM_BASE)
        b2, _ = banks.map_address(NVM_BASE + 64)
        assert b1 != b2

    def test_unknown_interleave_rejected(self):
        with pytest.raises(ValueError, match="interleave"):
            BankArray(replace(paper_machine_config().nvm,
                              interleave="hash"))

    def test_row_interleave_serializes_small_footprints(self):
        """The calibration finding, pinned as a test: under row
        interleave a small contiguous footprint lands in one bank and
        writes serialize; line interleave spreads them."""
        def drain_time(interleave):
            base = paper_machine_config().nvm
            cfg = replace(base, interleave=interleave)
            sim = Simulator()
            stats = Stats()
            ctrl = MemoryController(sim, cfg, stats.scoped("nvm"), 2.0)
            for i in range(16):
                ctrl.enqueue(MemRequest(addr=NVM_BASE + i * 64,
                                        req_type=MemReqType.WRITE))
            sim.run()
            return sim.now

        assert drain_time("row") > drain_time("line") * 2
