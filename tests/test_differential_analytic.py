"""Differential tests: event-driven simulator vs. the analytic model.

Persistency-model validation practice ("Lost in Interpretation",
gem5's controller work) wants the timing model pinned against an
*independent* reference.  Ours is :mod:`repro.sim.analytic` — a
first-order envelope of what each scheme's mechanism must cost.  This
module runs a grid of small configurations and checks, for every
point:

* **ordering relations** the mechanisms imply —
  ``TXCACHE >= OPTIMAL`` cycles (the accelerator can only add work)
  and ``SP >= TXCACHE`` on fence-heavy traces (three serialized NVM
  round-trips per transaction dwarf a commit message);
* **tolerance bands** between predicted and simulated overhead.

Documented divergences (legitimate, understood, and therefore
asserted with wider bands rather than "fixed"):

* **Kiln over-prediction (up to ~3x).**  The envelope charges one
  serialized NV-LLC write per transaction line; the simulator overlaps
  those flush writes with each other and with execution, so the
  first-order (deliberately overlap-free) prediction lands above the
  simulated overhead.  Band: predicted/simulated in [0.5, 4].
* **Kiln vs TXCACHE ordering is NOT asserted.**  The two mechanisms
  cost within a few percent of each other on several workloads
  (e.g. hashtable: Kiln 62461 vs TC 63918 cycles at 80 ops) and which
  one wins flips with the eviction pattern — the paper itself has them
  nearly tied in Fig. 6.
"""

from dataclasses import replace

import pytest

from repro.common.config import small_machine_config
from repro.common.types import SchemeName
from repro.obs.stalls import StallReport
from repro.sim.analytic import compare_with_simulation
from repro.sim.runner import make_traces, run_comparison

#: SP's mechanism (log writes + 3 fence round-trips) is first-order
#: modelable; observed predicted/simulated across the grid: 0.91-1.36
SP_BAND = (1 / 3, 3.0)
#: Kiln's envelope ignores flush overlap; observed: 1.37-2.87
KILN_BAND = (0.5, 4.0)

OPS = 80
SEED = 7


def _grid_configs():
    base = small_machine_config(num_cores=1)
    slow_nvm = replace(base, nvm=replace(
        base.nvm, timing=replace(base.nvm.timing, write_ns=150.0)))
    return {"base": base, "slow_nvm": slow_nvm}


GRID = [(workload, name)
        for workload in ("sps", "hashtable", "queue")
        for name in ("base", "slow_nvm")]


@pytest.fixture(scope="module")
def grid():
    """(workload, config name) → (config, trace, scheme → result)."""
    configs = _grid_configs()
    out = {}
    for workload, name in GRID:
        config = configs[name]
        traces = make_traces(workload, 1, OPS, seed=SEED)
        results = run_comparison(workload, config=config, traces=traces)
        out[(workload, name)] = (config, traces[0], results)
    return out


@pytest.mark.parametrize("cell", GRID, ids=lambda c: f"{c[0]}-{c[1]}")
class TestOrderingRelations:
    def test_txcache_never_beats_optimal(self, grid, cell):
        _config, _trace, results = grid[cell]
        assert results[SchemeName.TXCACHE].cycles >= \
            results[SchemeName.OPTIMAL].cycles

    def test_sp_never_beats_txcache(self, grid, cell):
        """Fence-heavy SP must cost at least as much as the TC, whose
        commit is one message off the critical path."""
        _config, _trace, results = grid[cell]
        assert results[SchemeName.SP].cycles >= \
            results[SchemeName.TXCACHE].cycles

    def test_every_scheme_completes_the_same_work(self, grid, cell):
        _config, _trace, results = grid[cell]
        transactions = {r.transactions for r in results.values()}
        instructions = {r.instructions for r in results.values()}
        assert len(transactions) == 1, "schemes committed different tx!"
        assert len(instructions) == 1


@pytest.mark.parametrize("cell", GRID, ids=lambda c: f"{c[0]}-{c[1]}")
class TestAnalyticTolerance:
    def test_sp_overhead_within_band(self, grid, cell):
        config, trace, results = grid[cell]
        comparison = compare_with_simulation(trace, config, results)
        sp = comparison[SchemeName.SP]
        assert sp["simulated_overhead"] > 0
        ratio = sp["predicted_overhead"] / sp["simulated_overhead"]
        low, high = SP_BAND
        assert low < ratio < high, (
            f"{cell}: SP predicted/simulated = {ratio:.2f} "
            f"outside [{low:.2f}, {high:.2f}] — simulator and envelope "
            f"disagree: {sp}")

    def test_kiln_overhead_within_documented_band(self, grid, cell):
        """Kiln's envelope ignores flush overlap, so it over-predicts;
        see the module docstring for why the band is wide and one-sided
        in practice."""
        config, trace, results = grid[cell]
        comparison = compare_with_simulation(trace, config, results)
        kiln = comparison[SchemeName.KILN]
        assert kiln["simulated_overhead"] > 0
        ratio = kiln["predicted_overhead"] / kiln["simulated_overhead"]
        low, high = KILN_BAND
        assert low < ratio < high, (
            f"{cell}: Kiln predicted/simulated = {ratio:.2f} "
            f"outside [{low:.2f}, {high:.2f}]: {kiln}")

    def test_txcache_overhead_small_in_both_views(self, grid, cell):
        """The accelerator's whole point: both the envelope and the
        simulator see only marginal overhead over Optimal."""
        config, trace, results = grid[cell]
        comparison = compare_with_simulation(trace, config, results)
        txc = comparison[SchemeName.TXCACHE]
        optimal_cycles = results[SchemeName.OPTIMAL].cycles
        assert txc["predicted_overhead"] < optimal_cycles * 0.05
        # slow_nvm stretches TC fills; 0.55 still separates TC cleanly
        # from SP, whose relative drops below 0.35 everywhere
        assert txc["simulated_relative"] > 0.55
        assert txc["simulated_relative"] > \
            comparison[SchemeName.SP]["simulated_relative"]


@pytest.mark.parametrize("cell", GRID, ids=lambda c: f"{c[0]}-{c[1]}")
class TestStallAttribution:
    """The stall-attribution view of Fig. 6's argument, checked as
    differential relations (measured shares across the grid: SP fence
    share 0.91-0.95, Kiln fence share 0, Kiln flush share 0.22-0.43,
    TXCACHE persistence stalls identically zero)."""

    def test_sum_to_total_invariant_every_scheme(self, grid, cell):
        """Per core, the per-kind attribution must sum exactly to the
        measured total stall cycles — for every scheme in the grid."""
        _config, _trace, results = grid[cell]
        for scheme, result in results.items():
            report = StallReport.from_result(result)
            assert report.attribution_errors() == [], scheme

    def test_sp_ordering_share_dominates_kiln(self, grid, cell):
        """SP's stall budget is ordering (fence) stalls; Kiln commits
        through NV-LLC flushes and never fences."""
        _config, _trace, results = grid[cell]
        sp = StallReport.from_result(results[SchemeName.SP])
        kiln = StallReport.from_result(results[SchemeName.KILN])
        assert sp.share("fence") > 0.5
        assert sp.share("fence") > kiln.share("fence")
        assert kiln.share("flush") > 0

    def test_txcache_persistence_stalls_near_zero(self, grid, cell):
        """The paper's claim: the accelerator keeps persistence off the
        critical path — persistence-kind stalls stay below 5% of run
        cycles (measured: identically zero on this grid)."""
        _config, _trace, results = grid[cell]
        txc = StallReport.from_result(results[SchemeName.TXCACHE])
        assert txc.persistence_share_of_cycles() < 0.05
