"""Golden snapshot tests for the figure pipelines.

One (workload, scheme) pair per paper figure, simulated at a fixed
seed and frozen as ``tests/data/golden_figures.json``.  Any change to
the timing model, the trace generators, or the result plumbing that
moves a number shows up here as a **field-level diff**, not a silent
drift in a regenerated figure.

If a change is *intentional* (a modeling fix that should move the
curves), regenerate the snapshot and commit it together with the
change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_figures.py

The diff of ``tests/data/golden_figures.json`` in that commit then
documents exactly which metrics moved and by how much.
"""

import json
import os
import pathlib

import pytest

from dataclasses import replace

from repro.common.config import small_machine_config
from repro.sim.parallel import ExperimentEngine, ExperimentPoint
from repro.sim.runner import run_experiment

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_figures.json"
OPS = 60
SEED = 42


def _base_config():
    return small_machine_config(num_cores=2)


def _pressure_config():
    base = _base_config()
    return replace(base, llc=replace(base.llc, size_bytes=128 * 1024))


#: figure → (workload, scheme, config factory).  One representative
#: pair per figure, in the LLC regime that figure is rendered from
#: (32 KB eviction-pressure for 6/7/9, 128 KB reuse for 8/10).
FIGURE_PAIRS = {
    "fig6_throughput": ("sps", "txcache", _base_config),
    "fig7_persist_latency": ("hashtable", "sp", _base_config),
    "fig8_llc_miss_rate": ("btree", "txcache", _pressure_config),
    "fig9_nvm_writes": ("rbtree", "kiln", _base_config),
    "fig10_load_latency": ("graph", "txcache", _pressure_config),
    # software-transaction competitor columns (repro.persistence.swtx):
    # one representative point per scheme on the same grid
    "swtx_undo_throughput": ("hashtable", "undo_log", _base_config),
    "swtx_redo_nvm_writes": ("sps", "redo_log", _base_config),
    "swtx_hybrid_load_latency": ("btree", "hybrid_dram", _base_config),
}

#: the headline metric each figure actually plots — diffed first so a
#: failure leads with the number the figure would mis-render
HEADLINE_METRICS = ("cycles", "ipc", "throughput_tx_per_mcycle",
                    "llc_miss_rate", "nvm_write_lines",
                    "avg_persist_load_latency")


def simulate(name):
    workload, scheme, config_factory = FIGURE_PAIRS[name]
    result = run_experiment(workload, scheme, config=config_factory(),
                            operations=OPS, seed=SEED)
    return result.to_dict(include_raw=True)


def load_golden():
    return json.loads(GOLDEN_PATH.read_text())


def diff_dicts(expected, actual, prefix=""):
    """Flat list of 'path: frozen X -> now Y' lines, headline first."""
    lines = []
    keys = sorted(set(expected) | set(actual),
                  key=lambda k: (k not in HEADLINE_METRICS, k))
    for key in keys:
        path = f"{prefix}{key}"
        exp, act = expected.get(key), actual.get(key)
        if isinstance(exp, dict) and isinstance(act, dict):
            lines.extend(diff_dicts(exp, act, prefix=f"{path}."))
        elif exp != act:
            lines.append(f"  {path}: frozen {exp!r} -> now {act!r}")
    return lines


@pytest.fixture(scope="module", autouse=True)
def regenerate_if_requested():
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        snapshot = {name: simulate(name) for name in FIGURE_PAIRS}
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")


def test_snapshot_exists_and_covers_every_figure():
    golden = load_golden()
    assert sorted(golden) == sorted(FIGURE_PAIRS)


@pytest.mark.parametrize("name", sorted(FIGURE_PAIRS))
def test_figure_pair_matches_golden(name):
    golden = load_golden()[name]
    actual = simulate(name)
    lines = diff_dicts(golden, actual)
    assert not lines, (
        f"{name} drifted from tests/data/golden_figures.json "
        f"({len(lines)} fields; intentional? see module docstring):\n"
        + "\n".join(lines))


@pytest.mark.parametrize("name", sorted(FIGURE_PAIRS))
def test_figure_pair_matches_golden_under_columnar_kernel(monkeypatch, name):
    """Regenerate nothing: the committed snapshot passes unmodified
    under the columnar kernel.  This pins zero numeric drift — the
    columnar core is a throughput change, not a modelling one, and the
    golden file is shared by all kernels."""
    from repro.common.event import KERNEL_ENV

    monkeypatch.setenv(KERNEL_ENV, "columnar")
    golden = load_golden()[name]
    actual = simulate(name)
    lines = diff_dicts(golden, actual)
    assert not lines, (
        f"{name} drifted under the columnar kernel "
        f"({len(lines)} fields):\n" + "\n".join(lines))


def test_parallel_engine_reproduces_golden():
    """The pooled+cached path must land on the same frozen numbers —
    this ties the golden layer to the engine's determinism contract."""
    name = "fig6_throughput"
    workload, scheme, config_factory = FIGURE_PAIRS[name]
    point = ExperimentPoint(workload, scheme, config_factory(),
                            operations=OPS, seed=SEED)
    (result,) = ExperimentEngine(jobs=2).run([point])
    lines = diff_dicts(load_golden()[name],
                       result.to_dict(include_raw=True))
    assert not lines, "\n".join(lines)
