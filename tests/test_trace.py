"""Unit tests for trace ops, containers, builder, and serialization."""

import io

import pytest

from repro.common.types import NVM_BASE, Version
from repro.cpu.trace import OpType, Trace, TraceBuilder, TraceOp


class TestTraceOp:
    def test_persistent_flag_follows_address_space(self):
        assert TraceOp(OpType.STORE, addr=NVM_BASE).persistent
        assert not TraceOp(OpType.STORE, addr=100).persistent
        assert not TraceOp(OpType.COMPUTE, addr=NVM_BASE).persistent

    def test_instruction_count(self):
        assert TraceOp(OpType.COMPUTE, count=7).instructions == 7
        assert TraceOp(OpType.LOAD, addr=4).instructions == 1

    def test_json_round_trip(self):
        op = TraceOp(OpType.STORE, addr=NVM_BASE + 8, tx_id=3,
                     version=Version(3, 1))
        back = TraceOp.from_json(op.to_json())
        assert back == op

    def test_json_round_trip_defaults(self):
        op = TraceOp(OpType.SFENCE)
        assert TraceOp.from_json(op.to_json()) == op


class TestTraceBuilder:
    def test_builds_valid_transaction(self):
        builder = TraceBuilder("t")
        tx = builder.begin_tx()
        builder.store(NVM_BASE)
        builder.store(NVM_BASE + 64)
        builder.end_tx()
        trace = builder.build()
        assert tx == 1
        assert trace.transactions == 1
        assert trace.persistent_stores == 2

    def test_versions_are_sequential_within_tx(self):
        builder = TraceBuilder("t")
        builder.begin_tx()
        builder.store(NVM_BASE)
        builder.store(NVM_BASE + 64)
        builder.end_tx()
        builder.begin_tx()
        builder.store(NVM_BASE + 128)
        builder.end_tx()
        stores = [op for op in builder.build() if op.op is OpType.STORE]
        assert stores[0].version == Version(1, 0)
        assert stores[1].version == Version(1, 1)
        assert stores[2].version == Version(2, 0)

    def test_volatile_store_gets_no_version(self):
        builder = TraceBuilder("t")
        builder.begin_tx()
        builder.store(100)
        builder.end_tx()
        store = builder.build().ops[1]
        assert store.version is None

    def test_nested_tx_rejected(self):
        builder = TraceBuilder("t")
        builder.begin_tx()
        with pytest.raises(ValueError):
            builder.begin_tx()

    def test_unclosed_tx_rejected(self):
        builder = TraceBuilder("t")
        builder.begin_tx()
        builder.store(NVM_BASE)
        with pytest.raises(ValueError):
            builder.build()

    def test_compute_coalesces(self):
        builder = TraceBuilder("t")
        builder.compute(3)
        builder.compute(4)
        builder.load(0)
        builder.compute(0)  # ignored
        trace = builder.trace
        assert len(trace.ops) == 2
        assert trace.ops[0].count == 7


class TestTraceValidation:
    def test_detects_tx_end_mismatch(self):
        trace = Trace("bad", [
            TraceOp(OpType.TX_BEGIN, tx_id=1),
            TraceOp(OpType.TX_END, tx_id=2),
        ])
        with pytest.raises(ValueError, match="TX_END tx 2"):
            trace.validate()

    def test_detects_missing_version(self):
        trace = Trace("bad", [
            TraceOp(OpType.TX_BEGIN, tx_id=1),
            TraceOp(OpType.STORE, addr=NVM_BASE, tx_id=1),
            TraceOp(OpType.TX_END, tx_id=1),
        ])
        with pytest.raises(ValueError, match="missing version"):
            trace.validate()

    def test_detects_tx_end_outside(self):
        trace = Trace("bad", [TraceOp(OpType.TX_END, tx_id=1)])
        with pytest.raises(ValueError, match="outside"):
            trace.validate()


class TestTraceQueries:
    def make_trace(self):
        builder = TraceBuilder("q")
        builder.compute(10)
        builder.begin_tx()
        builder.store(NVM_BASE)
        builder.load(NVM_BASE)
        builder.end_tx()
        builder.begin_tx()
        builder.store(NVM_BASE + 64)
        builder.store(NVM_BASE + 128)
        builder.end_tx()
        return builder.build()

    def test_instruction_count(self):
        trace = self.make_trace()
        # 10 compute + 2 begin + 2 end + 3 stores + 1 load
        assert trace.instructions == 18

    def test_transaction_writes_grouping(self):
        groups = self.make_trace().transaction_writes()
        assert sorted(groups) == [1, 2]
        assert len(groups[1]) == 1
        assert len(groups[2]) == 2

    def test_serialization_round_trip(self):
        trace = self.make_trace()
        buffer = io.StringIO()
        trace.dump(buffer)
        buffer.seek(0)
        back = Trace.load(buffer)
        assert back.name == trace.name
        assert back.ops == trace.ops
