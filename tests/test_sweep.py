"""Tests for the parameter-sweep utility."""

import json

import pytest

from repro.sim.sweep import (
    Sweep,
    SweepOutcome,
    llc_size_sweep,
    nvm_write_latency_sweep,
    tc_size_sweep,
)


class TestSweepConstruction:
    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            Sweep("x", [], lambda cfg, v: cfg)

    def test_ready_made_sweeps_have_values(self):
        for sweep in (tc_size_sweep(), llc_size_sweep(),
                      nvm_write_latency_sweep()):
            assert sweep.values


class TestUpfrontValidation:
    """A bad knob value must fail before the first point simulates —
    not minutes into the grid (PR 1's construction-time validation,
    now applied to whole grids at once)."""

    def test_bad_value_raises_before_any_point_runs(self, monkeypatch):
        executed = []
        monkeypatch.setattr("repro.sim.sweep.run_experiment",
                            lambda *a, **k: executed.append(a))
        # 1000 B / 64 B lines = 15 lines: not divisible into 16-way
        # sets, an error validate_config catches up front
        sweep = llc_size_sweep(sizes=(32 * 1024, 1000))
        with pytest.raises(ValueError, match="llc"):
            sweep.run("sps", "txcache", operations=10)
        assert executed == []

    def test_bad_value_reported_with_its_knob(self):
        sweep = llc_size_sweep(sizes=(1000,))
        with pytest.raises(ValueError, match="llc_size_bytes=1000"):
            sweep.run("sps", "txcache", operations=10)

    def test_valid_grid_still_runs(self):
        outcome = tc_size_sweep(sizes=(4096,)).run(
            "sps", "txcache", operations=10, num_cores=1,
            array_elements=64)
        assert len(outcome.points) == 1


class TestSweepExecution:
    @pytest.fixture(scope="class")
    def outcome(self):
        return tc_size_sweep(sizes=(512, 4096)).run(
            "sps", "txcache", operations=25, num_cores=1,
            array_elements=64)

    def test_one_point_per_value(self, outcome):
        assert outcome.values() == [512, 4096]
        assert len(outcome.points) == 2

    def test_configure_applied(self):
        sweep = nvm_write_latency_sweep(latencies_ns=(76.0, 350.0))
        outcome = sweep.run("sps", "optimal", operations=25, num_cores=1,
                            array_elements=2048)
        fast, slow = outcome.points
        # slower NVM writes -> same or more cycles (write drain pressure)
        assert slow.result.cycles >= fast.result.cycles

    def test_metric_extraction(self, outcome):
        cycles = outcome.metric(lambda r: r.cycles)
        assert len(cycles) == 2 and all(c > 0 for c in cycles)

    def test_json_round_trip(self, outcome):
        data = json.loads(outcome.to_json())
        assert data["sweep"] == "tc_size_bytes"
        assert data["workload"] == "sps"
        assert len(data["points"]) == 2
        assert data["points"][0]["result"]["cycles"] > 0

    def test_format_renders_table(self, outcome):
        text = outcome.format()
        assert "tc_size_bytes" in text
        assert "cycles" in text
        assert "512" in text
