"""Unit tests for the CAM-FIFO transaction cache (paper §4.1)."""

import pytest

from repro.common.config import TxCacheConfig, paper_machine_config
from repro.common.stats import Stats
from repro.common.types import NVM_BASE, Version
from repro.core.txcache import (
    TransactionCache,
    TxState,
    hardware_overhead,
    overhead_summary_bits,
)


def make_tc(entries=8, threshold=0.9):
    config = TxCacheConfig(size_bytes=entries * 64,
                           overflow_threshold=threshold)
    return TransactionCache(config, Stats().scoped("tc"))


def line(i):
    return NVM_BASE + i * 64


class TestWriteInsert:
    def test_insert_until_full(self):
        tc = make_tc(entries=4)
        for i in range(4):
            assert tc.write(1, line(i), Version(1, i))
        assert tc.is_full()
        assert not tc.write(1, line(9), Version(1, 9))

    def test_entries_enter_active_state(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        (entry,) = tc.live_entries()
        assert entry.state is TxState.ACTIVE
        assert entry.tx_id == 1
        assert entry.tag == line(0)

    def test_head_seq_tracks_insertions(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        tc.write(1, line(1), Version(1, 1))
        assert tc.head_seq == 2
        assert tc.tail_seq == 0


class TestCommitAndIssue:
    def test_commit_matches_txid(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        tc.write(2, line(1), Version(2, 0))
        committed = tc.commit(1)
        assert len(committed) == 1
        assert committed[0].tag == line(0)
        states = [e.state for e in tc.live_entries()]
        assert states == [TxState.COMMITTED, TxState.ACTIVE]

    def test_issue_in_fifo_order(self):
        tc = make_tc()
        for i in range(3):
            tc.write(1, line(i), Version(1, i))
        tc.commit(1)
        issued = tc.take_issuable()
        assert [e.tag for e in issued] == [line(0), line(1), line(2)]

    def test_issue_stops_at_active_entry(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        tc.commit(1)
        tc.write(2, line(1), Version(2, 0))
        # a later commit of tx 2 while tx 1 unissued: FIFO order holds
        issued = tc.take_issuable()
        assert [e.tag for e in issued] == [line(0)]

    def test_issue_is_idempotent(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        tc.commit(1)
        assert len(tc.take_issuable()) == 1
        assert tc.take_issuable() == []


class TestAck:
    def test_ack_frees_nearest_tail_match(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        tc.commit(1)
        tc.write(2, line(0), Version(2, 0))  # same line, younger tx
        tc.commit(2)
        tc.take_issuable()
        freed = tc.ack(line(0))
        assert freed.version == Version(1, 0)  # oldest copy freed first
        assert len(tc.live_entries()) == 1

    def test_same_tx_same_line_write_coalesces(self):
        tc = make_tc()
        assert tc.write(1, line(0), Version(1, 0))
        assert tc.write(1, line(0), Version(1, 3))
        assert tc.occupancy == 1
        assert tc.probe(line(0)).version == Version(1, 3)

    def test_coalescing_can_be_disabled(self):
        from repro.common.config import TxCacheConfig
        from repro.common.stats import Stats
        config = TxCacheConfig(size_bytes=8 * 64, coalesce_writes=False)
        tc = TransactionCache(config, Stats().scoped("tc"))
        tc.write(1, line(0), Version(1, 0))
        tc.write(1, line(0), Version(1, 1))
        assert tc.occupancy == 2

    def test_ack_requires_issued_entry(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        tc.commit(1)
        # not yet issued: ack must not match
        assert tc.ack(line(0)) is None

    def test_tail_sweeps_over_out_of_order_acks(self):
        tc = make_tc(entries=4)
        for i in range(3):
            tc.write(1, line(i), Version(1, i))
        tc.commit(1)
        tc.take_issuable()
        # acks arrive out of order: middle first
        tc.ack(line(1))
        assert tc.occupancy == 3  # hole: tail cannot move yet
        tc.ack(line(0))
        assert tc.occupancy == 1  # tail swept over entries 0 and 1
        tc.ack(line(2))
        assert tc.occupancy == 0
        assert tc.tail_seq == 3

    def test_freed_space_usable_after_sweep(self):
        tc = make_tc(entries=2)
        tc.write(1, line(0), Version(1, 0))
        tc.write(1, line(1), Version(1, 1))
        assert tc.is_full()
        tc.commit(1)
        tc.take_issuable()
        tc.ack(line(0))
        assert not tc.is_full()
        assert tc.write(2, line(2), Version(2, 0))


class TestProbe:
    def test_probe_returns_newest_version(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        tc.write(1, line(0), Version(1, 5))
        entry = tc.probe(line(0))
        assert entry.version == Version(1, 5)

    def test_probe_miss_returns_none(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        assert tc.probe(line(3)) is None

    def test_probe_ignores_available_holes(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        tc.commit(1)
        tc.take_issuable()
        tc.ack(line(0))
        assert tc.probe(line(0)) is None


class TestOverflow:
    def test_threshold_detection(self):
        tc = make_tc(entries=10, threshold=0.9)
        for i in range(8):
            tc.write(1, line(i), Version(1, i))
        assert not tc.above_threshold()
        tc.write(1, line(8), Version(1, 8))
        assert tc.above_threshold()

    def test_drop_transaction_frees_active_entries(self):
        tc = make_tc(entries=4)
        tc.write(1, line(0), Version(1, 0))
        tc.commit(1)
        tc.write(2, line(1), Version(2, 0))
        tc.write(2, line(2), Version(2, 1))
        dropped = tc.drop_transaction(2)
        assert [e.tag for e in dropped] == [line(1), line(2)]
        assert len(tc.live_entries()) == 1  # tx 1's committed entry remains


class TestRecoveryView:
    def test_committed_unacked_listed_in_fifo_order(self):
        tc = make_tc()
        for i in range(3):
            tc.write(1, line(i), Version(1, i))
        tc.commit(1)
        tc.take_issuable()
        tc.ack(line(0))
        remaining = tc.committed_unacked()
        assert [e.tag for e in remaining] == [line(1), line(2)]

    def test_active_entries_distinct_from_committed(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        tc.commit(1)
        tc.write(2, line(1), Version(2, 0))
        assert [e.tx_id for e in tc.committed_unacked()] == [1]
        assert [e.tx_id for e in tc.active_entries()] == [2]


class TestDuplicateAndUnmatchedAcks:
    """The ack path must be idempotent: the interconnect may drop,
    delay or duplicate acks, and the accelerator reissues on timeout —
    so the same (line, seq) ack can legally arrive twice."""

    def issued_entry(self, tc):
        tc.write(1, line(0), Version(1, 0))
        tc.commit(1)
        (entry,) = tc.take_issuable()
        return entry

    def test_duplicate_ack_never_frees_a_second_entry(self):
        tc = make_tc()
        entry = self.issued_entry(tc)
        assert tc.ack(line(0), seq=entry.seq) is entry
        assert tc.occupancy == 0
        # the duplicate: nothing to free, idempotent drop
        assert tc.ack(line(0), seq=entry.seq) is None
        assert tc.occupancy == 0
        tc.check_invariants()

    def test_duplicate_ack_cannot_free_a_younger_reuse_of_the_line(self):
        tc = make_tc()
        first = self.issued_entry(tc)
        tc.ack(line(0), seq=first.seq)
        # the line is reused by a younger transaction, not yet issued
        tc.write(2, line(0), Version(2, 0))
        tc.commit(2)
        # a stale duplicate of tx 1's ack arrives: seq does not match
        assert tc.ack(line(0), seq=first.seq) is None
        assert tc.occupancy == 1
        tc.check_invariants()

    def test_seqless_ack_keeps_legacy_nearest_tail_match(self):
        tc = make_tc()
        entry = self.issued_entry(tc)
        assert tc.ack(line(0)) is entry

    def test_unmatched_ack_surfaces_warning_event(self):
        tc = make_tc()
        entry = self.issued_entry(tc)
        tc.ack(line(0), seq=entry.seq)
        tc.ack(line(0), seq=entry.seq)  # duplicate
        assert tc.stats.counter("ack.unmatched") == 1
        events = tc.stats.events("ack.unmatched")
        assert len(events) == 1
        assert "idempotent drop" in events[0]

    def test_invariants_hold_under_ack_storm(self):
        tc = make_tc(entries=4)
        for i in range(3):
            tc.write(1, line(i), Version(1, i))
        tc.commit(1)
        issued = tc.take_issuable()
        # deliver every ack three times, out of order
        for _ in range(3):
            for entry in reversed(issued):
                tc.ack(entry.tag, seq=entry.seq)
                tc.check_invariants()
                assert tc.tail_seq <= tc.head_seq
                assert tc.occupancy <= tc.capacity
        assert tc.occupancy == 0
        assert tc.stats.counter("ack.unmatched") == 6

    def test_check_invariants_catches_corruption(self):
        tc = make_tc()
        tc.write(1, line(0), Version(1, 0))
        tc._head_seq = -5  # corrupt: head behind tail
        with pytest.raises(AssertionError):
            tc.check_invariants()


class TestHardwareOverhead:
    def test_table1_txid_bits(self):
        config = paper_machine_config()
        rows = hardware_overhead(config)
        assert rows["CPU TxID/Mode register"]["size"] == "6 bits"
        assert rows["State in TC data array"]["size"] == "1 bit"
        assert "4 KB/core" in rows["TC data array"]["size"]

    def test_summary_bits(self):
        bits = overhead_summary_bits(paper_machine_config())
        assert bits["txid_bits"] == 6
        assert bits["per_tc_line_extra_bits"] == 7   # paper §4.4
        assert bits["per_cache_line_extra_bits"] == 1
        assert bits["tc_total_bytes_machine"] == 16 * 1024  # 4 x 4 KB
