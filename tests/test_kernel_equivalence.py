"""Kernel-equivalence suite: the timing wheel IS the heapq kernel.

Two layers of evidence, matching the two ways the wheel could drift:

* **Property tests** — hypothesis generates random *schedule programs*
  (events that recursively schedule more events, at delays spanning
  the wheel horizon) and executes each program on both kernels,
  asserting identical firing order, firing times, advance-hook call
  sequences, executed counts, clocks, and pending totals — including
  under segmented ``run(until=...)`` and ``max_events`` aborts.
* **Differential test** — a full figure-scale experiment is run under
  ``REPRO_SIM_KERNEL=heap`` and ``=wheel`` and the complete result
  dictionary (every raw stat counter included) must match exactly.
  This is the bit-identity guarantee the golden figures rely on.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.event import (
    KERNEL_ENV,
    SimulationError,
    Simulator,
    TimingWheelSimulator,
)
from repro.sim.runner import run_experiment

# Delays straddle the wheel horizon (WHEEL_SIZE) so programs exercise the
# bucket path, the far-future heap, and migration between them.
_DELAYS = st.integers(min_value=0, max_value=3 * TimingWheelSimulator.WHEEL_SIZE)

# A schedule node is (delay, children): when the node's event fires, it
# schedules each child relative to the firing time.  Recursion gives
# programs where callbacks schedule callbacks — the shape every
# simulator component has.
_NODES = st.recursive(
    st.tuples(_DELAYS, st.just(())),
    lambda children: st.tuples(_DELAYS, st.lists(children, max_size=3).map(tuple)),
    max_leaves=24,
)
_PROGRAMS = st.lists(_NODES, min_size=1, max_size=8)


def _execute(sim, program, untils=(), max_events=None):
    """Run ``program`` on ``sim``; return every observable the kernel
    contract promises (firing log, hook calls, counts, clock)."""
    firing_log = []
    hook_calls = []
    sim.set_advance_hook(hook_calls.append)
    labels = itertools.count()

    def fire(label, children):
        firing_log.append((sim.now, label))
        for child in children:
            schedule(child)

    def schedule(node):
        delay, children = node
        sim.schedule(delay, fire, next(labels), children)

    for node in program:
        schedule(node)
    executed = []
    error = None
    try:
        for until in untils:
            executed.append(sim.run(until=until))
        executed.append(sim.run(max_events=max_events))
    except SimulationError as exc:
        error = str(exc)
    return {
        "firing_log": firing_log,
        "hook_calls": hook_calls,
        "executed": executed,
        "error": error,
        "now": sim.now,
        "pending": sim.pending(),
    }


@settings(max_examples=200, deadline=None)
@given(program=_PROGRAMS)
def test_wheel_matches_heap_full_drain(program):
    assert _execute(Simulator(), program) == \
        _execute(TimingWheelSimulator(), program)


@settings(max_examples=200, deadline=None)
@given(
    program=_PROGRAMS,
    untils=st.lists(
        st.integers(min_value=0, max_value=8 * TimingWheelSimulator.WHEEL_SIZE),
        max_size=3,
    ).map(sorted),
)
def test_wheel_matches_heap_segmented_run(program, untils):
    """run(until=...) segments — including quiet clock jumps past the
    wheel horizon — leave both kernels in identical states."""
    assert _execute(Simulator(), program, untils=untils) == \
        _execute(TimingWheelSimulator(), program, untils=untils)


@settings(max_examples=100, deadline=None)
@given(program=_PROGRAMS, max_events=st.integers(min_value=1, max_value=30))
def test_wheel_matches_heap_max_events_abort(program, max_events):
    """The livelock valve trips after the same event on both kernels,
    leaving the same partial firing log and clock."""
    assert _execute(Simulator(), program, max_events=max_events) == \
        _execute(TimingWheelSimulator(), program, max_events=max_events)


# ----------------------------------------------------------------------
# Differential test: full experiments are bit-identical across kernels.
# ----------------------------------------------------------------------

def _run_with_kernel(monkeypatch, kernel, workload, scheme):
    monkeypatch.setenv(KERNEL_ENV, kernel)
    result = run_experiment(workload, scheme, num_cores=2,
                            operations=20, seed=7)
    return result.to_dict(include_raw=True)


@pytest.mark.parametrize("workload,scheme", [
    ("hashtable", "txcache"),   # accelerator path: TC, acks, drain
    ("sps", "sp"),              # software path: clwb/sfence ops
    ("btree", "kiln"),          # pinned-LLC path: eviction pressure
])
def test_experiments_bit_identical_across_kernels(monkeypatch, workload,
                                                  scheme):
    """Same experiment, both kernels: every metric and every raw stat
    counter must match exactly — the kernel is a perf knob, not a
    modelling one."""
    heap = _run_with_kernel(monkeypatch, "heap", workload, scheme)
    wheel = _run_with_kernel(monkeypatch, "wheel", workload, scheme)
    assert heap == wheel
