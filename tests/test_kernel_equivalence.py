"""Kernel-equivalence suite: every kernel IS the heapq reference.

Three kernels share one contract — ``heap`` (the reference
:class:`Simulator`), ``wheel`` (the timing wheel), and ``columnar``
(the batched columnar core).  Three layers of evidence, matching the
ways a kernel could drift:

* **Property tests** — hypothesis generates random *schedule programs*
  (events that recursively schedule more events, at delays spanning
  the wheel horizon) and executes each program on all three kernels,
  asserting identical firing order, firing times, advance-hook call
  sequences, executed counts, clocks, and pending totals — including
  under segmented ``run(until=...)`` and ``max_events`` aborts.
* **Differential tests** — full figure-scale experiments, a crash
  sweep, and a litmus program are run under every kernel pair and the
  complete result (every raw stat counter included) must match
  exactly.  This is the bit-identity guarantee the golden figures
  rely on.
* **Fault differential** — hypothesis-generated fault-injection
  configs (nonzero NVM retry / ack-fault / ECC rates) must produce
  identical Stats counters under the object and columnar kernels: the
  fault-retry path reaches the controller outside any scheduler tick,
  which is exactly where memoized-scan state could go stale.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import FaultConfig, small_machine_config
from repro.common.event import (
    KERNEL_ENV,
    KERNEL_NAMES,
    ColumnarSimulator,
    SimulationError,
    Simulator,
    TimingWheelSimulator,
)
from repro.sim.runner import run_experiment

#: kernel name -> class, for the property layer
_KERNELS = {
    "heap": Simulator,
    "wheel": TimingWheelSimulator,
    "columnar": ColumnarSimulator,
}

#: every unordered kernel pair — the differential layer runs each
_KERNEL_PAIRS = list(itertools.combinations(KERNEL_NAMES, 2))

# Delays straddle the wheel horizon (WHEEL_SIZE) so programs exercise the
# bucket path, the far-future heap, and migration between them.
_DELAYS = st.integers(min_value=0, max_value=3 * TimingWheelSimulator.WHEEL_SIZE)

# A schedule node is (delay, children): when the node's event fires, it
# schedules each child relative to the firing time.  Recursion gives
# programs where callbacks schedule callbacks — the shape every
# simulator component has.
_NODES = st.recursive(
    st.tuples(_DELAYS, st.just(())),
    lambda children: st.tuples(_DELAYS, st.lists(children, max_size=3).map(tuple)),
    max_leaves=24,
)
_PROGRAMS = st.lists(_NODES, min_size=1, max_size=8)


def _execute(sim, program, untils=(), max_events=None):
    """Run ``program`` on ``sim``; return every observable the kernel
    contract promises (firing log, hook calls, counts, clock)."""
    firing_log = []
    hook_calls = []
    sim.set_advance_hook(hook_calls.append)
    labels = itertools.count()

    def fire(label, children):
        firing_log.append((sim.now, label))
        for child in children:
            schedule(child)

    def schedule(node):
        delay, children = node
        sim.schedule(delay, fire, next(labels), children)

    for node in program:
        schedule(node)
    executed = []
    error = None
    try:
        for until in untils:
            executed.append(sim.run(until=until))
        executed.append(sim.run(max_events=max_events))
    except SimulationError as exc:
        error = str(exc)
    return {
        "firing_log": firing_log,
        "hook_calls": hook_calls,
        "executed": executed,
        "error": error,
        "now": sim.now,
        "pending": sim.pending(),
    }


def _execute_all(program, **kwargs):
    """The same program on every kernel; dict of kernel -> observables."""
    return {name: _execute(cls(), program, **kwargs)
            for name, cls in _KERNELS.items()}


def _assert_all_equal(by_kernel):
    reference = by_kernel["heap"]
    for name, observed in by_kernel.items():
        assert observed == reference, f"kernel {name!r} diverged from heap"


@settings(max_examples=200, deadline=None)
@given(program=_PROGRAMS)
def test_kernels_match_full_drain(program):
    _assert_all_equal(_execute_all(program))


@settings(max_examples=200, deadline=None)
@given(
    program=_PROGRAMS,
    untils=st.lists(
        st.integers(min_value=0, max_value=8 * TimingWheelSimulator.WHEEL_SIZE),
        max_size=3,
    ).map(sorted),
)
def test_kernels_match_segmented_run(program, untils):
    """run(until=...) segments — including quiet clock jumps past the
    wheel horizon — leave all kernels in identical states."""
    _assert_all_equal(_execute_all(program, untils=untils))


@settings(max_examples=100, deadline=None)
@given(program=_PROGRAMS, max_events=st.integers(min_value=1, max_value=30))
def test_kernels_match_max_events_abort(program, max_events):
    """The livelock valve trips after the same event on every kernel,
    leaving the same partial firing log and clock."""
    _assert_all_equal(_execute_all(program, max_events=max_events))


# ----------------------------------------------------------------------
# Differential tests: full experiments are bit-identical across kernels.
# ----------------------------------------------------------------------

def _run_with_kernel(monkeypatch, kernel, workload, scheme):
    monkeypatch.setenv(KERNEL_ENV, kernel)
    result = run_experiment(workload, scheme, num_cores=2,
                            operations=20, seed=7)
    return result.to_dict(include_raw=True)


@pytest.mark.parametrize("kernel_a,kernel_b", _KERNEL_PAIRS)
@pytest.mark.parametrize("workload,scheme", [
    ("hashtable", "txcache"),   # accelerator path: TC, acks, drain
    ("sps", "sp"),              # software path: clwb/sfence ops
    ("btree", "kiln"),          # pinned-LLC path: eviction pressure
])
def test_experiments_bit_identical_across_kernels(monkeypatch, workload,
                                                  scheme, kernel_a, kernel_b):
    """Same experiment, every kernel pair: every metric and every raw
    stat counter must match exactly — the kernel is a perf knob, not a
    modelling one."""
    a = _run_with_kernel(monkeypatch, kernel_a, workload, scheme)
    b = _run_with_kernel(monkeypatch, kernel_b, workload, scheme)
    assert a == b


@pytest.mark.parametrize("kernel_a,kernel_b", _KERNEL_PAIRS)
def test_crash_sweep_bit_identical_across_kernels(monkeypatch, kernel_a,
                                                  kernel_b):
    """Crash sweeps re-run the same system to a mid-execution cycle and
    diff durable images — every crash fraction's report must agree."""
    from repro.sim.crash import crash_sweep

    def sweep(kernel):
        monkeypatch.setenv(KERNEL_ENV, kernel)
        return crash_sweep("hashtable", "txcache",
                           fractions=(0.25, 0.5, 0.9),
                           num_cores=2, operations=12, seed=11)

    assert sweep(kernel_a) == sweep(kernel_b)


@pytest.mark.parametrize("kernel_a,kernel_b", _KERNEL_PAIRS)
def test_litmus_program_bit_identical_across_kernels(monkeypatch, kernel_a,
                                                     kernel_b):
    """An every-cycle litmus crash sweep (the stepped single-simulation
    runner) reports identical consistency outcomes under every kernel."""
    from repro.litmus.generator import message_passing
    from repro.litmus.runner import run_litmus

    def sweep(kernel):
        monkeypatch.setenv(KERNEL_ENV, kernel)
        return run_litmus(message_passing(), "txcache")

    assert sweep(kernel_a) == sweep(kernel_b)


# ----------------------------------------------------------------------
# Fault differential: the resilience paths (retries, lost/duplicated
# acks, ECC scrubs) stay bit-identical under the columnar kernel.
# ----------------------------------------------------------------------

_RATES = st.floats(min_value=0.01, max_value=0.3,
                   allow_nan=False, allow_infinity=False)


@settings(max_examples=10, deadline=None)
@given(
    nvm_write_fail_rate=_RATES,
    ack_loss_rate=_RATES.map(lambda r: r / 3),
    ack_duplicate_rate=_RATES.map(lambda r: r / 3),
    tc_bit_flip_rate=st.floats(min_value=1e-6, max_value=1e-4,
                               allow_nan=False, allow_infinity=False),
    fault_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fault_injection_stats_identical_object_vs_columnar(
        nvm_write_fail_rate, ack_loss_rate, ack_duplicate_rate,
        tc_bit_flip_rate, fault_seed):
    """Random nonzero fault rates: the object (wheel) and columnar
    kernels must count every retry, remap, dropped/duplicated ack, and
    ECC event identically.  The injector streams are deterministic per
    site, so any divergence is a kernel bug, not noise."""
    import os

    faults = FaultConfig(
        seed=fault_seed,
        nvm_write_fail_rate=nvm_write_fail_rate,
        ack_loss_rate=ack_loss_rate,
        ack_duplicate_rate=ack_duplicate_rate,
        tc_bit_flip_rate=tc_bit_flip_rate,
    )
    config = replace(small_machine_config(num_cores=2), faults=faults)

    def run(kernel):
        saved = os.environ.get(KERNEL_ENV)
        os.environ[KERNEL_ENV] = kernel
        try:
            result = run_experiment("hashtable", "txcache", config=config,
                                    operations=10, seed=13)
            return result.to_dict(include_raw=True)
        finally:
            if saved is None:
                os.environ.pop(KERNEL_ENV, None)
            else:
                os.environ[KERNEL_ENV] = saved

    assert run("wheel") == run("columnar")
