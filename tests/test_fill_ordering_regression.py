"""Regression tests for the MSHR fill-clobber bug.

A load or store that coalesces onto an outstanding miss must never let
the (stale) memory fill overwrite newer data applied by an earlier
store waiter — found by the cross-scheme architectural-equivalence
property test and fixed in ``CacheHierarchy._fill_private`` /
``_fill``/``_insert_llc``.
"""

from repro.common.types import NVM_BASE, Version
from repro.cpu.trace import TraceBuilder
from repro.sim.system import System


def run(trace, scheme="optimal"):
    system = System.build(scheme, num_cores=1)
    system.load_traces([trace])
    system.run()
    return system


class TestFillClobberRegression:
    def test_store_store_load_same_line(self):
        """The falsifying example: two transactions store the same line
        (fills still in flight), then a load coalesces onto the miss."""
        builder = TraceBuilder("t")
        builder.begin_tx(); builder.store(NVM_BASE); builder.end_tx()
        builder.begin_tx(); builder.store(NVM_BASE); builder.end_tx()
        builder.load(NVM_BASE)
        system = run(builder.build())
        entry = system.hierarchy.l1[0].probe(NVM_BASE)
        assert entry is not None
        assert entry.version == Version(2, 0)
        assert entry.dirty, "fill must not clear the dirty bit"

    def test_coalesced_load_sees_earlier_store(self):
        """A load waiter behind a store waiter on the same miss must
        observe the store's data (program order)."""
        builder = TraceBuilder("t")
        builder.begin_tx()
        builder.store(NVM_BASE)
        builder.load(NVM_BASE)
        builder.end_tx()
        system = System.build("optimal", num_cores=1)
        trace = builder.build()
        seen = []
        # intercept the load completion through the hierarchy directly
        original = system.scheme.load

        def spy(core, op, on_complete):
            original(core, op,
                     lambda lat, version: (seen.append(version),
                                           on_complete(lat, version)))

        system.scheme.load = spy
        system.load_traces([trace])
        system.run()
        assert seen == [Version(1, 0)]

    def test_dirty_llc_entry_survives_clean_reinstall(self):
        """A clean fill must not clobber a dirty LLC entry's version."""
        from repro.cache.hierarchy import CacheHierarchy
        from repro.common.config import small_machine_config
        from repro.common.event import Simulator
        from repro.common.stats import Stats
        from repro.memory.system import MemorySystem

        sim = Simulator()
        stats = Stats()
        config = small_machine_config(num_cores=1)
        memory = MemorySystem(sim, config, stats)
        hierarchy = CacheHierarchy(sim, config, stats, memory)
        hierarchy._insert_llc(NVM_BASE, Version(5, 0), dirty=True,
                              persistent=True)
        hierarchy._insert_llc(NVM_BASE, None, dirty=False)
        entry = hierarchy.llc.probe(NVM_BASE)
        assert entry.dirty
        assert entry.version == Version(5, 0)

    def test_all_schemes_agree_on_final_state(self):
        builder = TraceBuilder("t")
        for _round in range(3):
            builder.begin_tx()
            builder.store(NVM_BASE)
            builder.store(NVM_BASE + 64)
            builder.end_tx()
            builder.load(NVM_BASE)
        trace = builder.build()
        states = {}
        for scheme in ("optimal", "sp", "kiln", "txcache"):
            system = run(trace, scheme)
            states[scheme] = (
                system.hierarchy.newest_version(0, NVM_BASE),
                system.hierarchy.newest_version(0, NVM_BASE + 64),
            )
        assert len(set(states.values())) == 1, states
        assert states["optimal"][0] == Version(3, 0)
