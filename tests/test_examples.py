"""Smoke tests: the shipped examples must run and tell their story."""

import runpy
import sys

import pytest


def run_example(path, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    except SystemExit as exc:  # argparse-based examples exit cleanly
        assert not exc.code
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("examples/quickstart.py", capsys=capsys)
        assert "TXCACHE achieves" in out
        assert "% of native performance" in out

    def test_crash_recovery_demo(self, capsys):
        out = run_example("examples/crash_recovery_demo.py", capsys=capsys)
        assert "scheme: optimal" in out
        assert "scheme: txcache" in out
        assert "TORN" in out          # optimal tears somewhere
        # every txcache crash point is consistent
        txcache_section = out.split("scheme: txcache")[1]
        assert "TORN" not in txcache_section

    def test_custom_workload(self, capsys):
        out = run_example("examples/custom_workload.py", capsys=capsys)
        assert "bank_transfer" in out
        assert "4KB" in out

    def test_pheap_demo(self, capsys):
        out = run_example("examples/pheap_demo.py", capsys=capsys)
        assert "CONSISTENT" in out
        assert "TORN" not in out
        assert "x optimal" in out

    def test_reproduce_paper_parses_arguments(self, capsys):
        # --help exits cleanly (run_example absorbs the SystemExit)
        out = run_example("examples/reproduce_paper.py", argv=["--help"],
                          capsys=capsys)
        assert "--quick" in out
        assert "--operations" in out
