"""Tests for the energy-estimation extension."""

import pytest

from repro.common.types import NVM_BASE, SchemeName, Version
from repro.cpu.trace import TraceBuilder
from repro.sim.energy import EnergyBreakdown, EnergyModel, estimate_energy
from repro.sim.runner import make_traces
from repro.sim.system import System


def run_system(scheme, operations=30):
    system = System.build(scheme, num_cores=1)
    system.load_traces(make_traces("sps", 1, operations, seed=9,
                                   array_elements=128))
    system.run()
    return system


class TestEnergyModel:
    def test_empty_stats_zero_energy(self):
        from repro.common.stats import Stats
        breakdown = EnergyModel().estimate(Stats(), num_cores=1)
        assert breakdown.total_pj == 0.0
        assert breakdown.fraction("nvm_write") == 0.0

    def test_components_follow_counters(self):
        from repro.common.stats import Stats
        stats = Stats()
        stats.inc("l1.0.access", 100)
        stats.inc("mem.nvm.write.requests", 10)
        model = EnergyModel()
        breakdown = model.estimate(stats, num_cores=1)
        assert breakdown.components["l1"] == 100 * model.l1_access_pj
        assert breakdown.nvm_write_pj == 10 * model.nvm_write_pj
        assert breakdown.total_pj == pytest.approx(
            breakdown.components["l1"] + breakdown.nvm_write_pj)

    def test_custom_energies_respected(self):
        from repro.common.stats import Stats
        stats = Stats()
        stats.inc("mem.nvm.write.requests", 1)
        breakdown = EnergyModel(nvm_write_pj=7.0).estimate(stats, 1)
        assert breakdown.nvm_write_pj == 7.0


class TestSchemeEnergyComparison:
    def test_sp_spends_most_nvm_write_energy(self):
        energies = {
            scheme: estimate_energy(run_system(scheme)).nvm_write_pj
            for scheme in ("sp", "txcache", "kiln", "optimal")
        }
        assert energies["sp"] > energies["txcache"]
        assert energies["txcache"] > energies["kiln"]

    def test_tc_component_only_for_txcache(self):
        txcache = estimate_energy(run_system("txcache"))
        optimal = estimate_energy(run_system("optimal"))
        assert txcache.components["tc"] > 0
        assert optimal.components["tc"] == 0

    def test_format_is_readable(self):
        breakdown = estimate_energy(run_system("txcache"))
        text = breakdown.format("(txcache)")
        assert "nvm_write" in text
        assert "total" in text
        assert "uJ" in text

    def test_memory_fraction(self):
        breakdown = estimate_energy(run_system("optimal"))
        assert 0 < breakdown.memory_pj <= breakdown.total_pj
