"""Behavioral tests for the four persistence schemes."""

import pytest

from repro.common.config import small_machine_config
from repro.common.types import NVM_BASE, SchemeName, Version
from repro.cpu.trace import OpType, Trace, TraceBuilder, TraceOp
from repro.persistence.software import (
    SP_LOG_BASE,
    SoftwareScheme,
    sp_record_addr,
)
from repro.sim.runner import make_traces, run_experiment
from repro.sim.system import System


def two_store_tx_trace():
    builder = TraceBuilder("t")
    builder.begin_tx()
    builder.store(NVM_BASE)
    builder.store(NVM_BASE + 64)
    builder.end_tx()
    return builder.build()


def run_system(scheme, trace, num_cores=1, until=None):
    system = System.build(scheme, num_cores=num_cores)
    system.load_traces([trace])
    system.run(until=until)
    return system


class TestOptimalScheme:
    def test_trace_unchanged(self):
        system = System.build("optimal")
        trace = two_store_tx_trace()
        assert system.scheme.prepare_trace(trace) is trace

    def test_no_nvm_writes_without_evictions(self):
        system = run_system("optimal", two_store_tx_trace())
        assert system.stats.counter("mem.nvm.write.requests") == 0

    def test_commits_are_never_durable(self):
        system = run_system("optimal", two_store_tx_trace())
        assert system.scheme.durably_committed(system.sim.now) == set()


class TestSoftwareScheme:
    def make_prepared(self):
        system = System.build("sp")
        trace = two_store_tx_trace()
        return system, system.scheme.prepare_trace(trace)

    def test_instrumentation_adds_log_clwb_fence_ops(self):
        _system, prepared = self.make_prepared()
        ops = [op.op for op in prepared.ops]
        assert OpType.CLWB in ops
        assert OpType.SFENCE in ops
        # log stores + data stores + record store
        stores = [op for op in prepared.ops if op.op is OpType.STORE]
        assert len(stores) == 2 + 2 + 1

    def test_log_writes_precede_body(self):
        _system, prepared = self.make_prepared()
        first_log = next(i for i, op in enumerate(prepared.ops)
                         if op.op is OpType.STORE and op.addr >= SP_LOG_BASE)
        first_data = next(i for i, op in enumerate(prepared.ops)
                          if op.op is OpType.STORE and op.addr < SP_LOG_BASE)
        assert first_log < first_data

    def test_fence_separates_log_from_body(self):
        _system, prepared = self.make_prepared()
        first_data = next(i for i, op in enumerate(prepared.ops)
                          if op.op is OpType.STORE and op.addr < SP_LOG_BASE)
        fences_before = [i for i, op in enumerate(prepared.ops[:first_data])
                         if op.op is OpType.SFENCE]
        assert fences_before, "no sfence between log and in-place writes"

    def test_record_is_last_persistent_store(self):
        _system, prepared = self.make_prepared()
        stores = [op for op in prepared.ops if op.op is OpType.STORE]
        assert stores[-1].addr == sp_record_addr(1)
        assert stores[-1].version == Version(1, -1)

    def test_record_durable_after_data_in_nvm_timeline(self):
        system = System.build("sp")
        trace = two_store_tx_trace()
        system.load_traces([trace])
        system.run()
        events = system.memory.durable_image.events
        record_cycle = next(c for c, _s, l, _v in events
                            if l == sp_record_addr(1))
        data_cycles = [c for c, _s, l, _v in events
                       if l in (NVM_BASE, NVM_BASE + 64)]
        assert data_cycles and max(data_cycles) <= record_cycle

    def test_write_traffic_includes_log_and_record(self):
        system = run_system("sp", two_store_tx_trace())
        # 2 data lines + 1 log line (two 16B records pack into one) + record
        assert system.stats.counter("mem.nvm.write.lines") == 4

    def test_fence_stall_accounted(self):
        system = run_system("sp", two_store_tx_trace())
        assert system.stats.counter("core.0.stall.fence") > 0

    def test_search_only_tx_adds_no_persistence_ops(self):
        builder = TraceBuilder("t")
        builder.begin_tx()
        builder.load(NVM_BASE)
        builder.end_tx()
        system = System.build("sp")
        prepared = system.scheme.prepare_trace(builder.build())
        assert all(op.op is not OpType.CLWB for op in prepared.ops)
        assert all(op.op is not OpType.SFENCE for op in prepared.ops)


class TestTxCacheScheme:
    def test_hierarchy_hooks_installed(self):
        system = System.build("txcache")
        assert system.hierarchy.drop_persistent_evictions
        assert system.hierarchy.llc_probe is not None

    def test_commit_is_nonblocking(self):
        """TX_END must not stall the core (paper: commit work happens
        on the side path)."""
        system = run_system("txcache", two_store_tx_trace())
        assert system.stats.counter("core.0.stall.commit") == 0

    def test_commit_cycle_recorded(self):
        system = run_system("txcache", two_store_tx_trace())
        assert 1 in system.scheme.commit_cycle
        assert system.scheme.durably_committed(system.sim.now) == {1}

    def test_tc_drains_to_nvm_after_commit(self):
        system = run_system("txcache", two_store_tx_trace())
        final = system.memory.durable_image.final_state()
        assert final[NVM_BASE] == Version(1, 0)
        assert final[NVM_BASE + 64] == Version(1, 1)
        assert not system.scheme.busy()

    def test_uncommitted_tx_never_reaches_nvm(self):
        builder = TraceBuilder("t")
        builder.begin_tx()
        builder.store(NVM_BASE)
        builder.end_tx()
        builder.begin_tx()       # second tx left open? traces must close —
        builder.store(NVM_BASE + 64)
        builder.end_tx()
        trace = builder.build()
        system = System.build("txcache")
        system.load_traces([trace])
        system.run(until=1)  # crash almost immediately
        final = system.memory.durable_state_at(1)
        assert NVM_BASE not in final and (NVM_BASE + 64) not in final

    def test_normal_mode_persistent_store_not_buffered(self):
        """Outside a transaction the CPU issues writes only to the L1
        (paper §4.2): nothing enters the TC."""
        trace = Trace("t", [TraceOp(OpType.STORE, addr=NVM_BASE,
                                    version=None)])
        system = run_system("txcache", trace)
        assert system.stats.counter("tc.0.write.inserted") == 0


class TestTxCacheOverflow:
    def big_tx_trace(self, stores):
        builder = TraceBuilder("t")
        builder.begin_tx()
        for index in range(stores):
            builder.store(NVM_BASE + index * 64)
        builder.end_tx()
        return builder.build()

    def test_oversized_tx_falls_back_to_cow(self):
        system = run_system("txcache", self.big_tx_trace(100))
        stats = system.stats
        assert stats.counter("tc.overflow.fallback.transactions") == 1
        assert stats.counter("tc.overflow.fallback.shadow_writes") > 0
        assert system.scheme.durably_committed(system.sim.now) == {1}

    def test_fallback_tx_data_reaches_home_addresses(self):
        system = run_system("txcache", self.big_tx_trace(100))
        final = system.memory.durable_image.final_state()
        for index in range(100):
            assert final[NVM_BASE + index * 64] == Version(1, index)

    def test_small_tx_does_not_fall_back(self):
        system = run_system("txcache", self.big_tx_trace(10))
        assert system.stats.counter(
            "tc.overflow.fallback.transactions") == 0


class TestKilnScheme:
    def test_nv_llc_latency_raised(self):
        plain = System.build("optimal")
        kiln = System.build("kiln")
        assert kiln.hierarchy.llc.latency > plain.hierarchy.llc.latency

    def test_commit_blocks_hierarchy(self):
        system = run_system("kiln", two_store_tx_trace())
        assert system.stats.counter("scheme.kiln.commit_flush_lines") == 2
        assert system.hierarchy.blocked_until > 0

    def test_commit_stalls_the_core(self):
        system = run_system("kiln", two_store_tx_trace())
        # the commit flush is attributed to its own stall kind
        assert system.stats.counter("core.0.stall.flush") > 0
        assert system.stats.counter("core.0.stall.total") > 0

    def test_committed_data_durable_without_nvm_write(self):
        """The NV-LLC itself is durable: a committed transaction is
        recoverable even though nothing was written to the NVM."""
        system = run_system("kiln", two_store_tx_trace())
        recovered = system.scheme.durable_lines(system.sim.now)
        assert recovered[NVM_BASE] == Version(1, 0)
        assert recovered[NVM_BASE + 64] == Version(1, 1)

    def test_uncommitted_lines_pinned_on_llc_arrival(self):
        system = System.build("kiln")
        scheme = system.scheme
        scheme._open_tx_lines[42] = {NVM_BASE}
        assert system.hierarchy.llc_pin_predicate(42)
        assert not system.hierarchy.llc_pin_predicate(7)
        assert not system.hierarchy.llc_pin_predicate(None)


class TestSchemeComparability:
    """All schemes must execute the same workload to the same
    architectural end state."""

    @pytest.mark.parametrize("scheme", ["optimal", "sp", "kiln", "txcache"])
    def test_final_architectural_state_matches_trace(self, scheme):
        traces = make_traces("sps", 1, 20, seed=3, array_elements=64)
        system = System.build(scheme, num_cores=1)
        system.load_traces(traces)
        system.run()
        from repro.sim.crash import expected_image
        all_tx = {op.tx_id for op in traces[0].ops if op.tx_id is not None}
        expected = expected_image(traces, all_tx)
        for line, version in expected.items():
            assert system.hierarchy.newest_version(0, line) == version
