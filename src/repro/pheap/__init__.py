"""NV-heaps-style persistent object API over the simulator.

Write ordinary Python against :class:`PersistentArena` and the
persistent collections; run the resulting program under any persistence
scheme; crash-test its atomicity.  This is the paper's §4.2 software
interface (``Transaction { ... }`` over a persistent heap) made
concrete.
"""

from .arena import PersistentArena, TransactionError
from .collections import (
    PersistentCounter,
    PersistentDict,
    PersistentList,
)

__all__ = [
    "PersistentArena",
    "PersistentCounter",
    "PersistentDict",
    "PersistentList",
    "TransactionError",
]
