"""Persistent arena: the paper's software interface, made usable.

The paper's programming model (§4.2, Fig. 1) is NV-heaps-like: a
persistent heap (``p_malloc``), ordinary loads/stores, and
``Transaction { ... }`` blocks compiled to TX_BEGIN/TX_END.  This
package provides that interface for *Python programs*: code written
against :class:`PersistentArena` and the collections in
:mod:`repro.pheap.collections` executes functionally (your data is
really there) while every persistent access is recorded as a trace —
which can then be run through the simulator under any persistence
scheme, timed, and crash-tested.

    arena = PersistentArena("inventory")
    stock = PersistentDict(arena)
    with arena.transaction():
        stock["widgets"] = 12
    result = arena.run("txcache")          # simulate the program
    report = arena.crash_test("txcache")   # prove it is atomic
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..common.config import MachineConfig, small_machine_config
from ..common.types import SchemeName
from ..cpu.trace import Trace, TraceBuilder
from ..workloads.heap import PersistentHeap, VolatileHeap

WORD = 8


class TransactionError(RuntimeError):
    """Raised when persistent state is mutated outside a transaction."""


class PersistentArena:
    """A persistent heap plus the trace of everything done to it."""

    def __init__(self, name: str = "pheap", core_id: int = 0) -> None:
        self.name = name
        self.core_id = core_id
        self._builder = TraceBuilder(name=f"{name}.core{core_id}",
                                     start_tx_id=core_id * 10_000_000 + 1)
        self._allocator = PersistentHeap(core_id)
        self._volatile = VolatileHeap(core_id)
        self._finalized: Optional[Trace] = None

    # ------------------------------------------------------------------
    # the software interface
    # ------------------------------------------------------------------
    def transaction(self) -> "_ArenaTx":
        """The paper's ``Transaction { ... }`` block."""
        return _ArenaTx(self)

    @property
    def in_transaction(self) -> bool:
        return self._builder.in_tx

    def p_malloc(self, size: int) -> int:
        """Allocate persistent bytes; returns the address."""
        self._mutable()
        return self._allocator.alloc(size)

    def malloc(self, size: int) -> int:
        """Allocate volatile (DRAM) bytes."""
        self._mutable()
        return self._volatile.alloc(size)

    # -- instrumented accesses (collections call these) -----------------
    def read_word(self, addr: int) -> None:
        self._mutable()
        self._builder.load(addr)

    def write_word(self, addr: int) -> None:
        self._mutable()
        if self._allocator.contains(addr) and not self._builder.in_tx:
            raise TransactionError(
                f"persistent store to {addr:#x} outside a transaction — "
                "wrap the mutation in `with arena.transaction():`")
        self._builder.store(addr)

    def compute(self, count: int = 1) -> None:
        self._mutable()
        self._builder.compute(count)

    def _mutable(self) -> None:
        if self._finalized is not None:
            raise TransactionError(
                "arena already finalized (trace() was called); create a "
                "new arena to record more work")

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def trace(self) -> Trace:
        """Finalize and return the recorded trace (idempotent)."""
        if self._finalized is None:
            self._finalized = self._builder.build()
        return self._finalized

    def run(self, scheme: Union[str, SchemeName] = "txcache",
            config: Optional[MachineConfig] = None):
        """Simulate the recorded program under ``scheme``."""
        from ..sim.runner import run_experiment

        return run_experiment(self.name, scheme,
                              config=config or small_machine_config(num_cores=1),
                              traces=[self.trace()])

    def crash_test(self, scheme: Union[str, SchemeName] = "txcache",
                   fractions=(0.25, 0.5, 0.75),
                   config: Optional[MachineConfig] = None) -> List:
        """Crash the recorded program at several points and check that
        recovery is atomic; returns the list of CrashReports."""
        from ..sim.crash import run_with_crash
        from ..sim.system import System

        config = config or small_machine_config(num_cores=1)
        trace = self.trace()
        # measure an uninterrupted run
        probe = System(config, scheme)
        probe.load_traces([trace])
        probe.run()
        total = probe.sim.now
        reports = []
        for fraction in fractions:
            reports.append(run_with_crash(
                self.name, scheme, max(1, int(total * fraction)),
                config=config, total_cycles=total, traces=[trace]))
        return reports


class _ArenaTx:
    """Context manager implementing ``Transaction { ... }``."""

    def __init__(self, arena: PersistentArena) -> None:
        self._arena = arena

    def __enter__(self) -> int:
        return self._arena._builder.begin_tx()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._arena._builder.end_tx()
