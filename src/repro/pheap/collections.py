"""Persistent collections over a :class:`~repro.pheap.arena.PersistentArena`.

NV-heaps-style data types: fully functional Python containers whose
every persistent access is simultaneously recorded into the arena's
trace with a realistic memory layout.  Mutations must happen inside
``with arena.transaction():`` — the arena enforces it, exactly as the
paper's software interface requires.

Layouts (all fields 64-bit):

* :class:`PersistentDict` — bucket array of chain heads; chain nodes
  ``key | value | next``.
* :class:`PersistentList` — header ``length | capacity | data_ptr``
  plus a data array; appending past capacity reallocates and copies
  (every copied element is a real load + store in the trace).
* :class:`PersistentCounter` — one 64-bit cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .arena import WORD, PersistentArena

# chain node layout
_NODE_KEY = 0
_NODE_VALUE = 8
_NODE_NEXT = 16
_NODE_SIZE = 24


@dataclass
class _ChainNode:
    addr: int
    key: object
    value: object
    next: Optional["_ChainNode"] = None


class PersistentDict:
    """A persistent chained hash map."""

    def __init__(self, arena: PersistentArena, buckets: int = 64) -> None:
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.arena = arena
        self.num_buckets = buckets
        with self._implicit_setup_tx():
            self._buckets_base = arena.p_malloc(buckets * WORD)
            for index in range(buckets):
                arena.write_word(self._buckets_base + index * WORD)
        self._chains: List[Optional[_ChainNode]] = [None] * buckets
        self._len = 0

    def _implicit_setup_tx(self):
        # construction initializes persistent memory: needs a tx unless
        # the caller already opened one
        if self.arena.in_transaction:
            import contextlib
            return contextlib.nullcontext()
        return self.arena.transaction()

    def _bucket_of(self, key: object) -> int:
        self.arena.compute(3)  # hash
        return hash(key) % self.num_buckets

    def _bucket_addr(self, index: int) -> int:
        return self._buckets_base + index * WORD

    # ------------------------------------------------------------------
    def __setitem__(self, key: object, value: object) -> None:
        bucket = self._bucket_of(key)
        self.arena.read_word(self._bucket_addr(bucket))
        node = self._chains[bucket]
        while node is not None:
            self.arena.read_word(node.addr + _NODE_KEY)
            self.arena.compute(1)
            if node.key == key:
                node.value = value
                self.arena.write_word(node.addr + _NODE_VALUE)
                return
            self.arena.read_word(node.addr + _NODE_NEXT)
            node = node.next
        fresh = _ChainNode(addr=self.arena.p_malloc(_NODE_SIZE),
                           key=key, value=value,
                           next=self._chains[bucket])
        self.arena.write_word(fresh.addr + _NODE_KEY)
        self.arena.write_word(fresh.addr + _NODE_VALUE)
        self.arena.write_word(fresh.addr + _NODE_NEXT)
        self.arena.write_word(self._bucket_addr(bucket))  # publish
        self._chains[bucket] = fresh
        self._len += 1

    def __getitem__(self, key: object) -> object:
        bucket = self._bucket_of(key)
        self.arena.read_word(self._bucket_addr(bucket))
        node = self._chains[bucket]
        while node is not None:
            self.arena.read_word(node.addr + _NODE_KEY)
            self.arena.compute(1)
            if node.key == key:
                self.arena.read_word(node.addr + _NODE_VALUE)
                return node.value
            self.arena.read_word(node.addr + _NODE_NEXT)
            node = node.next
        raise KeyError(key)

    def get(self, key: object, default: object = None) -> object:
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: object) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def __delitem__(self, key: object) -> None:
        bucket = self._bucket_of(key)
        self.arena.read_word(self._bucket_addr(bucket))
        previous = None
        node = self._chains[bucket]
        while node is not None:
            self.arena.read_word(node.addr + _NODE_KEY)
            self.arena.compute(1)
            if node.key == key:
                if previous is None:
                    self._chains[bucket] = node.next
                    self.arena.write_word(self._bucket_addr(bucket))
                else:
                    previous.next = node.next
                    self.arena.write_word(previous.addr + _NODE_NEXT)
                self._len -= 1
                return
            self.arena.read_word(node.addr + _NODE_NEXT)
            previous, node = node, node.next
        raise KeyError(key)

    def __len__(self) -> int:
        return self._len

    def keys(self) -> Iterator[object]:
        for chain in self._chains:
            node = chain
            while node is not None:
                yield node.key
                node = node.next


_MISSING = object()


# list header layout
_HDR_LENGTH = 0
_HDR_CAPACITY = 8
_HDR_DATA = 16
_HDR_SIZE = 24


class PersistentList:
    """A persistent growable array (vector)."""

    def __init__(self, arena: PersistentArena, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.arena = arena
        with PersistentDict._implicit_setup_tx(self):  # same guard
            self._header = arena.p_malloc(_HDR_SIZE)
            self._data = arena.p_malloc(capacity * WORD)
            arena.write_word(self._header + _HDR_LENGTH)
            arena.write_word(self._header + _HDR_CAPACITY)
            arena.write_word(self._header + _HDR_DATA)
        self._capacity = capacity
        self._items: List[object] = []

    def _slot(self, index: int) -> int:
        return self._data + index * WORD

    def append(self, value: object) -> None:
        self.arena.read_word(self._header + _HDR_LENGTH)
        self.arena.read_word(self._header + _HDR_CAPACITY)
        self.arena.compute(1)
        if len(self._items) >= self._capacity:
            self._grow()
        self.arena.write_word(self._slot(len(self._items)))  # the element
        self.arena.write_word(self._header + _HDR_LENGTH)    # then publish
        self._items.append(value)

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        new_data = self.arena.p_malloc(new_capacity * WORD)
        for index in range(len(self._items)):   # real copy traffic
            self.arena.read_word(self._slot(index))
            self.arena.write_word(new_data + index * WORD)
        self._data = new_data
        self._capacity = new_capacity
        self.arena.write_word(self._header + _HDR_DATA)
        self.arena.write_word(self._header + _HDR_CAPACITY)

    def __getitem__(self, index: int) -> object:
        if not -len(self._items) <= index < len(self._items):
            raise IndexError(index)
        index %= len(self._items)
        self.arena.read_word(self._header + _HDR_LENGTH)
        self.arena.read_word(self._slot(index))
        return self._items[index]

    def __setitem__(self, index: int, value: object) -> None:
        if not -len(self._items) <= index < len(self._items):
            raise IndexError(index)
        index %= len(self._items)
        self.arena.write_word(self._slot(index))
        self._items[index] = value

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[object]:
        for index in range(len(self._items)):
            yield self[index]


class PersistentCounter:
    """A single persistent 64-bit counter."""

    def __init__(self, arena: PersistentArena) -> None:
        self.arena = arena
        with PersistentDict._implicit_setup_tx(self):
            self._addr = arena.p_malloc(WORD)
            arena.write_word(self._addr)
        self._value = 0

    def increment(self, amount: int = 1) -> int:
        self.arena.read_word(self._addr)
        self.arena.compute(1)
        self.arena.write_word(self._addr)
        self._value += amount
        return self._value

    @property
    def value(self) -> int:
        self.arena.read_word(self._addr)
        return self._value
