"""MESI directory coherence for the multicore hierarchy.

The paper's four-core machine keeps private L1/L2 caches coherent
through the shared LLC.  This module is the protocol brain: a
directory tracking, per line, which cores hold it and in which MESI
state, deciding on every access what must happen — who supplies the
data, who gets invalidated, who downgrades — and enforcing the MESI
invariants (at most one M or E owner; an M/E owner excludes everyone
else).

The timed hierarchy consults the directory on loads and stores (the
data-path consequences — snooping dirty data into the LLC,
invalidating remote copies — are applied by
:class:`~repro.cache.hierarchy.CacheHierarchy`); the protocol itself is
unit- and property-tested standalone against the invariants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..common.stats import ScopedStats


class CoherenceState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class ReadOutcome:
    """Directory decision for a read by ``requester``."""

    requester_state: CoherenceState
    #: core that must supply the line (None → fetch from LLC/memory)
    supplier: Optional[int] = None
    #: True when the supplier held the line MODIFIED (dirty data must
    #: be merged into the shared level)
    supplier_was_dirty: bool = False
    #: cores downgraded M/E → S by this read
    downgraded: List[int] = field(default_factory=list)


@dataclass
class WriteOutcome:
    """Directory decision for a write by ``requester``."""

    #: cores whose copies must be invalidated
    invalidated: List[int] = field(default_factory=list)
    #: a core that held the line MODIFIED (its data must be merged
    #: before the write overwrites it)
    dirty_owner: Optional[int] = None
    #: the requester already held the line (S→M upgrade, no fetch)
    was_upgrade: bool = False


#: Shared outcomes for the no-transition hot paths (a hit in a state
#: the access doesn't change).  Consumers only read outcomes, so the
#: empty lists inside are never mutated — one allocation for the whole
#: process instead of one per cache access.
_SILENT_WRITE = WriteOutcome(was_upgrade=True)
_FRESH_WRITE = WriteOutcome()
_SILENT_READS = {state: ReadOutcome(requester_state=state)
                 for state in CoherenceState}


class MesiDirectory:
    """Directory MESI over ``num_cores`` private cache stacks."""

    def __init__(self, num_cores: int, stats: ScopedStats) -> None:
        self.num_cores = num_cores
        self.stats = stats
        # line → {core: state}; absent core ≡ INVALID
        self._lines: Dict[int, Dict[int, CoherenceState]] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def state_of(self, core: int, line: int) -> CoherenceState:
        return self._lines.get(line, {}).get(core, CoherenceState.INVALID)

    def holders(self, line: int) -> Set[int]:
        return set(self._lines.get(line, {}))

    def owner(self, line: int) -> Optional[int]:
        """The M or E holder, if any."""
        for core, state in self._lines.get(line, {}).items():
            if state in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE):
                return core
        return None

    # ------------------------------------------------------------------
    # protocol transitions
    # ------------------------------------------------------------------
    def on_read(self, requester: int, line: int) -> ReadOutcome:
        holders = self._lines.setdefault(line, {})
        current = holders.get(requester, CoherenceState.INVALID)
        if current is not CoherenceState.INVALID:
            # silent hit: no transition
            return _SILENT_READS[current]
        if not holders:
            holders[requester] = CoherenceState.EXCLUSIVE
            self.stats.inc("read.exclusive_grants")
            return ReadOutcome(requester_state=CoherenceState.EXCLUSIVE)
        outcome = ReadOutcome(requester_state=CoherenceState.SHARED)
        for core, state in list(holders.items()):
            if state is CoherenceState.MODIFIED:
                outcome.supplier = core
                outcome.supplier_was_dirty = True
                outcome.downgraded.append(core)
                holders[core] = CoherenceState.SHARED
                self.stats.inc("read.dirty_supplies")
            elif state is CoherenceState.EXCLUSIVE:
                outcome.supplier = core
                outcome.downgraded.append(core)
                holders[core] = CoherenceState.SHARED
                self.stats.inc("read.downgrades")
        holders[requester] = CoherenceState.SHARED
        return outcome

    def on_write(self, requester: int, line: int) -> WriteOutcome:
        holders = self._lines.setdefault(line, {})
        current = holders.get(requester, CoherenceState.INVALID)
        if current is CoherenceState.MODIFIED:
            return _SILENT_WRITE  # already exclusive-dirty: silent
        others = len(holders)
        if current is not CoherenceState.INVALID:
            others -= 1
        if not others:
            # nobody to invalidate: I/E/S(sole) → M without allocating
            holders[requester] = CoherenceState.MODIFIED
            if current is CoherenceState.INVALID:
                return _FRESH_WRITE
            if current is CoherenceState.SHARED:
                self.stats.inc("write.upgrades")
            return _SILENT_WRITE
        outcome = WriteOutcome(
            was_upgrade=current is not CoherenceState.INVALID)
        for core, state in list(holders.items()):
            if core == requester:
                continue
            if state is CoherenceState.MODIFIED:
                outcome.dirty_owner = core
            outcome.invalidated.append(core)
            del holders[core]
            self.stats.inc("write.invalidations")
        if current is CoherenceState.SHARED:
            self.stats.inc("write.upgrades")
        holders[requester] = CoherenceState.MODIFIED
        return outcome

    def on_evict(self, core: int, line: int) -> None:
        """A core's private copies of ``line`` are gone."""
        holders = self._lines.get(line)
        if holders and core in holders:
            del holders[core]
            if not holders:
                del self._lines[line]

    def drop_line(self, line: int) -> Set[int]:
        """Back-invalidation (LLC eviction): every copy dies; returns
        the cores that held it."""
        holders = self._lines.pop(line, {})
        return set(holders)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError on any MESI invariant violation."""
        for line, holders in self._lines.items():
            exclusive = [core for core, state in holders.items()
                         if state in (CoherenceState.MODIFIED,
                                      CoherenceState.EXCLUSIVE)]
            assert len(exclusive) <= 1, (
                f"line {line:#x}: multiple M/E owners {exclusive}")
            if exclusive:
                assert len(holders) == 1, (
                    f"line {line:#x}: M/E owner coexists with sharers "
                    f"{set(holders)}")
            for core, state in holders.items():
                assert state is not CoherenceState.INVALID, (
                    f"line {line:#x}: INVALID entry for core {core}")
