"""Cache line metadata and the set-associative storage array.

Every line carries the persistent/volatile (P/V) flag the paper adds to
the existing hierarchy (Fig. 5), the transaction id of the writer, and
a logical :class:`~repro.common.types.Version` payload used by the
functional data path and the crash-consistency checker.  Lines can be
*pinned* — the Kiln baseline pins uncommitted transaction lines in the
nonvolatile LLC so they cannot be evicted, which is the mechanism
behind the elevated LLC miss rate in the paper's Fig. 8.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..common.types import Version


class CacheLine:
    """Metadata of one resident cache line.

    ``__slots__`` rather than a dataclass: every cache lookup on a hit
    touches a line's fields, and sweeps over resident lines (flushes,
    recovery scans) touch all of them."""

    __slots__ = ("tag", "dirty", "persistent", "pinned", "tx_id",
                 "version", "last_use")

    def __init__(self, tag: int, dirty: bool = False,
                 persistent: bool = False, pinned: bool = False,
                 tx_id: Optional[int] = None,
                 version: Optional[Version] = None,
                 last_use: int = 0) -> None:
        self.tag = tag                   # full line address
        self.dirty = dirty
        self.persistent = persistent     # the paper's P/V flag
        self.pinned = pinned             # Kiln: uncommitted, not evictable
        self.tx_id = tx_id
        self.version = version
        self.last_use = last_use

    def __repr__(self) -> str:
        return (f"CacheLine(tag={self.tag:#x}, dirty={self.dirty}, "
                f"persistent={self.persistent}, pinned={self.pinned}, "
                f"tx_id={self.tx_id}, version={self.version})")


class EvictionImpossible(Exception):
    """Raised when every way in a set is pinned (Kiln overflow case)."""


class CacheArray:
    """Set-associative array with true-LRU replacement.

    Replacement ignores pinned lines; when a set is entirely pinned the
    insert raises :class:`EvictionImpossible` and the caller decides on
    a bypass policy.
    """

    __slots__ = ("num_sets", "assoc", "line_size", "_sets", "_use_clock")

    def __init__(self, num_sets: int, assoc: int, line_size: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self.line_size = line_size
        self._sets: List[Dict[int, CacheLine]] = [{} for _ in range(num_sets)]
        self._use_clock = 0

    def _set_index(self, line: int) -> int:
        return (line // self.line_size) % self.num_sets

    def _tick(self) -> int:
        self._use_clock += 1
        return self._use_clock

    def lookup(self, line: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line or None; updates LRU on a hit."""
        entry = self._sets[(line // self.line_size) % self.num_sets].get(line)
        if entry is not None and touch:
            self._use_clock += 1
            entry.last_use = self._use_clock
        return entry

    def contains(self, line: int) -> bool:
        return line in self._sets[self._set_index(line)]

    def insert(self, line: int, **attrs) -> Optional[CacheLine]:
        """Insert (or update) a line; returns the evicted victim if any.

        Keyword attrs (dirty/persistent/pinned/tx_id/version) are applied
        to the inserted line.
        """
        cache_set = self._sets[self._set_index(line)]
        existing = cache_set.get(line)
        if existing is not None:
            for key, value in attrs.items():
                setattr(existing, key, value)
            existing.last_use = self._tick()
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            victim = self._select_victim(cache_set)
            del cache_set[victim.tag]
        entry = CacheLine(tag=line, last_use=self._tick(), **attrs)
        cache_set[line] = entry
        return victim

    def fill(self, line: int, dirty: bool, persistent: bool, pinned: bool,
             tx_id: Optional[int],
             version: Optional[Version]) -> Optional[CacheLine]:
        """Positional insert of a line known to be absent (the caller
        just looked it up) — the hierarchy's fill path, minus the
        kwargs packing and existing-entry handling of :meth:`insert`.
        Returns the evicted victim if any."""
        cache_set = self._sets[(line // self.line_size) % self.num_sets]
        victim = None
        if len(cache_set) >= self.assoc:
            victim = self._select_victim(cache_set)
            del cache_set[victim.tag]
        self._use_clock += 1
        cache_set[line] = CacheLine(line, dirty, persistent, pinned,
                                    tx_id, version, self._use_clock)
        return victim

    def _select_victim(self, cache_set: Dict[int, CacheLine]) -> CacheLine:
        # manual argmin: runs on every fill into a full set, so no
        # candidate list / key-lambda allocations
        victim: Optional[CacheLine] = None
        victim_use = 0
        for entry in cache_set.values():
            if not entry.pinned and (victim is None
                                     or entry.last_use < victim_use):
                victim = entry
                victim_use = entry.last_use
        if victim is None:
            raise EvictionImpossible("all ways pinned")
        return victim

    def invalidate(self, line: int) -> Optional[CacheLine]:
        """Remove a line; returns it (with its dirty state) if present."""
        return self._sets[self._set_index(line)].pop(line, None)

    def iter_lines(self) -> Iterator[CacheLine]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def resident_count(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    def pinned_count(self) -> int:
        return sum(1 for entry in self.iter_lines() if entry.pinned)
