"""One cache level: a storage array plus latency and hit/miss stats."""

from __future__ import annotations

from typing import Optional

from ..common.config import CacheLevelConfig
from ..common.stats import ScopedStats
from .line import CacheArray, CacheLine


class CacheLevel:
    """Thin wrapper binding a :class:`CacheArray` to timing and stats."""

    def __init__(
        self,
        config: CacheLevelConfig,
        stats: ScopedStats,
        freq_ghz: float,
    ) -> None:
        self.name = config.name
        self.config = config
        self.stats = stats
        self.latency = config.latency_cycles(freq_ghz)
        self.array = CacheArray(config.num_sets, config.assoc, config.line_size)

    def access(self, line: int) -> Optional[CacheLine]:
        """Timed lookup: counts an access and a hit or miss."""
        self.stats.inc("access")
        entry = self.array.lookup(line)
        if entry is None:
            self.stats.inc("miss")
        else:
            self.stats.inc("hit")
        return entry

    def probe(self, line: int) -> Optional[CacheLine]:
        """Untimed lookup (no stats, no LRU update)."""
        return self.array.lookup(line, touch=False)

    def insert(self, line: int, **attrs) -> Optional[CacheLine]:
        return self.array.insert(line, **attrs)

    def invalidate(self, line: int) -> Optional[CacheLine]:
        return self.array.invalidate(line)

    @property
    def accesses(self) -> float:
        return self.stats.counter("access")

    @property
    def misses(self) -> float:
        return self.stats.counter("miss")

    def miss_rate(self) -> float:
        accesses = self.accesses
        return self.misses / accesses if accesses else 0.0
