"""One cache level: a storage array plus latency and hit/miss stats."""

from __future__ import annotations

from typing import Optional

from ..common.config import CacheLevelConfig
from ..common.stats import ScopedStats
from .line import CacheArray, CacheLine


class CacheLevel:
    """Thin wrapper binding a :class:`CacheArray` to timing and stats."""

    __slots__ = ("name", "config", "stats", "latency", "array",
                 "_inc", "_k_access", "_k_miss", "_k_hit",
                 "_sets", "_line_size", "_num_sets")

    def __init__(
        self,
        config: CacheLevelConfig,
        stats: ScopedStats,
        freq_ghz: float,
    ) -> None:
        self.name = config.name
        self.config = config
        self.stats = stats
        self.latency = config.latency_cycles(freq_ghz)
        self.array = CacheArray(config.num_sets, config.assoc, config.line_size)
        # every cache access records 2 counters; resolve the registry
        # keys once instead of formatting them per lookup
        self._inc = stats.base.inc
        self._k_access = stats.resolve("access")
        self._k_miss = stats.resolve("miss")
        self._k_hit = stats.resolve("hit")
        # access() is the hottest cache call: keep direct references to
        # the array internals so a timed lookup is one dict probe
        self._sets = self.array._sets
        self._line_size = config.line_size
        self._num_sets = config.num_sets

    def access(self, line: int) -> Optional[CacheLine]:
        """Timed lookup: counts an access and a hit or miss.

        Inlines :meth:`CacheArray.lookup` (same set index, same LRU
        touch) — this method runs a few times per simulated memory op.
        """
        inc = self._inc
        inc(self._k_access)
        entry = self._sets[(line // self._line_size) % self._num_sets].get(line)
        if entry is None:
            inc(self._k_miss)
            return None
        array = self.array
        array._use_clock += 1
        entry.last_use = array._use_clock
        inc(self._k_hit)
        return entry

    def probe(self, line: int) -> Optional[CacheLine]:
        """Untimed lookup (no stats, no LRU update)."""
        return self.array.lookup(line, touch=False)

    def insert(self, line: int, **attrs) -> Optional[CacheLine]:
        return self.array.insert(line, **attrs)

    def invalidate(self, line: int) -> Optional[CacheLine]:
        return self.array.invalidate(line)

    @property
    def accesses(self) -> float:
        return self.stats.counter("access")

    @property
    def misses(self) -> float:
        return self.stats.counter("miss")

    def miss_rate(self) -> float:
        accesses = self.accesses
        return self.misses / accesses if accesses else 0.0
