"""Cache hierarchy: set-associative arrays, levels, and the L1/L2/LLC stack."""

from .hierarchy import CacheHierarchy
from .level import CacheLevel
from .line import CacheArray, CacheLine, EvictionImpossible

__all__ = [
    "CacheArray",
    "CacheHierarchy",
    "CacheLevel",
    "CacheLine",
    "EvictionImpossible",
]
