"""The three-level cache hierarchy with the paper's scheme hooks.

Private L1 and L2 per core, shared inclusive LLC, write-back +
write-allocate everywhere, true LRU.  A lightweight directory at the
LLC keeps multicore sharing coherent (invalidate-on-write).

The point of the paper is that persistence schemes attach to this
hierarchy *differently*:

* **TXCACHE** sets :attr:`drop_persistent_evictions` (persistent dirty
  LLC victims are discarded, the NVM only ever receives TC-ordered
  data) and installs :attr:`llc_probe` so LLC misses on persistent
  lines consult the transaction cache for the newest version
  (paper §3, "Persistent Memory Accelerator Working Flow").
* **Kiln** pins uncommitted lines in the (nonvolatile) LLC via
  :meth:`pin_llc_line` / :meth:`unpin_llc_line`, flushes on commit with
  :meth:`flush_to_llc`, and blocks the hierarchy during commit with
  :meth:`block_until`.
* **SP** uses :meth:`writeback_line` for ``clwb`` semantics.
* **Optimal** uses none of the hooks.

All lookups are synchronous latency arithmetic; only accesses that
reach a memory controller become events.  Callbacks may therefore fire
synchronously (cache hit) or later (memory fill) — callers must accept
both.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..common.config import MachineConfig
from ..common.event import Simulator
from ..common.stats import Stats
from ..common.types import Version, is_persistent_addr, line_addr
from ..memory.system import MemorySystem
from ..obs.tracer import NULL_TRACER, NullTracer
from .level import CacheLevel
from .line import CacheLine, EvictionImpossible

#: ``llc_probe(line) -> (extra_latency, version)`` or None on probe miss.
LlcProbe = Callable[[int], Optional[Tuple[int, Optional[Version]]]]

LoadCallback = Callable[[int, Optional[Version]], None]
StoreCallback = Callable[[int], None]


class _MissWaiter:
    """Bookkeeping for one access waiting on a memory fill."""

    __slots__ = ("core_id", "start_cycle", "is_store", "persistent",
                 "tx_id", "store_version", "on_load", "on_store")

    def __init__(self, core_id, start_cycle, is_store, persistent,
                 tx_id, store_version, on_load, on_store):
        self.core_id = core_id
        self.start_cycle = start_cycle
        self.is_store = is_store
        self.persistent = persistent
        self.tx_id = tx_id
        self.store_version = store_version
        self.on_load = on_load
        self.on_store = on_store


class CacheHierarchy:
    """L1/L2 per core + shared LLC, with persistence-scheme hooks."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        stats: Stats,
        memory: MemorySystem,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.sim = sim
        self.config = config
        self.memory = memory
        self.tracer = tracer
        self.num_cores = config.num_cores
        freq = config.freq_ghz
        self.l1: List[CacheLevel] = [
            CacheLevel(config.l1, stats.scoped(f"l1.{i}"), freq)
            for i in range(self.num_cores)
        ]
        self.l2: List[CacheLevel] = [
            CacheLevel(config.l2, stats.scoped(f"l2.{i}"), freq)
            for i in range(self.num_cores)
        ]
        self.llc = CacheLevel(config.llc, stats.scoped("llc"), freq)
        self.stats = stats.scoped("hierarchy")
        # scheme hooks ---------------------------------------------------
        self.drop_persistent_evictions = False
        self.llc_probe: Optional[LlcProbe] = None
        #: Kiln: called with a tx_id when a dirty persistent line lands in
        #: the LLC; return True to pin it (uncommitted data must stay).
        self.llc_pin_predicate: Optional[Callable[[Optional[int]], bool]] = None
        self._blocked_until = 0
        # MESI directory over the private cache stacks
        from .coherence import MesiDirectory
        self.coherence = MesiDirectory(self.num_cores,
                                       stats.scoped("coherence"))
        # MSHR-style coalescing of outstanding memory fills
        self._pending: Dict[int, List[_MissWaiter]] = {}
        # newer TC data to merge over in-flight fills (line → version)
        self._probe_override: Dict[int, Optional[Version]] = {}
        # program-order architectural version per stored line (updated
        # synchronously at store issue; authoritative for clwb)
        self._arch_version: Dict[int, Optional[Version]] = {}
        # newest version already sent toward memory per line (clwb or
        # write-back) — lets clwb skip lines that are already durable
        self._sent_version: Dict[int, Optional[Version]] = {}

    # ------------------------------------------------------------------
    # public access path
    # ------------------------------------------------------------------
    def load(self, core_id: int, addr: int, on_complete: LoadCallback) -> None:
        """Load one line for ``core_id``; ``on_complete(latency, version)``."""
        line = line_addr(addr)
        start = self.sim.now
        latency = self.l1[core_id].latency
        entry = self.l1[core_id].access(line)
        if entry is not None:
            on_complete(latency, entry.version)
            return
        outcome = self.coherence.on_read(core_id, line)
        if outcome.supplier_was_dirty:
            # another core owns the line MODIFIED: snoop its data into
            # the shared level before this read proceeds
            self._snoop_dirty(outcome.supplier, line)
        latency += self.l2[core_id].latency
        entry = self.l2[core_id].access(line)
        if entry is not None:
            self._fill_l1(core_id, line, entry.version,
                          persistent=entry.persistent, tx_id=entry.tx_id)
            on_complete(latency, entry.version)
            return
        # the shared LLC honours commit blocking (Kiln)
        latency += self._block_wait() + self.llc.latency
        entry = self.llc.access(line)
        if entry is not None:
            version = entry.version
            self._fill_l2(core_id, line, version,
                          persistent=entry.persistent, tx_id=entry.tx_id)
            self._fill_l1(core_id, line, version,
                          persistent=entry.persistent, tx_id=entry.tx_id)
            if is_persistent_addr(line):
                # Fig. 10 metric: persistent loads served at/below the LLC
                self.stats.hist("persist_llc_load.latency", latency)
            on_complete(latency, version)
            return
        if is_persistent_addr(line):
            def complete_and_sample(lat: int, version: Optional[Version]) -> None:
                self.stats.hist("persist_llc_load.latency", lat)
                on_complete(lat, version)
            on_load_cb: LoadCallback = complete_and_sample
        else:
            on_load_cb = on_complete
        self._llc_miss(core_id, line, start, latency,
                       is_store=False, persistent=is_persistent_addr(line),
                       tx_id=None, store_version=None,
                       on_load=on_load_cb, on_store=None)

    def store(
        self,
        core_id: int,
        addr: int,
        version: Optional[Version],
        persistent: bool = False,
        tx_id: Optional[int] = None,
        on_complete: Optional[StoreCallback] = None,
    ) -> None:
        """Store one line (write-allocate, write-back).

        ``on_complete(latency)`` fires when the line is written in L1 —
        after a fill if the store missed.  The architectural version is
        installed immediately so program order is preserved for any
        probe that observes the hierarchy."""
        line = line_addr(addr)
        start = self.sim.now
        self._arch_version[line] = version
        # MESI: take exclusive ownership up front (covers the miss path
        # too — the fill below installs into an already-owned line)
        self._invalidate_other_sharers(core_id, line)
        latency = self.l1[core_id].latency
        entry = self.l1[core_id].access(line)
        if entry is not None:
            entry.dirty = True
            entry.version = version
            entry.persistent = persistent or entry.persistent
            entry.tx_id = tx_id
            if on_complete is not None:
                on_complete(latency)
            return
        latency += self.l2[core_id].latency
        entry = self.l2[core_id].access(line)
        if entry is not None:
            self._fill_l1(core_id, line, version, dirty=True,
                          persistent=persistent, tx_id=tx_id)
            # L2 copy becomes stale; drop it so write-back comes from L1.
            self.l2[core_id].invalidate(line)
            self._fill_l2(core_id, line, version, dirty=False,
                          persistent=persistent, tx_id=tx_id)
            if on_complete is not None:
                on_complete(latency)
            return
        latency += self._block_wait() + self.llc.latency
        entry = self.llc.access(line)
        if entry is not None:
            self._fill_l2(core_id, line, entry.version,
                          persistent=persistent, tx_id=tx_id)
            self._fill_l1(core_id, line, version, dirty=True,
                          persistent=persistent, tx_id=tx_id)
            if on_complete is not None:
                on_complete(latency)
            return
        self._llc_miss(core_id, line, start, latency,
                       is_store=True, persistent=persistent, tx_id=tx_id,
                       store_version=version,
                       on_load=None, on_store=on_complete)

    # ------------------------------------------------------------------
    # LLC miss handling (memory fill + TC probe)
    # ------------------------------------------------------------------
    def _llc_miss(self, core_id, line, start, latency, *, is_store,
                  persistent, tx_id, store_version, on_load, on_store) -> None:
        if self.tracer.enabled:
            self.tracer.instant("cache", "llc", "miss", self.sim.now,
                                line=line, core=core_id,
                                store=int(is_store))
        if self.llc_probe is not None and is_persistent_addr(line):
            # Paper §3: the LLC issues the miss toward *both* the NVM and
            # the transaction cache.  The TC buffers the written words of
            # the line, so its (newer) data is merged over the NVM line
            # when the memory fill returns — the TC supplies freshness,
            # not a faster fill.
            probed = self.llc_probe(line)
            if probed is not None:
                self.stats.inc("llc_probe.hit")
                _probe_latency, version = probed
                self._probe_override[line] = version
            else:
                self.stats.inc("llc_probe.miss")
        waiter = _MissWaiter(core_id, start, is_store, persistent, tx_id,
                             store_version, on_load, on_store)
        waiters = self._pending.get(line)
        if waiters is not None:
            waiters.append(waiter)
            self.stats.inc("mshr.coalesced")
            return
        self._pending[line] = [waiter]
        # the miss leaves the chip only after the L1/L2/LLC lookups
        # (and any commit-block wait) have elapsed
        self.sim.schedule(
            latency, self.memory.read, line,
            lambda version, cycle: self._fill(line, version),
            f"fill.core{core_id}")

    def _fill(self, line: int, version: Optional[Version]) -> None:
        now = self.sim.now
        if line in self._probe_override:
            # merge the transaction cache's newer data over the NVM line
            version = self._probe_override.pop(line)
        waiters = self._pending.pop(line, [])
        current = version  # newest data as waiters apply in order
        for waiter in waiters:
            self._install_all(waiter.core_id, line, current,
                              persistent=waiter.persistent, tx_id=waiter.tx_id)
            latency = now - waiter.start_cycle
            if waiter.is_store:
                self._apply_store(waiter.core_id, line, waiter.store_version,
                                  waiter.persistent, waiter.tx_id)
                current = waiter.store_version
                if waiter.on_store is not None:
                    waiter.on_store(latency)
            else:
                if waiter.on_load is not None:
                    waiter.on_load(latency, current)

    def _apply_store(self, core_id, line, version, persistent, tx_id) -> None:
        entry = self.l1[core_id].probe(line)
        if entry is None:  # pathological: L1 victimized by a same-set fill
            self._fill_l1(core_id, line, version, dirty=True,
                          persistent=persistent, tx_id=tx_id)
            return
        entry.dirty = True
        entry.version = version
        entry.persistent = persistent or entry.persistent
        entry.tx_id = tx_id

    # ------------------------------------------------------------------
    # fills and evictions (inclusive hierarchy)
    # ------------------------------------------------------------------
    def _install_all(self, core_id, line, version, *, persistent, tx_id) -> None:
        self._insert_llc(line, version, dirty=False,
                         persistent=persistent, tx_id=tx_id)
        self._fill_l2(core_id, line, version, persistent=persistent, tx_id=tx_id)
        self._fill_l1(core_id, line, version, persistent=persistent, tx_id=tx_id)

    def _fill_private(self, level: CacheLevel, core_id, line, version,
                      dirty, persistent, tx_id) -> Optional[CacheLine]:
        """Install a line into a private level without ever downgrading
        a resident copy: a fill must not clear the dirty bit or clobber
        newer store data already applied by an earlier MSHR waiter."""
        existing = level.array.lookup(line)
        if existing is not None:
            existing.persistent = existing.persistent or persistent
            if dirty:
                existing.dirty = True
                existing.version = version
                existing.tx_id = tx_id
            return None
        return level.array.fill(line, dirty, persistent, False,
                                tx_id, version)

    def _fill_l1(self, core_id, line, version, dirty=False,
                 persistent=False, tx_id=None) -> None:
        victim = self._fill_private(self.l1[core_id], core_id, line,
                                    version, dirty, persistent, tx_id)
        if victim is not None and victim.dirty:
            self._fill_l2(core_id, victim.tag, victim.version, dirty=True,
                          persistent=victim.persistent, tx_id=victim.tx_id)

    def _fill_l2(self, core_id, line, version, dirty=False,
                 persistent=False, tx_id=None) -> None:
        victim = self._fill_private(self.l2[core_id], core_id, line,
                                    version, dirty, persistent, tx_id)
        if victim is not None and victim.dirty:
            self._insert_llc(victim.tag, victim.version, dirty=True,
                             persistent=victim.persistent, tx_id=victim.tx_id)

    def _insert_llc(self, line, version, dirty=False,
                    persistent=False, tx_id=None, pinned=False) -> None:
        if (not pinned and dirty and persistent
                and self.llc_pin_predicate is not None
                and self.llc_pin_predicate(tx_id)):
            pinned = True
        existing = self.llc.probe(line)
        if existing is not None:
            if dirty:
                existing.version = version
                existing.dirty = True
            elif not existing.dirty:
                # never let a clean (possibly stale) fill clobber dirty data
                existing.version = version
            existing.persistent = existing.persistent or persistent
            existing.tx_id = tx_id if tx_id is not None else existing.tx_id
            existing.pinned = existing.pinned or pinned
            return
        try:
            victim = self.llc.array.fill(line, dirty, persistent, pinned,
                                         tx_id, version)
        except EvictionImpossible:
            # Kiln pathology: the whole set is pinned.  Bypass the LLC.
            self.stats.inc("llc.bypass")
            if dirty:
                self.memory.write(line, version, source="llc.bypass")
            return
        if victim is not None:
            self._evict_from_llc(victim)

    def _evict_from_llc(self, victim: CacheLine) -> None:
        """Inclusive back-invalidation + write-back (or drop) of a victim."""
        line = victim.tag
        newest = victim.version
        dirty = victim.dirty
        for core_id in self.coherence.drop_line(line):
            upper = self.l1[core_id].invalidate(line)
            if upper is not None and upper.dirty:
                newest, dirty = upper.version, True
                victim.persistent = victim.persistent or upper.persistent
            upper2 = self.l2[core_id].invalidate(line)
            if upper2 is not None and upper2.dirty:
                if upper is None or not upper.dirty:
                    newest = upper2.version
                dirty = True
                victim.persistent = victim.persistent or upper2.persistent
        if not dirty:
            self.stats.inc("llc.clean_evictions")
            return
        if victim.persistent and self.drop_persistent_evictions:
            # Paper §3: persistent LLC victims are discarded; the NVM only
            # ever receives the consistent data issued by the TC.
            self.stats.inc("llc.dropped_evictions")
            if self.tracer.enabled:
                self.tracer.instant("cache", "llc", "eviction.dropped",
                                    self.sim.now, line=line)
            return
        self.stats.inc("llc.writebacks")
        if self.tracer.enabled:
            self.tracer.instant("cache", "llc", "writeback",
                                self.sim.now, line=line)
        self._sent_version[line] = newest
        self.memory.write(line, newest, source="llc.writeback")

    # ------------------------------------------------------------------
    # coherence (MESI directory consequences on the data path)
    # ------------------------------------------------------------------
    def _snoop_dirty(self, owner: int, line: int) -> None:
        """Pull a remote MODIFIED line's data into the shared LLC; the
        owner's copies stay resident but clean (M → S)."""
        for level in (self.l1[owner], self.l2[owner]):
            remote = level.probe(line)
            if remote is not None and remote.dirty:
                remote.dirty = False
                self._insert_llc(line, remote.version, dirty=True,
                                 persistent=remote.persistent,
                                 tx_id=remote.tx_id)
                self.stats.inc("coherence.snoops")
                return
        # the dirty copy already drained into the LLC via eviction

    def _invalidate_other_sharers(self, core_id: int, line: int) -> None:
        """Write by ``core_id``: take exclusive ownership, invalidating
        every other holder (dirty remote data merges into the LLC)."""
        outcome = self.coherence.on_write(core_id, line)
        for other in outcome.invalidated:
            for level in (self.l1[other], self.l2[other]):
                dropped = level.invalidate(line)
                if dropped is not None and dropped.dirty:
                    self._insert_llc(line, dropped.version, dirty=True,
                                     persistent=dropped.persistent,
                                     tx_id=dropped.tx_id)
            self.stats.inc("coherence.invalidations")

    # ------------------------------------------------------------------
    # scheme hooks
    # ------------------------------------------------------------------
    def _block_wait(self) -> int:
        wait = max(0, self._blocked_until - self.sim.now)
        if wait:
            self.stats.inc("blocked_cycles", wait)
        return wait

    def block_until(self, cycle: int) -> None:
        """Kiln: stall all subsequent hierarchy accesses until ``cycle``."""
        if self.tracer.enabled and cycle > self.sim.now:
            self.tracer.complete("cache", "llc", "blocked", self.sim.now,
                                 cycle - self.sim.now)
        self._blocked_until = max(self._blocked_until, cycle)

    @property
    def blocked_until(self) -> int:
        return self._blocked_until

    def newest_version(self, core_id: int, line: int) -> Optional[Version]:
        """Architecturally newest version, searching L1→L2→LLC→memory."""
        line = line_addr(line)
        for level in (self.l1[core_id], self.l2[core_id], self.llc):
            entry = level.probe(line)
            if entry is not None:
                return entry.version
        return self.memory.peek(line)

    def writeback_line(
        self,
        core_id: int,
        addr: int,
        on_complete: Callable[[int], None],
    ) -> None:
        """``clwb`` semantics: force the architecturally newest version
        of the line back to memory (keeping it cached, now clean).

        ``on_complete(cycle)`` fires when the memory write finishes —
        this is what an ``sfence``/``pcommit`` waits on.  The version
        comes from the program-order store record, not the cache
        arrays, so a clwb racing a still-outstanding store-miss fill
        (or a line already evicted with its write-back still queued)
        still makes exactly the right data durable.  If the line was
        never stored to, the callback fires after the L1 latency."""
        line = line_addr(addr)
        newest = self._arch_version.get(line)
        for level in (self.l1[core_id], self.l2[core_id], self.llc):
            entry = level.probe(line)
            if entry is not None:
                entry.dirty = False
                # a clean copy must agree with what was made durable:
                # refresh stale lower-level copies, or a silent clean
                # eviction of the L1 copy would resurrect old data
                if newest is not None:
                    entry.version = newest
        if newest is None or (is_persistent_addr(line)
                              and self.memory.durable_now(line) == newest):
            # never stored, or the newest version is already physically
            # durable (e.g. an earlier clwb or a completed write-back)
            self.sim.schedule(self.l1[core_id].latency,
                              on_complete, self.sim.now)
            return
        self.stats.inc("clwb.writebacks")
        if self.tracer.enabled:
            self.tracer.instant("cache", "llc", "clwb.writeback",
                                self.sim.now, line=line, core=core_id)
        self._sent_version[line] = newest
        self.memory.write(line, newest,
                          on_complete=lambda req, cycle: on_complete(cycle),
                          source="clwb")

    def flush_to_llc(self, core_id: int, addr: int, *, pin: bool = False) -> int:
        """Kiln commit flush: push the line's newest copy from L1/L2
        into the (nonvolatile) LLC.  Returns the charged latency."""
        line = line_addr(addr)
        newest: Optional[Version] = None
        dirty = False
        tx_id = None
        for level in (self.l1[core_id], self.l2[core_id]):
            entry = level.probe(line)
            if entry is not None and entry.dirty:
                if not dirty:
                    newest = entry.version
                    tx_id = entry.tx_id
                dirty = True
                entry.dirty = False
        if not dirty:
            return self.l1[core_id].latency
        for level in (self.l1[core_id], self.l2[core_id]):
            entry = level.probe(line)
            if entry is not None:
                # same rule as clwb: copies left cached-and-clean must
                # carry the version that was just pushed to the LLC
                entry.version = newest
                entry.tx_id = tx_id
        self._insert_llc(line, newest, dirty=True, persistent=True,
                         tx_id=tx_id, pinned=pin)
        self.stats.inc("kiln.commit_flushes")
        return self.llc.latency

    def pin_llc_line(self, addr: int, version: Optional[Version] = None,
                     tx_id: Optional[int] = None) -> None:
        """Kiln: install/pin an uncommitted line in the NV-LLC."""
        line = line_addr(addr)
        entry = self.llc.probe(line)
        if entry is not None:
            entry.pinned = True
            if version is not None:
                entry.version = version
                entry.dirty = True
            entry.persistent = True
            entry.tx_id = tx_id if tx_id is not None else entry.tx_id
            return
        self._insert_llc(line, version, dirty=version is not None,
                         persistent=True, tx_id=tx_id, pinned=True)

    def unpin_llc_line(self, addr: int) -> None:
        entry = self.llc.probe(line_addr(addr))
        if entry is not None:
            entry.pinned = False

    def invalidate_everywhere(self, addr: int) -> None:
        """Drop every cached copy of a line (recovery helper)."""
        line = line_addr(addr)
        for core_id in range(self.num_cores):
            self.l1[core_id].invalidate(line)
            self.l2[core_id].invalidate(line)
        self.llc.invalidate(line)
        self.coherence.drop_line(line)
