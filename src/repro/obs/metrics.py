"""Dependency-free Prometheus text exposition for :class:`Stats`.

:func:`stats_to_prometheus` renders a registry as exposition-format
0.0.4 text — the ``/metrics`` payload served by `repro.serve` nodes
and the cluster router.  Counters become ``<ns>_<name>_total`` counter
families; histograms (power-of-two buckets, see
:class:`~repro.common.stats.Histogram`) become ``_bucket{le="2^i"}``
cumulative series plus ``_sum``/``_count`` drawn from the paired
sample summary; caller-supplied gauges cover point-in-time readings
(queue depth, in-flight, ready replicas) that live outside the
monotone registry.

:func:`parse_prometheus` is the strict inverse used by the round-trip
tests and the ``metrics-smoke`` CI job: it accepts exactly the subset
of the format this module emits any scraper must parse — and raises
``ValueError`` with a line number on anything malformed, so it doubles
as an exposition-syntax validator.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..common.stats import Stats

#: content type a conforming scraper expects for this payload
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted Stats name onto a legal Prometheus metric name:
    invalid characters become ``_`` and a leading digit is guarded."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _render_labels(labels: Mapping[str, str],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(name, str(labels[name])) for name in sorted(labels)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join('%s="%s"' % (name, _escape_label_value(value))
                    for name, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def stats_to_prometheus(stats: Stats, namespace: str = "repro",
                        labels: Optional[Mapping[str, str]] = None,
                        gauges: Optional[Mapping[str, float]] = None) -> str:
    """Render a registry as Prometheus text exposition format 0.0.4.

    Args:
        stats: source registry; its counters become counter families
            and its histograms become histogram families.
        namespace: prefix for every family name.
        labels: shared labels stamped on every sample (e.g.
            ``{"node": "node0"}``).
        gauges: name → current value, rendered as gauge families
            (sanitized and namespaced like everything else).
    """
    labels = labels or {}
    lines: List[str] = []

    def family(name: str, kind: str, help_text: str) -> str:
        lines.append("# HELP %s %s" % (name, help_text))
        lines.append("# TYPE %s %s" % (name, kind))
        return name

    hist_names = set(stats.histograms())
    for name, value in stats.counters().items():
        if name in hist_names:
            # the .count shadow of a histogram is exported by the
            # histogram family itself
            continue
        metric = family("%s_%s_total" % (namespace,
                                         sanitize_metric_name(name)),
                        "counter", "Stats counter %s" % name)
        lines.append("%s%s %s" % (metric, _render_labels(labels),
                                  _format_value(value)))

    for name, gauge_value in sorted((gauges or {}).items()):
        metric = family("%s_%s" % (namespace, sanitize_metric_name(name)),
                        "gauge", "Gauge %s" % name)
        lines.append("%s%s %s" % (metric, _render_labels(labels),
                                  _format_value(gauge_value)))

    for name, histogram in stats.histograms().items():
        metric = family("%s_%s" % (namespace, sanitize_metric_name(name)),
                        "histogram", "Stats histogram %s" % name)
        buckets = histogram.buckets()
        cumulative = 0
        for bucket in sorted(buckets):
            cumulative += buckets[bucket]
            upper = float(2 ** (bucket + 1))
            lines.append("%s_bucket%s %s" % (
                metric, _render_labels(labels, ("le", _format_value(upper))),
                _format_value(cumulative)))
        lines.append("%s_bucket%s %s" % (
            metric, _render_labels(labels, ("le", "+Inf")),
            _format_value(histogram.count)))
        summary = stats.summary(name)
        lines.append("%s_sum%s %s" % (metric, _render_labels(labels),
                                      _format_value(summary.total)))
        lines.append("%s_count%s %s" % (metric, _render_labels(labels),
                                        _format_value(histogram.count)))

    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------
# strict parser / validator

_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*\Z")

_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)='
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?P<sep>,|\Z)')

_KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _unescape_label_value(value: str, lineno: int) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value):
                raise ValueError("line %d: dangling escape in label "
                                 "value" % lineno)
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                raise ValueError("line %d: bad escape '\\%s' in label "
                                 "value" % (lineno, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_value(text: str, lineno: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ValueError("line %d: unparsable sample value %r"
                         % (lineno, text))


def _base_family(name: str, families: Dict[str, Dict[str, Any]]) -> str:
    """Resolve a sample name to its declared family: histogram/summary
    samples arrive as ``<family>_bucket``/``_sum``/``_count``."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base in families \
                    and families[base]["type"] in ("histogram", "summary"):
                return base
    return name


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse (and strictly validate) exposition-format 0.0.4 text.

    Returns family name → ``{"type", "help", "samples"}`` where
    ``samples`` is a list of ``(metric_name, labels_dict, value)``.
    Raises ``ValueError`` (with the offending line number) on syntax
    errors, samples without a preceding ``# TYPE``, duplicate or late
    TYPE lines, non-monotonic histogram buckets, or a missing/`+Inf`
    bucket that disagrees with ``_count``.
    """
    families: Dict[str, Dict[str, Any]] = {}
    sampled: set = set()

    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError("line %d: malformed comment line %r"
                                 % (lineno, line))
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ValueError("line %d: invalid metric name %r"
                                 % (lineno, name))
            entry = families.setdefault(
                name, {"type": None, "help": None, "samples": []})
            if parts[1] == "HELP":
                if entry["help"] is not None:
                    raise ValueError("line %d: duplicate HELP for %s"
                                     % (lineno, name))
                entry["help"] = parts[3] if len(parts) > 3 else ""
            else:
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _KNOWN_TYPES:
                    raise ValueError("line %d: unknown TYPE %r for %s"
                                     % (lineno, kind, name))
                if entry["type"] is not None:
                    raise ValueError("line %d: duplicate TYPE for %s"
                                     % (lineno, name))
                if name in sampled:
                    raise ValueError("line %d: TYPE for %s after its "
                                     "samples" % (lineno, name))
                entry["type"] = kind
            continue

        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError("line %d: unparsable sample line %r"
                             % (lineno, line))
        name = match.group("name")
        labels: Dict[str, str] = {}
        label_body = match.group("labels")
        if label_body is not None:
            pos = 0
            while pos < len(label_body):
                pair = _LABEL_PAIR_RE.match(label_body, pos)
                if not pair:
                    raise ValueError("line %d: malformed labels %r"
                                     % (lineno, label_body))
                labels[pair.group("name")] = _unescape_label_value(
                    pair.group("value"), lineno)
                pos = pair.end()
        value = _parse_value(match.group("value"), lineno)

        base = _base_family(name, families)
        if base not in families or families[base]["type"] is None:
            raise ValueError("line %d: sample %s has no preceding "
                             "# TYPE declaration" % (lineno, name))
        entry = families[base]
        if entry["type"] == "counter" and not name.endswith("_total"):
            raise ValueError("line %d: counter sample %s must end in "
                             "_total" % (lineno, name))
        sampled.add(base)
        entry["samples"].append((name, labels, value))

    for name, entry in families.items():
        if entry["type"] is None:
            raise ValueError("family %s has HELP but no TYPE" % name)
        if entry["type"] == "histogram":
            _check_histogram(name, entry["samples"])
    return families


def _check_histogram(name: str,
                     samples: List[Tuple[str, Dict[str, str], float]]) -> None:
    """Cumulative-bucket sanity per label set (ignoring ``le``)."""
    series: Dict[Tuple[Tuple[str, str], ...], Dict[str, Any]] = {}
    for metric, labels, value in samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        slot = series.setdefault(key, {"buckets": [], "count": None})
        if metric == name + "_bucket":
            if "le" not in labels:
                raise ValueError("histogram %s has a bucket without an "
                                 "le label" % name)
            le = (math.inf if labels["le"] == "+Inf"
                  else float(labels["le"]))
            slot["buckets"].append((le, value))
        elif metric == name + "_count":
            slot["count"] = value
    for key, slot in series.items():
        buckets = slot["buckets"]
        if not buckets:
            raise ValueError("histogram %s%r has no buckets" % (name, key))
        previous = -math.inf
        cumulative = -1.0
        for le, value in buckets:
            if le <= previous:
                raise ValueError("histogram %s has non-increasing le "
                                 "bounds" % name)
            if value < cumulative:
                raise ValueError("histogram %s has non-monotonic "
                                 "cumulative buckets" % name)
            previous, cumulative = le, value
        if buckets[-1][0] != math.inf:
            raise ValueError("histogram %s is missing its +Inf bucket"
                             % name)
        if slot["count"] is not None \
                and buckets[-1][1] != slot["count"]:
            raise ValueError("histogram %s +Inf bucket %s != _count %s"
                             % (name, buckets[-1][1], slot["count"]))
