"""Observability layer: cycle-domain tracing, epoch sampling, and
stall attribution for the whole simulator.

Three pieces, all off by default:

* :class:`~repro.obs.tracer.Tracer` — a bounded-ring structured event
  recorder that exports Chrome trace-event JSON (open in
  https://ui.perfetto.dev or ``chrome://tracing``);
* :class:`~repro.obs.sampler.EpochSampler` — snapshots registered
  occupancy/queue-depth probes every K cycles into counter tracks;
* :class:`~repro.obs.stalls.StallReport` — turns the core's per-source
  stall counters into a per-core "cycles lost to X" table.

:class:`Observability` bundles a tracer and sampling policy into the
single optional object that :class:`repro.sim.system.System` and
:func:`repro.sim.runner.run_experiment` accept.  It is deliberately
*not* part of :class:`~repro.common.config.MachineConfig`: machine
config feeds ``config_fingerprint`` and therefore the parallel
engine's cache keys, and watching a run must never change what the
run computes or where its results are cached.

See ``docs/observability.md`` for the event taxonomy and usage.
"""

from __future__ import annotations

from typing import Optional

from ..common.event import Simulator
from .jsonlog import NULL_LOG, JsonLogger, NullLogger, get_logger
from .metrics import (PROMETHEUS_CONTENT_TYPE, parse_prometheus,
                      sanitize_metric_name, stats_to_prometheus)
from .sampler import EpochSampler
from .schema import validate_chrome_trace
from .spans import (NULL_SPANS, NullSpanRecorder, SpanRecorder,
                    merge_chrome_traces)
from .stalls import PERSISTENCE_KINDS, STALL_KINDS, StallReport
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Observability", "Tracer", "NullTracer", "NULL_TRACER",
    "EpochSampler", "StallReport", "STALL_KINDS", "PERSISTENCE_KINDS",
    "validate_chrome_trace",
    "SpanRecorder", "NullSpanRecorder", "NULL_SPANS",
    "merge_chrome_traces",
    "JsonLogger", "NullLogger", "NULL_LOG", "get_logger",
    "stats_to_prometheus", "parse_prometheus", "sanitize_metric_name",
    "PROMETHEUS_CONTENT_TYPE",
]


class Observability:
    """One run's observability bundle: a tracer plus sampling policy.

    Args:
        epoch: sample registered probes every this many cycles
            (0 = no time-series sampling).
        ring_capacity: tracer ring size (newest events kept).
        sample_every: per-name event decimation (1 = keep all).
        tracer: pass an existing tracer instead of building one
            (tests share a tracer across systems this way).
    """

    def __init__(self, epoch: int = 0, ring_capacity: int = 1 << 18,
                 sample_every: int = 1,
                 tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer(
            capacity=ring_capacity, sample_every=sample_every)
        self.epoch = epoch
        self.sampler: Optional[EpochSampler] = (
            EpochSampler(self.tracer, epoch) if epoch > 0 else None)

    def attach(self, sim: Simulator) -> None:
        """Drive the epoch sampler from the kernel's advance hook."""
        if self.sampler is not None:
            sim.set_advance_hook(self.sampler.on_advance)

    def write(self, path: str) -> None:
        """Export the captured trace as Chrome trace-event JSON."""
        self.tracer.write(path)
