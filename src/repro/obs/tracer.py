"""Cycle-stamped structured event tracer with Chrome trace-event export.

The tracer records three kinds of events, mirroring the Chrome
trace-event (Perfetto / ``chrome://tracing``) vocabulary:

* **instant** (``ph: "i"``) — something happened at one cycle
  (an LLC miss, a drain-mode transition, a dropped ack);
* **complete** (``ph: "X"``) — something spanned a cycle range
  (a core stall with its attributed reason, a Kiln commit flush,
  a transaction from TX_BEGIN to TX_END);
* **counter** (``ph: "C"``) — a numeric time series sampled at a
  cycle (TC occupancy, memory queue depths).

Events carry a ``(pid, tid)`` pair of *string labels* — one "process"
per component (``core``, ``tc``, ``mem``, ``cache``, ``scheme``) and
one "thread" per sub-unit (``core0``, ``nvm.bank3``).  Labels are
mapped to the integer ids the Chrome format requires at export time,
with ``process_name`` / ``thread_name`` metadata events so Perfetto
shows readable tracks.  Timestamps are simulated cycles, written
verbatim into ``ts`` (Perfetto displays them as µs; the exported JSON
says so in ``otherData.clock``).

Two mechanisms keep million-op traces tractable:

* a **bounded ring buffer** (``collections.deque(maxlen=capacity)``)
  that keeps the *newest* events and counts what it evicted, and
* optional **deterministic decimation**: with ``sample_every=N`` only
  every N-th event *per event name* is recorded.  The decimation
  counter is per-name and purely arithmetic — no RNG, no wall clock —
  so two identical runs emit byte-identical traces.

Zero overhead when disabled: call sites guard every emission with
``if tracer.enabled:`` and the shared :data:`NULL_TRACER` singleton
answers ``enabled = False``, so a disabled run executes one attribute
load and a branch per would-be event and allocates nothing.  Disabled
runs are bit-identical to a build without the tracer (asserted by
``tests/test_observability.py`` against the golden figures).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

# Event record layout inside the ring: (ph, pid, tid, name, ts, dur, args)
_Record = Tuple[str, str, str, str, int, int, Optional[Tuple[Tuple[str, Any], ...]]]


class NullTracer:
    """Disabled tracer: ``enabled`` is False and every emit is a no-op.

    Call sites are expected to check ``tracer.enabled`` before calling
    an emit method (that keeps the hot path to one branch), but the
    methods are still safe to call directly.
    """

    enabled = False

    def instant(self, pid: str, tid: str, name: str, ts: int, **args: Any) -> None:
        pass

    def complete(self, pid: str, tid: str, name: str, ts: int, dur: int,
                 **args: Any) -> None:
        pass

    def counter(self, pid: str, tid: str, name: str, ts: int, **values: Any) -> None:
        pass


#: shared disabled tracer — the default for every component parameter,
#: so constructing a system without observability allocates nothing.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Recording tracer backed by a bounded ring buffer.

    Args:
        capacity: maximum events retained; older events are evicted
            first (the ring keeps the *newest* — the end of a run is
            usually what a post-mortem needs).
        sample_every: record only every N-th event per event name
            (1 = record everything).  Counter events bypass decimation:
            a decimated time series would alias, and the epoch sampler
            already bounds their rate.
    """

    enabled = True

    def __init__(self, capacity: int = 1 << 18, sample_every: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.capacity = capacity
        self.sample_every = sample_every
        self._ring: Deque[_Record] = deque(maxlen=capacity)
        self._seen: Dict[str, int] = {}
        #: events accepted into the ring (post-decimation), total
        self.emitted = 0
        #: events skipped by decimation, total
        self.decimated = 0

    # -- emission ------------------------------------------------------
    def _admit(self, name: str) -> bool:
        """Deterministic per-name decimation: admit every N-th event."""
        if self.sample_every == 1:
            return True
        seen = self._seen.get(name, 0)
        self._seen[name] = seen + 1
        if seen % self.sample_every:
            self.decimated += 1
            return False
        return True

    def instant(self, pid: str, tid: str, name: str, ts: int, **args: Any) -> None:
        if self._admit(name):
            self.emitted += 1
            self._ring.append(
                ("i", pid, tid, name, ts, 0,
                 tuple(sorted(args.items())) if args else None))

    def complete(self, pid: str, tid: str, name: str, ts: int, dur: int,
                 **args: Any) -> None:
        if self._admit(name):
            self.emitted += 1
            self._ring.append(
                ("X", pid, tid, name, ts, dur,
                 tuple(sorted(args.items())) if args else None))

    def counter(self, pid: str, tid: str, name: str, ts: int, **values: Any) -> None:
        self.emitted += 1
        self._ring.append(
            ("C", pid, tid, name, ts, 0, tuple(sorted(values.items()))))

    # -- inspection ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring by newer ones."""
        return self.emitted - len(self._ring)

    def events(self) -> List[Dict[str, Any]]:
        """Retained events as plain dicts (oldest first), string labels."""
        out = []
        for ph, pid, tid, name, ts, dur, args in self._ring:
            event: Dict[str, Any] = {
                "ph": ph, "pid": pid, "tid": tid, "name": name, "ts": ts}
            if ph == "X":
                event["dur"] = dur
            if args is not None:
                event["args"] = dict(args)
            out.append(event)
        return out

    def event_counts(self) -> Dict[str, int]:
        """Retained event count per name, sorted by name."""
        counts: Dict[str, int] = {}
        for _ph, _pid, _tid, name, _ts, _dur, _args in self._ring:
            counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items()))

    # -- export --------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """The retained events as a Chrome trace-event JSON object.

        String pid/tid labels are assigned integer ids in first-seen
        order over the retained events (deterministic), and matching
        ``process_name`` / ``thread_name`` metadata events are
        prepended so Perfetto renders labelled tracks.
        """
        pid_ids: Dict[str, int] = {}
        tid_ids: Dict[Tuple[str, str], int] = {}
        body: List[Dict[str, Any]] = []
        for ph, pid, tid, name, ts, dur, args in self._ring:
            pid_id = pid_ids.setdefault(pid, len(pid_ids) + 1)
            tid_id = tid_ids.setdefault((pid, tid), len(tid_ids) + 1)
            event: Dict[str, Any] = {
                "name": name, "ph": ph, "ts": ts, "pid": pid_id, "tid": tid_id}
            if ph == "X":
                event["dur"] = dur
            elif ph == "i":
                event["s"] = "t"  # instant scope: thread
            if args is not None:
                event["args"] = dict(args)
            body.append(event)
        meta: List[Dict[str, Any]] = []
        for label, pid_id in pid_ids.items():
            meta.append({"name": "process_name", "ph": "M", "ts": 0,
                         "pid": pid_id, "tid": 0,
                         "args": {"name": label}})
        for (pid, label), tid_id in tid_ids.items():
            meta.append({"name": "thread_name", "ph": "M", "ts": 0,
                         "pid": pid_ids[pid], "tid": tid_id,
                         "args": {"name": label}})
        return {
            "traceEvents": meta + body,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "cycles",
                "emitted": self.emitted,
                "dropped": self.dropped,
                "decimated": self.decimated,
            },
        }

    def write(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path`` (deterministic bytes:
        insertion-ordered events, sorted args, compact separators)."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, separators=(",", ":"))
            fh.write("\n")
