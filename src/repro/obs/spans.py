"""Wall-clock span tracing for the serving tier.

The cycle-domain :class:`~repro.obs.tracer.Tracer` answers "where did
the simulated cycles go"; this module answers "where did the *wall
clock* go" for one request travelling router → node → scheduler →
pool → cache.  A :class:`SpanRecorder` wraps the same bounded-ring,
byte-stable tracer, but stamps events in microseconds since the
recorder was created, so the serving stack's spans export as ordinary
Chrome trace events — one Perfetto track per process (``router``,
``serve:node0``) and one thread per subsystem (``scheduler``,
``pool``, ``cache``, ``http``).

Every span and instant may carry a ``request_id`` argument, which is
how one ``X-Request-Id`` shows up in the router's routing span, the
node's scheduler span, and the pool-execution span of the same
request (see ``docs/observability.md`` for the taxonomy).

:func:`merge_chrome_traces` folds several exported traces — e.g. a
router span trace, a node span trace, and the cycle-domain trace of
the very point the request computed — into one Perfetto-loadable file
by re-assigning process ids so the tracks never collide
(``repro trace --merge-serve``).

Recording is cheap (a handful of events per request, nothing per
simulated cycle) and never touches payloads: a served payload is
byte-identical whether or not anything was recording.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .tracer import Tracer


class NullSpanRecorder:
    """Disabled recorder: every emit is a no-op, spans yield an inert
    annotation dict.  Shared via :data:`NULL_SPANS` so components can
    default to "not recording" without branching at every call site."""

    enabled = False

    @contextmanager
    def span(self, tid: str, name: str,
             request_id: Optional[str] = None,
             **args: Any) -> Iterator[Dict[str, Any]]:
        yield {}

    def instant(self, tid: str, name: str,
                request_id: Optional[str] = None, **args: Any) -> None:
        pass


#: shared disabled recorder — the default everywhere a recorder is
#: optional, so plain schedulers/tests allocate and record nothing.
NULL_SPANS = NullSpanRecorder()


class SpanRecorder(NullSpanRecorder):
    """Bounded-ring wall-clock span recorder for one process.

    Args:
        process: the Perfetto process label every event carries
            (``router``, ``serve:node0``, ...).
        capacity: tracer ring size; oldest spans are evicted first.
        clock: monotonic seconds source (injectable for tests).
    """

    enabled = True

    def __init__(self, process: str, capacity: int = 4096,
                 clock=time.monotonic) -> None:
        self.process = process
        self._clock = clock
        self._origin = clock()
        self.tracer = Tracer(capacity=capacity)

    def now_us(self) -> int:
        """Microseconds since the recorder was created."""
        return int((self._clock() - self._origin) * 1_000_000)

    @contextmanager
    def span(self, tid: str, name: str,
             request_id: Optional[str] = None,
             **args: Any) -> Iterator[Dict[str, Any]]:
        """Record the enclosed block as one complete event.

        Yields an annotation dict: keys set on it inside the block
        (e.g. the response status, the chosen node) are merged into
        the span's args at exit — for facts only known at the end."""
        start = self.now_us()
        annotations: Dict[str, Any] = {}
        try:
            yield annotations
        finally:
            duration = max(self.now_us() - start, 0)
            merged = dict(args)
            merged.update(annotations)
            if request_id is not None:
                merged["request_id"] = request_id
            self.tracer.complete(self.process, tid, name, start,
                                 duration, **merged)

    def instant(self, tid: str, name: str,
                request_id: Optional[str] = None, **args: Any) -> None:
        """Record one point-in-time event (a shed, a cache hit)."""
        if request_id is not None:
            args["request_id"] = request_id
        self.tracer.instant(self.process, tid, name, self.now_us(),
                            **args)

    # -- inspection / export -------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        """Retained events as plain dicts (string labels)."""
        return self.tracer.events()

    def chrome_trace(self) -> Dict[str, Any]:
        """The retained spans as a Chrome trace-event JSON object
        (timestamps are wall-clock microseconds, which is exactly what
        Perfetto expects ``ts`` to be)."""
        trace = self.tracer.chrome_trace()
        trace["otherData"]["clock"] = "us"
        trace["otherData"]["process"] = self.process
        return trace

    def write(self, path: str) -> None:
        import json

        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, separators=(",", ":"))
            fh.write("\n")


def merge_chrome_traces(*traces: Dict[str, Any]) -> Dict[str, Any]:
    """Merge exported Chrome traces into one Perfetto-loadable object.

    Each input keeps its own tracks: process ids are offset per trace
    so a router trace's ``pid 1`` and a node trace's ``pid 1`` land on
    distinct (still-named) tracks.  ``tid`` needs no rewrite — Chrome
    scopes thread ids per process, and the pid offset already makes
    every (pid, tid) pair unique.  Event order and all other fields
    are preserved, so merging validated traces yields a validated
    trace (:func:`~repro.obs.schema.validate_chrome_trace`).
    """
    merged: List[Dict[str, Any]] = []
    clocks: List[Any] = []
    pid_offset = 0
    for trace in traces:
        if not isinstance(trace, dict):
            raise ValueError("merge_chrome_traces expects trace objects "
                             "with 'traceEvents'")
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("trace is missing 'traceEvents'")
        max_pid = 0
        for event in events:
            event = dict(event)
            pid = event.get("pid")
            if isinstance(pid, int):
                event["pid"] = pid + pid_offset
                if pid > max_pid:
                    max_pid = pid
            merged.append(event)
        pid_offset += max_pid
        other = trace.get("otherData")
        clocks.append(other.get("clock") if isinstance(other, dict)
                      else None)
    distinct = {clock for clock in clocks if clock is not None}
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "merged": len(traces),
            "clocks": clocks,
            # single summary clock: homogeneous inputs keep theirs; a
            # serve+cycle merge is honest about mixing time domains
            "clock": distinct.pop() if len(distinct) == 1 else "mixed",
        },
    }
