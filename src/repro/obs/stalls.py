"""Per-core, per-source stall attribution — the "cycles lost to X" view.

The paper's Fig. 6 argument is a stall-attribution argument: SP loses
its cycles to ordering (fence waits on clwb round-trips), Kiln to
commit flushes, the transaction cache to almost nothing.  The core
(:mod:`repro.cpu.core`) attributes every stalled cycle to exactly one
source at the moment the stalling op completes, and maintains
``stall.total`` at the same sites — so per core,

    sum(stall.<kind> for kind in STALL_KINDS) == stall.total

holds *by construction*.  :class:`StallReport` reads those counters
back out of a :class:`~repro.common.stats.Stats` registry (or the
``raw_stats`` of a cached :class:`~repro.sim.runner.SimulationResult`),
checks the invariant, and renders the per-core breakdown table the
``trace``/``figures`` CLI prints.

Stall taxonomy (who sets it, when):

========================  ==============================================
kind                      attributed when
========================  ==============================================
``load``                  a load missed beyond the OoO hide window
``store_issue``           a store's issue was delayed by the hierarchy
``store_buffer``          the finite store buffer was full at dispatch
``fence``                 sfence waited on outstanding clwb writebacks
                          (SP's ordering cost), or a clwb itself stalled
``commit``                tx_begin/tx_end waited with no more specific
                          reason (e.g. SP's commit-record round-trip)
``flush``                 Kiln's tx_end blocked flushing lines to NV-LLC
``tc_full``               a TC write back-pressured until space freed
``ack_wait``              a COW-overflow commit waited for its commit
                          record to be durable in NVM
``log_write``             a software-TX log store was back-pressured
                          (swtx: log-buffer / mirror window full)
``log_flush``             an sfence (or the hybrid scheme's epoch
                          fence) waited on outstanding *log* writes
``log_replay``            a redo/hybrid commit waited on the in-place
                          replay backlog of earlier transactions
========================  ==============================================

The scheme picks the *reason*; the core does the *arithmetic*: a
scheme that is about to delay a core calls
``core.attribute_stall(kind)`` and the core's completion helper
charges the measured stall to that kind (falling back to the op's
default — ``load``/``fence``/``commit``/... — when no scheme spoke up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

#: the kinds emitted only by the software-TX schemes
#: (:mod:`repro.persistence.swtx`); appended last so the historic
#: column order — and every frozen golden ``stall_cycles`` dict, which
#: omits the log kinds when they are zero — is unchanged
LOG_STALL_KINDS = ("log_write", "log_flush", "log_replay")

#: every attributable stall source, in report-column order
STALL_KINDS = ("load", "store_issue", "store_buffer", "fence",
               "commit", "flush", "tc_full", "ack_wait") + LOG_STALL_KINDS

#: the kinds caused by the *persistence mechanism* (vs. plain memory
#: behaviour) — the share Fig. 6 is really about
PERSISTENCE_KINDS = ("fence", "commit", "flush", "tc_full",
                     "ack_wait") + LOG_STALL_KINDS


@dataclass
class StallReport:
    """Per-core "cycles lost to X" breakdown for one run."""

    cycles: int                                 # run length in cycles
    per_core: Dict[int, Dict[str, float]]       # core → kind → cycles
    workload: str = ""
    scheme: str = ""

    # -- construction --------------------------------------------------
    @classmethod
    def from_counters(cls, counters: Mapping[str, float], cycles: int,
                      workload: str = "", scheme: str = "") -> "StallReport":
        """Build from flat ``core.<id>.stall.<kind>`` counters — either
        a live ``Stats.as_dict()`` or a cached result's ``raw_stats``."""
        per_core: Dict[int, Dict[str, float]] = {}
        for key, value in counters.items():
            parts = key.split(".")
            # core.<id>.stall.<kind> — kinds are single tokens, so
            # derived sample keys (e.g. load.latency.mean) never match
            if (len(parts) == 4 and parts[0] == "core"
                    and parts[2] == "stall"
                    and (parts[3] in STALL_KINDS or parts[3] == "total")):
                core = int(parts[1])
                per_core.setdefault(core, {})[parts[3]] = value
        for kinds in per_core.values():
            for kind in STALL_KINDS:
                kinds.setdefault(kind, 0.0)
            kinds.setdefault("total", 0.0)
        return cls(cycles=cycles, per_core=dict(sorted(per_core.items())),
                   workload=workload, scheme=scheme)

    @classmethod
    def from_result(cls, result) -> "StallReport":
        """Build from a :class:`~repro.sim.runner.SimulationResult`
        (requires ``raw_stats``, i.e. a result collected normally)."""
        return cls.from_counters(result.raw_stats, cycles=result.cycles,
                                 workload=result.workload,
                                 scheme=result.scheme.value)

    # -- aggregation ---------------------------------------------------
    def totals(self) -> Dict[str, float]:
        """Stall cycles summed over cores, kind → cycles (+ ``total``)."""
        out = {kind: 0.0 for kind in STALL_KINDS}
        out["total"] = 0.0
        for kinds in self.per_core.values():
            for kind, value in kinds.items():
                out[kind] = out.get(kind, 0) + value
        return out

    def share(self, kind: str) -> float:
        """Fraction of all stall cycles attributed to ``kind``
        (0.0 when the run never stalled)."""
        totals = self.totals()
        return totals[kind] / totals["total"] if totals["total"] else 0.0

    def persistence_share_of_cycles(self) -> float:
        """Persistence-mechanism stall cycles (worst core) as a
        fraction of run cycles — the "overhead the mechanism adds"
        number Fig. 6 plots the complement of."""
        if not self.cycles:
            return 0.0
        worst = max((sum(kinds[k] for k in PERSISTENCE_KINDS)
                     for kinds in self.per_core.values()), default=0.0)
        return worst / self.cycles

    # -- invariant -----------------------------------------------------
    def attribution_errors(self) -> List[str]:
        """Violations of the sum-to-total invariant (empty = healthy)."""
        errors = []
        for core, kinds in self.per_core.items():
            attributed = sum(kinds[k] for k in STALL_KINDS)
            if attributed != kinds["total"]:
                errors.append(
                    f"core {core}: attributed {attributed:g} != "
                    f"stall.total {kinds['total']:g}")
        return errors

    # -- rendering -----------------------------------------------------
    def format(self) -> str:
        """Fixed-width per-core table plus a totals row."""
        header = f"{'core':>6}" + "".join(
            f"{kind:>13}" for kind in STALL_KINDS + ("total",))
        lines = []
        title = "stall attribution (cycles)"
        if self.workload or self.scheme:
            title += f" — {self.workload}/{self.scheme}"
        lines.append(title)
        lines.append(header)
        for core, kinds in self.per_core.items():
            lines.append(f"{core:>6}" + "".join(
                f"{kinds[kind]:>13g}" for kind in STALL_KINDS + ("total",)))
        totals = self.totals()
        lines.append(f"{'all':>6}" + "".join(
            f"{totals[kind]:>13g}" for kind in STALL_KINDS + ("total",)))
        if self.cycles:
            lines.append(
                f"persistence stalls (fence+commit+flush+tc_full+ack_wait):"
                f" {self.persistence_share_of_cycles():.1%} of "
                f"{self.cycles} cycles (worst core)")
        return "\n".join(lines)
