"""Structural validation of exported Chrome trace-event JSON.

The Chrome trace-event format has no official JSON Schema; Perfetto
and ``chrome://tracing`` accept what the format doc describes.  This
module checks the subset the tracer emits, so tests and the CI
trace-smoke job can assert "this file will load in Perfetto" without a
browser: object-with-``traceEvents`` envelope, known phases, integer
ids, non-negative cycle timestamps, durations on complete events,
numeric series on counter events, and well-formed track-naming
metadata.

:func:`validate_chrome_trace` returns a list of human-readable
problems (empty = valid) rather than raising, so callers can show all
violations at once.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: event phases the tracer emits (subset of the Chrome format)
KNOWN_PHASES = {"i", "X", "C", "M"}
#: metadata record names that name tracks
METADATA_NAMES = {"process_name", "thread_name"}


def _check_event(event: Any, index: int, errors: List[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        errors.append(f"{where}: not an object")
        return
    ph = event.get("ph")
    if ph not in KNOWN_PHASES:
        errors.append(f"{where}: unknown phase {ph!r}")
        return
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: missing/empty name")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            errors.append(f"{where}: {key} must be an integer, "
                          f"got {event.get(key)!r}")
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        errors.append(f"{where}: ts must be a non-negative number, got {ts!r}")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            errors.append(f"{where}: complete event needs dur >= 0, "
                          f"got {dur!r}")
    elif ph == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            errors.append(f"{where}: counter event needs non-empty args")
        else:
            for series, value in args.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    errors.append(f"{where}: counter series {series!r} "
                                  f"must be numeric, got {value!r}")
    elif ph == "M":
        if name not in METADATA_NAMES:
            errors.append(f"{where}: metadata name {name!r} not in "
                          f"{sorted(METADATA_NAMES)}")
        args = event.get("args")
        if not (isinstance(args, dict)
                and isinstance(args.get("name"), str) and args["name"]):
            errors.append(f"{where}: metadata event needs args.name string")


def validate_chrome_trace(trace: Any) -> List[str]:
    """All structural problems with a parsed trace object (empty = ok)."""
    errors: List[str] = []
    if not isinstance(trace, dict):
        return ["top level: expected a JSON object with 'traceEvents'"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: 'traceEvents' missing or not a list"]
    for index, event in enumerate(events):
        _check_event(event, index, errors)
    # every (pid) referenced by a non-metadata event should have a
    # process_name record, or Perfetto shows bare numbers
    named_pids = {e.get("pid") for e in events
                  if isinstance(e, dict) and e.get("ph") == "M"
                  and e.get("name") == "process_name"}
    used_pids = {e.get("pid") for e in events
                 if isinstance(e, dict) and e.get("ph") != "M"}
    for pid in sorted(p for p in used_pids - named_pids
                      if isinstance(p, int)):
        errors.append(f"pid {pid} has events but no process_name metadata")
    return errors
