"""Epoch-based time-series sampler.

Aggregate counters say *how much*; the sampler says *when*.  Components
register **probes** — zero-argument callables reading an instantaneous
quantity (TC occupancy, memory queue depth, instructions retired) —
and every ``epoch`` cycles the sampler reads them all and emits one
Chrome ``counter`` event per probe into the tracer, producing the
time-series tracks Perfetto plots under each process.

The sampler is driven by the simulation kernel's *advance hook*
(:meth:`repro.common.event.Simulator.set_advance_hook`), not by
self-rescheduling events: a self-rescheduling sampler event would keep
the event queue non-empty forever (``Simulator.run`` drains the queue
to termination) and would interleave with component events, perturbing
the deterministic (time, insertion-seq) order.  The hook fires between
events, only when simulated time advances, so a sampled run executes
the exact same component schedule as an unsampled one.

Samples are stamped at the epoch boundary (the largest multiple of
``epoch`` that is <= the new time).  When time jumps over several
boundaries at once — common in an event-driven kernel — one sample per
probe is recorded at the *last* crossed boundary rather than one per
boundary: the intermediate values are unobservable anyway (no event
fired, so no state changed), and this keeps trace size proportional to
activity, not to idle time.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from .tracer import NullTracer

#: (pid, tid, name, probe) — labels match the tracer's track vocabulary
Probe = Tuple[str, str, str, Callable[[], Any]]


class EpochSampler:
    """Snapshots registered probes every ``epoch`` cycles into a tracer."""

    def __init__(self, tracer: NullTracer, epoch: int) -> None:
        if epoch < 1:
            raise ValueError(f"epoch must be >= 1 cycle, got {epoch}")
        self.tracer = tracer
        self.epoch = epoch
        self._probes: List[Probe] = []
        self._last_boundary = 0

    def add_probe(self, pid: str, tid: str, name: str,
                  probe: Callable[[], Any]) -> None:
        """Register a probe; sampled in registration order each epoch."""
        self._probes.append((pid, tid, name, probe))

    def sample_now(self, now: int) -> None:
        """Read every probe once, stamped at cycle ``now``."""
        tracer = self.tracer
        if not tracer.enabled:
            return
        for pid, tid, name, probe in self._probes:
            tracer.counter(pid, tid, name, now, value=probe())

    def on_advance(self, now: int) -> None:
        """Kernel advance hook: sample once when an epoch boundary is
        crossed (stamped at the last crossed boundary)."""
        boundary = (now // self.epoch) * self.epoch
        if boundary > self._last_boundary:
            self._last_boundary = boundary
            self.sample_now(boundary)
