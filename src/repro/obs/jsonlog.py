"""Structured JSON logging for the serving tier.

One JSON object per line on a single stream: ``ts`` (unix seconds),
``level``, ``event``, plus ``node_id`` and ``request_id`` when known,
then any event-specific fields in sorted order.  A fleet of nodes
writing these to their per-node log files (`LocalFleet` already
redirects stdout/stderr there) gives `grep request_id` the full
lifecycle of one request across processes — which is exactly what the
``metrics-smoke`` CI job asserts.

The process-wide logger is disabled by default (:data:`NULL_LOG`), so
batch runs and existing tests emit nothing.  `repro serve --log-json`
calls :func:`enable`, which also sets ``REPRO_JSONLOG`` /
``REPRO_NODE_ID`` in the environment so pool workers forked by
``ProcessPoolExecutor`` inherit the setting and tag their own
``point.executed`` records (see ``sim/parallel.execute_point``).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, IO, Optional

ENV_FLAG = "REPRO_JSONLOG"
ENV_NODE_ID = "REPRO_NODE_ID"


class NullLogger:
    """Disabled logger; the process-wide default."""

    enabled = False

    def log(self, event: str, level: str = "info",
            request_id: Optional[str] = None, **fields: Any) -> None:
        pass


#: shared disabled logger — what :func:`get_logger` returns until
#: :func:`enable` is called (or ``REPRO_JSONLOG=1`` is inherited).
NULL_LOG = NullLogger()


class JsonLogger(NullLogger):
    """Writes one compact JSON object per line, thread-safely.

    Args:
        stream: destination (default ``sys.stderr``, so node process
            logs capture it alongside tracebacks).
        node_id: stamped on every line when set.
        clock: unix-seconds source (injectable for tests).
    """

    enabled = True

    def __init__(self, stream: Optional[IO[str]] = None,
                 node_id: Optional[str] = None,
                 clock=time.time) -> None:
        self._stream = stream
        self.node_id = node_id
        self._clock = clock
        self._lock = threading.Lock()

    def log(self, event: str, level: str = "info",
            request_id: Optional[str] = None, **fields: Any) -> None:
        record = {"ts": round(self._clock(), 6), "level": level,
                  "event": event}
        if self.node_id is not None:
            record["node_id"] = self.node_id
        if request_id is not None:
            record["request_id"] = request_id
        for key in sorted(fields):
            record[key] = fields[key]
        line = json.dumps(record, separators=(",", ":"), default=str)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            stream.write(line + "\n")
            stream.flush()


_process_logger: Optional[NullLogger] = None


def enable(node_id: Optional[str] = None,
           stream: Optional[IO[str]] = None) -> JsonLogger:
    """Install a process-wide :class:`JsonLogger` and export the env
    flags so forked pool workers inherit it."""
    global _process_logger
    logger = JsonLogger(stream=stream, node_id=node_id)
    _process_logger = logger
    os.environ[ENV_FLAG] = "1"
    if node_id is not None:
        os.environ[ENV_NODE_ID] = node_id
    return logger


def disable() -> None:
    """Remove the process-wide logger and clear the env flags."""
    global _process_logger
    _process_logger = NULL_LOG
    os.environ.pop(ENV_FLAG, None)
    os.environ.pop(ENV_NODE_ID, None)


def get_logger() -> NullLogger:
    """The process-wide logger.

    Resolution order: an explicit :func:`enable`/:func:`disable` call
    wins; otherwise ``REPRO_JSONLOG=1`` in the environment (set by an
    enabling parent before forking workers) lazily constructs one; the
    fallback is :data:`NULL_LOG`."""
    global _process_logger
    if _process_logger is not None:
        return _process_logger
    if os.environ.get(ENV_FLAG) == "1":
        _process_logger = JsonLogger(node_id=os.environ.get(ENV_NODE_ID))
        return _process_logger
    return NULL_LOG
