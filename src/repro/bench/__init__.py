"""Benchmark-regression harness (see :mod:`repro.bench.kernel`)."""

from .kernel import (  # noqa: F401
    FULL_POINTS,
    SMOKE_POINTS,
    BenchPoint,
    calibrate,
    compare_reports,
    load_baseline,
    measure_point,
    run_bench,
)

__all__ = [
    "BenchPoint",
    "SMOKE_POINTS",
    "FULL_POINTS",
    "calibrate",
    "measure_point",
    "run_bench",
    "compare_reports",
    "load_baseline",
]
