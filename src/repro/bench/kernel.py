"""Simulation-kernel benchmark harness with a regression gate.

Measures events/second and wall-clock for canonical experiment points
(the same (workload, scheme) pairs the golden figures freeze), under
either event kernel, and compares runs against the committed baseline
``benchmarks/perf/BENCH_kernel.json``.

Raw events/second is machine-dependent, so every report carries a
*calibration* score — the throughput of a fixed pure-Python loop on
the same interpreter — and the regression gate compares the
**normalized** metric ``events_per_sec / calibration``: how many
simulator events one unit of this machine's Python throughput buys.
That ratio is stable across machine speeds (both numerator and
denominator scale with the host) while staying sensitive to the thing
the gate protects: simulator work per event growing.

Driver: ``python benchmarks/perf/bench_kernel.py`` (see there), or the
perf-smoke test in ``tests/test_perf_smoke.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..common.event import KERNEL_ENV, KERNEL_NAMES, default_kernel
from ..common.config import small_machine_config

#: committed baseline location (repo-root relative)
BASELINE_PATH = (pathlib.Path(__file__).resolve().parents[3]
                 / "benchmarks" / "perf" / "BENCH_kernel.json")

#: smoke gate: normalized events/sec may regress at most this fraction
DEFAULT_TOLERANCE = 0.30

#: ``--check`` gate: per-kernel normalized slowdown bound (tighter than
#: the opt-in pytest smoke — the driver compares all committed kernels)
CHECK_TOLERANCE = 0.10

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchPoint:
    """One canonical benchmark point (mirrors a golden-figure pair)."""

    workload: str
    scheme: str
    cores: int
    operations: int
    seed: int = 42

    @property
    def key(self) -> str:
        return (f"{self.workload}/{self.scheme}"
                f"/c{self.cores}/o{self.operations}/s{self.seed}")


#: the CI smoke pair: one accelerator-path point, one software-path
#: point — small enough to finish in seconds, hot enough to notice a
#: slow kernel
SMOKE_POINTS: List[BenchPoint] = [
    BenchPoint("hashtable", "txcache", cores=2, operations=30),
    BenchPoint("sps", "sp", cores=2, operations=30),
]

#: the full sweep: one point per golden figure pair, plus one per
#: software-transaction scheme (the swtx golden pairs)
FULL_POINTS: List[BenchPoint] = SMOKE_POINTS + [
    BenchPoint("btree", "kiln", cores=2, operations=30),
    BenchPoint("rbtree", "txcache", cores=2, operations=30),
    BenchPoint("graph", "optimal", cores=2, operations=30),
    BenchPoint("hashtable", "undo_log", cores=2, operations=30),
    BenchPoint("sps", "redo_log", cores=2, operations=30),
    BenchPoint("btree", "hybrid_dram", cores=2, operations=30),
]


def calibrate(loops: int = 300_000, repeats: int = 3) -> float:
    """Machine-speed score: iterations/second of a fixed integer loop.

    Best-of-``repeats`` so a scheduling hiccup cannot deflate the score
    (which would *inflate* normalized results and mask regressions)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for i in range(loops):
            acc += i & 0xFF
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return loops / best


def measure_point(point: BenchPoint, kernel: Optional[str] = None,
                  repeats: int = 2) -> Dict[str, object]:
    """Run ``point`` cold and return its benchmark record.

    ``wall_s`` is the best of ``repeats`` fresh systems (timing the
    event-loop drain only, not trace generation); ``events`` is
    identical across repeats by determinism."""
    from ..sim.runner import make_traces
    from ..sim.system import System

    kernel = kernel or default_kernel()
    if kernel not in KERNEL_NAMES:
        raise ValueError(f"unknown kernel {kernel!r}")
    config = small_machine_config(num_cores=point.cores)
    traces = make_traces(point.workload, point.cores, point.operations,
                         seed=point.seed)
    saved = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = kernel
    try:
        best_wall = float("inf")
        events = 0
        cycles = 0
        for _ in range(max(1, repeats)):
            system = System(config, point.scheme)
            system.load_traces(traces)
            start = time.perf_counter()
            system.run()
            wall = time.perf_counter() - start
            best_wall = min(best_wall, wall)
            events = system.events_executed
            cycles = system.cycles
    finally:
        if saved is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = saved
    return {
        "kernel": kernel,
        "events": events,
        "cycles": cycles,
        "wall_s": round(best_wall, 6),
        "events_per_sec": round(events / best_wall, 1),
    }


def run_bench(points: Sequence[BenchPoint],
              kernels: Sequence[str] = ("wheel",),
              repeats: int = 2,
              calibration: Optional[float] = None) -> Dict[str, object]:
    """Benchmark ``points`` under each kernel; returns a full report."""
    calibration = calibration or calibrate()
    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "calibration_ops_per_sec": round(calibration, 1),
        "kernels": {},
    }
    for kernel in kernels:
        records = {}
        for point in points:
            record = measure_point(point, kernel=kernel, repeats=repeats)
            record["normalized"] = round(
                record["events_per_sec"] / calibration, 6)
            records[point.key] = record
        report["kernels"][kernel] = records
    return report


def load_baseline(path: Optional[pathlib.Path] = None) -> Dict[str, object]:
    return json.loads((path or BASELINE_PATH).read_text())


def stale_baseline(baseline: Dict[str, object]) -> List[str]:
    """Baseline-freshness check: every kernel in ``KERNEL_NAMES`` must
    have committed records.

    Without this, a newly added kernel silently escapes ``--check`` —
    the per-point comparison only looks at kernels the baseline already
    knows.  Returns human-readable problems (empty = fresh)."""
    problems = []
    committed = baseline.get("kernels", {})
    for kernel in KERNEL_NAMES:
        if not committed.get(kernel):
            problems.append(
                f"baseline has no records for kernel {kernel!r} "
                "(re-run bench_kernel.py --update)")
    return problems


def compare_reports(baseline: Dict[str, object],
                    current: Dict[str, object],
                    kernel: str = "wheel",
                    tolerance: float = DEFAULT_TOLERANCE,
                    keys: Optional[Sequence[str]] = None) -> List[str]:
    """Regression check: normalized events/sec per point.

    Returns human-readable failure lines (empty = gate passes).
    ``keys`` names the baseline points the current run claims to cover
    (default: every point in the baseline); a claimed point missing
    from the current report is itself a failure — the gate must not
    silently shrink its coverage."""
    failures = []
    base_points = baseline.get("kernels", {}).get(kernel, {})
    cur_points = current.get("kernels", {}).get(kernel, {})
    for key in (keys if keys is not None else base_points):
        base = base_points.get(key)
        if base is None:
            failures.append(f"{kernel}:{key}: missing from baseline "
                            "(re-run bench_kernel.py --update)")
            continue
        cur = cur_points.get(key)
        if cur is None:
            failures.append(f"{kernel}:{key}: missing from current run")
            continue
        floor = base["normalized"] * (1.0 - tolerance)
        if cur["normalized"] < floor:
            drop = 1.0 - cur["normalized"] / base["normalized"]
            failures.append(
                f"{kernel}:{key}: normalized events/sec "
                f"{cur['normalized']:.4f} is {drop:.0%} below baseline "
                f"{base['normalized']:.4f} (tolerance {tolerance:.0%})")
    return failures


def format_report(report: Dict[str, object]) -> str:
    lines = [f"calibration: {report['calibration_ops_per_sec']:,.0f} ops/s"]
    for kernel, records in report["kernels"].items():
        lines.append(f"[{kernel}]")
        for key, rec in records.items():
            lines.append(
                f"  {key:<42} {rec['events']:>9,} ev  "
                f"{rec['wall_s']*1e3:>8.1f} ms  "
                f"{rec['events_per_sec']:>12,.0f} ev/s  "
                f"norm {rec['normalized']:.4f}")
    return "\n".join(lines)
