"""Litmus runner: one scheme × one program × a crash at *every* cycle.

The naive shape — a fresh simulation per crash point, as
:func:`repro.sim.crash.run_with_crash` does for a handful of
fractions — is quadratic in run length and unusable at every-cycle
granularity.  Instead the runner steps **one** simulation
(``system.run(until=cycle)`` cycle by cycle) and queries the scheme's
recovery model at each pause.  That is sound because every scheme's
``durable_lines``/``durably_committed`` are pure functions of event
history (the durable image replays a timeline; TC/COW commit scans
build fresh lists) — a differential test in
``tests/test_litmus_runner.py`` holds the stepped states equal to
fresh-run states at sampled cycles.

Between two consecutive events the machine state is frozen, so cycles
in which no event executed are covered by the previous check; the
runner skips re-verifying them (``crash_cycles`` counts every covered
cycle, ``states_checked`` the distinct states actually verified).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..common.config import FaultConfig, MachineConfig, small_machine_config
from ..common.types import SchemeName, Version
from ..sim.system import System
from . import broken  # noqa: F401  (registers the broken_commit scheme)
from .oracle import check_membership, tx_summaries
from .program import LitmusProgram

#: per-result cap on recorded violating crash points (a broken scheme
#: violates at thousands of cycles; the report needs the shape, not all)
MAX_VIOLATION_RECORDS = 25


def scheme_label(scheme: Union[str, SchemeName]) -> str:
    return scheme.value if isinstance(scheme, SchemeName) else str(scheme)


@dataclass
class LitmusResult:
    """Outcome of one (program, scheme) every-cycle crash sweep."""

    program: str
    fingerprint: str
    scheme: str
    total_cycles: int
    crash_cycles: int          # cycles covered (== total_cycles + 1)
    states_checked: int        # distinct machine states verified
    violations: List[Dict[str, object]] = field(default_factory=list)
    violating_cycles: int = 0  # total, beyond the recorded cap
    faulty: bool = False

    @property
    def consistent(self) -> bool:
        return self.violating_cycles == 0

    @property
    def first_violation(self) -> Optional[Dict[str, object]]:
        return self.violations[0] if self.violations else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "fingerprint": self.fingerprint,
            "scheme": self.scheme,
            "total_cycles": self.total_cycles,
            "crash_cycles": self.crash_cycles,
            "states_checked": self.states_checked,
            "violations": [dict(v) for v in self.violations],
            "violating_cycles": self.violating_cycles,
            "faulty": self.faulty,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LitmusResult":
        return cls(
            program=str(data["program"]),
            fingerprint=str(data["fingerprint"]),
            scheme=str(data["scheme"]),
            total_cycles=int(data["total_cycles"]),
            crash_cycles=int(data["crash_cycles"]),
            states_checked=int(data["states_checked"]),
            violations=[dict(v) for v in data["violations"]],
            violating_cycles=int(data["violating_cycles"]),
            faulty=bool(data["faulty"]),
        )


def iter_crash_states(
    system: System,
    *,
    check_every: int = 1,
) -> Iterator[Tuple[int, set, Dict[int, Optional[Version]]]]:
    """Step a loaded system, yielding ``(cycle, durably_committed,
    recovered_image)`` at every cycle where the machine state changed
    (plus cycle 0 and the final state)."""
    cycle = 0
    last_events = -1
    while True:
        system.run(until=cycle)
        if system.events_executed != last_events:
            last_events = system.events_executed
            yield (cycle,
                   system.scheme.durably_committed(cycle),
                   system.scheme.durable_lines(cycle))
        if system.sim.pending() == 0:
            return
        cycle += check_every


def run_litmus(
    program: LitmusProgram,
    scheme: Union[str, SchemeName],
    *,
    config: Optional[MachineConfig] = None,
    fault_config: Optional[FaultConfig] = None,
    check_every: int = 1,
    max_violation_records: int = MAX_VIOLATION_RECORDS,
) -> LitmusResult:
    """Execute ``program`` under ``scheme``, crash at every cycle, and
    check each recovered image against the legal persist set."""
    program.validate()
    config = config or small_machine_config(num_cores=program.num_cores)
    if config.num_cores < program.num_cores:
        raise ValueError(
            f"program {program.name} needs {program.num_cores} cores, "
            f"config has {config.num_cores}")
    if fault_config is not None:
        config = replace(config, faults=fault_config)

    traces = program.to_traces()
    summaries = tx_summaries(traces)
    system = System(config, scheme)
    system.load_traces(traces)

    result = LitmusResult(
        program=program.name,
        fingerprint=program.fingerprint,
        scheme=scheme_label(scheme),
        total_cycles=0,
        crash_cycles=0,
        states_checked=0,
        faulty=config.faults.enabled,
    )
    for cycle, committed, recovered in iter_crash_states(
            system, check_every=check_every):
        result.states_checked += 1
        messages = check_membership(summaries, committed, recovered)
        if messages:
            result.violating_cycles += 1
            if len(result.violations) < max_violation_records:
                result.violations.append({
                    "crash_cycle": cycle,
                    "committed": sorted(committed),
                    "messages": messages,
                })
    result.total_cycles = system.sim.now
    result.crash_cycles = system.sim.now // max(1, check_every) + 1
    return result


@dataclass
class LitmusMatrixReport:
    """Aggregate of a litmus matrix run."""

    results: List[LitmusResult] = field(default_factory=list)

    @property
    def total_runs(self) -> int:
        return len(self.results)

    @property
    def consistent_runs(self) -> int:
        return sum(r.consistent for r in self.results)

    @property
    def violations(self) -> List[str]:
        out = []
        for result in self.results:
            first = result.first_violation
            if first is not None:
                out.append(
                    f"{result.program}/{result.scheme}"
                    f"@{first['crash_cycle']}: "
                    f"{first['messages'][0]} "
                    f"({result.violating_cycles} violating cycles)")
        return out

    @property
    def total_states_checked(self) -> int:
        return sum(r.states_checked for r in self.results)

    @property
    def total_crash_cycles(self) -> int:
        return sum(r.crash_cycles for r in self.results)

    def format(self) -> str:
        lines = [
            f"litmus matrix: {self.total_runs} runs "
            f"({self.consistent_runs} consistent, "
            f"{self.total_runs - self.consistent_runs} violating), "
            f"{self.total_crash_cycles} crash points "
            f"({self.total_states_checked} distinct states checked)",
        ]
        for result in self.results:
            status = ("OK" if result.consistent
                      else f"VIOLATION x{result.violating_cycles}")
            tag = " +faults" if result.faulty else ""
            lines.append(
                f"  {result.program:<12} {result.scheme:<14} "
                f"{result.total_cycles:>7} cyc "
                f"{result.states_checked:>5} states{tag} -> {status}")
            first = result.first_violation
            if first is not None:
                lines.append(f"      first @ cycle {first['crash_cycle']} "
                             f"(committed={first['committed']}):")
                lines.extend(f"        {m}" for m in first["messages"][:3])
        return "\n".join(lines)


def run_litmus_matrix(
    programs: Sequence[LitmusProgram],
    schemes: Sequence[Union[str, SchemeName]],
    *,
    config: Optional[MachineConfig] = None,
    fault_config: Optional[FaultConfig] = None,
    check_every: int = 1,
    engine=None,
) -> LitmusMatrixReport:
    """Run every program under every scheme.

    With ``fault_config``, each run derives its own fault seed (base
    seed + run index) the way :func:`repro.sim.chaos.chaos_sweep`
    does, so the matrix explores distinct fault timings while staying
    exactly reproducible.  ``engine`` (an optional
    :class:`~repro.sim.parallel.ExperimentEngine`) fans runs out over
    its worker pool with litmus-point cache keys; pooled results are
    identical to the serial path's.
    """
    pairs = [(program, scheme)
             for program in programs for scheme in schemes]
    base = config

    def config_for(program: LitmusProgram,
                   index: int) -> MachineConfig:
        cfg = base or small_machine_config(num_cores=program.num_cores)
        if fault_config is not None:
            cfg = replace(cfg, faults=replace(
                fault_config, seed=fault_config.seed + index))
        return cfg

    if engine is not None:
        from ..sim.parallel import LitmusPoint

        points = [
            LitmusPoint(
                program=program.canonical_json(),
                scheme=scheme_label(scheme),
                config=config_for(program, index),
                check_every=check_every,
            )
            for index, (program, scheme) in enumerate(pairs)
        ]
        return LitmusMatrixReport(results=engine.run(points))

    report = LitmusMatrixReport()
    for index, (program, scheme) in enumerate(pairs):
        report.results.append(run_litmus(
            program, scheme, config=config_for(program, index),
            check_every=check_every))
    return report
