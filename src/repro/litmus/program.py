"""Litmus programs: small multi-core persist-ordering tests.

A litmus program is a per-core list of operations drawn from the
minimal grammar the persistency-model literature uses (*Lost in
Interpretation*, arXiv:2405.18575): ``TX_BEGIN``/``TX_END`` brackets,
persistent ``STORE``s to a handful of numbered cache lines, and
``FENCE``s.  Lines are plain indices — index *i* maps to home-region
byte address ``NVM_BASE + i * CACHE_LINE_SIZE`` — so the *same index on
two cores is a shared conflict line* and a core-private index is a
private line.

Programs are value objects: they serialize to a canonical JSON form
(sorted keys, no whitespace) whose sha256 is the program fingerprint,
so the parallel engine's spec keys, the frozen corpus, and the
determinism property tests all agree on identity byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from hashlib import sha256
from typing import Dict, List, Optional, Set, Tuple

from ..common.types import CACHE_LINE_SIZE, NVM_BASE, Version
from ..cpu.trace import OpType, Trace, TraceOp

#: op kinds of the litmus grammar
STORE = "store"
FENCE = "fence"
TX_BEGIN = "tx_begin"
TX_END = "tx_end"

_KINDS = (STORE, FENCE, TX_BEGIN, TX_END)

#: litmus line indices live at the bottom of the home region
MAX_LINE_INDEX = 1 << 20


def line_address(index: int) -> int:
    """Byte address of litmus line ``index`` (home region)."""
    return NVM_BASE + index * CACHE_LINE_SIZE


@dataclass(frozen=True)
class LitmusOp:
    """One operation of a litmus program.

    ``line`` is meaningful for STORE only; ``tx`` for TX_BEGIN only
    (TX_END closes the currently open transaction, stores inherit it).
    """

    kind: str
    line: Optional[int] = None
    tx: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"op": self.kind}
        if self.line is not None:
            out["line"] = self.line
        if self.tx is not None:
            out["tx"] = self.tx
        return out

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "LitmusOp":
        kind = data.get("op")
        if kind not in _KINDS:
            raise ValueError(f"unknown litmus op {kind!r} "
                             f"(known: {list(_KINDS)})")
        line = data.get("line")
        tx = data.get("tx")
        unknown = sorted(set(data) - {"op", "line", "tx"})
        if unknown:
            raise ValueError(f"litmus op: unknown keys {unknown}")
        return LitmusOp(kind=str(kind),
                        line=None if line is None else int(line),
                        tx=None if tx is None else int(tx))


@dataclass(frozen=True)
class LitmusProgram:
    """A named multi-core litmus program."""

    name: str
    cores: Tuple[Tuple[LitmusOp, ...], ...]

    # -- construction --------------------------------------------------
    @staticmethod
    def build(name: str, cores: List[List[LitmusOp]]) -> "LitmusProgram":
        program = LitmusProgram(
            name=name, cores=tuple(tuple(ops) for ops in cores))
        program.validate()
        return program

    def validate(self) -> None:
        """Raise ValueError on malformed programs: unbalanced TX
        brackets, stores outside transactions, duplicate tx ids,
        out-of-range lines."""
        if not self.cores:
            raise ValueError(f"{self.name}: a program needs >= 1 core")
        seen_tx: Set[int] = set()
        for core_id, ops in enumerate(self.cores):
            open_tx: Optional[int] = None
            for index, op in enumerate(ops):
                where = f"{self.name}.c{core_id}[{index}]"
                if op.kind == TX_BEGIN:
                    if open_tx is not None:
                        raise ValueError(f"{where}: nested TX_BEGIN")
                    if op.tx is None:
                        raise ValueError(f"{where}: TX_BEGIN without tx id")
                    if op.tx in seen_tx:
                        raise ValueError(
                            f"{where}: duplicate tx id {op.tx}")
                    seen_tx.add(op.tx)
                    open_tx = op.tx
                elif op.kind == TX_END:
                    if open_tx is None:
                        raise ValueError(f"{where}: TX_END outside tx")
                    open_tx = None
                elif op.kind == STORE:
                    if open_tx is None:
                        raise ValueError(
                            f"{where}: store outside a transaction "
                            "(litmus durability is transaction-granular)")
                    if op.line is None or not 0 <= op.line < MAX_LINE_INDEX:
                        raise ValueError(
                            f"{where}: store line {op.line!r} out of range")
                elif op.kind != FENCE:
                    raise ValueError(f"{where}: unknown op {op.kind!r}")
            if open_tx is not None:
                raise ValueError(
                    f"{self.name}.c{core_id}: unterminated tx {open_tx}")

    # -- derived views -------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def op_count(self) -> int:
        return sum(len(ops) for ops in self.cores)

    def tx_ids(self) -> Set[int]:
        return {op.tx for ops in self.cores for op in ops
                if op.kind == TX_BEGIN}

    def lines_by_core(self) -> List[Set[int]]:
        return [{op.line for op in ops if op.kind == STORE}
                for ops in self.cores]

    def shared_lines(self) -> Set[int]:
        """Line indices written by two or more cores (conflict lines)."""
        per_core = self.lines_by_core()
        shared: Set[int] = set()
        for i, mine in enumerate(per_core):
            for other in per_core[i + 1:]:
                shared |= mine & other
        return shared

    @property
    def conflicting(self) -> bool:
        return bool(self.shared_lines())

    # -- compilation ---------------------------------------------------
    def to_traces(self) -> List[Trace]:
        """Compile to one :class:`~repro.cpu.trace.Trace` per core.

        Store versions are assigned the same way
        :class:`~repro.cpu.trace.TraceBuilder` does — ``Version(tx_id,
        seq)`` with a per-transaction sequence counter — so the crash
        oracle can compare recovered versions across schemes.
        """
        traces: List[Trace] = []
        for core_id, ops in enumerate(self.cores):
            trace = Trace(name=f"{self.name}.c{core_id}")
            open_tx: Optional[int] = None
            seq = 0
            for op in ops:
                if op.kind == TX_BEGIN:
                    open_tx = op.tx
                    seq = 0
                    trace.ops.append(TraceOp(OpType.TX_BEGIN, tx_id=op.tx))
                elif op.kind == TX_END:
                    trace.ops.append(TraceOp(OpType.TX_END, tx_id=open_tx))
                    open_tx = None
                elif op.kind == STORE:
                    version = Version(open_tx, seq)
                    seq += 1
                    trace.ops.append(TraceOp(
                        OpType.STORE, addr=line_address(op.line),
                        tx_id=open_tx, version=version))
                elif op.kind == FENCE:
                    trace.ops.append(TraceOp(OpType.SFENCE, tx_id=open_tx))
            trace.validate()
            traces.append(trace)
        return traces

    # -- serialization / identity --------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "cores": [[op.to_dict() for op in ops] for ops in self.cores],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "LitmusProgram":
        if not isinstance(data, dict):
            raise ValueError(f"litmus program must be an object, got {data!r}")
        unknown = sorted(set(data) - {"name", "cores"})
        if unknown:
            raise ValueError(f"litmus program: unknown keys {unknown}")
        cores = data.get("cores")
        if not isinstance(cores, list):
            raise ValueError("litmus program: 'cores' must be a list")
        return LitmusProgram.build(
            name=str(data.get("name", "unnamed")),
            cores=[[LitmusOp.from_dict(op) for op in ops] for ops in cores])

    def canonical_json(self) -> str:
        """Byte-stable serialization — the identity the engine's spec
        keys, the corpus, and the determinism properties hash."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def fingerprint(self) -> str:
        return sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def format(self) -> str:
        """Human-readable one-program listing."""
        out = [f"{self.name} ({self.num_cores} cores, "
               f"{self.op_count} ops"
               + (", conflicting" if self.conflicting else "") + ")"]
        for core_id, ops in enumerate(self.cores):
            parts = []
            for op in ops:
                if op.kind == TX_BEGIN:
                    parts.append(f"tx{op.tx}{{")
                elif op.kind == TX_END:
                    parts.append("}")
                elif op.kind == STORE:
                    parts.append(f"L{op.line}")
                else:
                    parts.append("fence")
            out.append(f"  c{core_id}: " + " ".join(parts))
        return "\n".join(out)
