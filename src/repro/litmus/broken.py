"""A deliberately broken persistence scheme: commit-before-flush.

The litmus matrix is only trustworthy if it can *fail*: this scheme
declares a transaction durably committed the moment its TX_END
retires, while doing nothing to push the transaction's writes out of
the volatile hierarchy (recovery sees the raw NVM home image, exactly
like the Optimal baseline).  Any crash between a commit claim and the
eventual (eviction-driven, unordered) write-backs exposes a torn
transaction — the paper's Fig. 2(a) failure, but with a recovery model
that *claims* atomicity.  The litmus runner must flag it, and the
minimizer must shrink the counterexample to a single store in a single
transaction.

Registered under the plain string name ``broken_commit`` (kept out of
the :class:`~repro.common.types.SchemeName` enum so no production
surface ever sweeps it by accident).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..common.types import Version, is_home_line
from ..persistence import register_scheme
from ..persistence.base import PersistenceScheme, Resume

BROKEN_COMMIT = "broken_commit"


@dataclass(frozen=True)
class _SchemeTag:
    """Duck-types SchemeName for stats scoping (`.value`) without
    claiming a slot in the paper's enum."""

    value: str


class CommitBeforeFlushScheme(PersistenceScheme):
    """Claims commit at TX_END retire; never flushes anything."""

    name = _SchemeTag(BROKEN_COMMIT)

    def __init__(self, sim, config, stats, hierarchy, memory,
                 tracer=None) -> None:
        from ..obs.tracer import NULL_TRACER
        super().__init__(sim, config, stats, hierarchy, memory,
                         tracer=tracer if tracer is not None
                         else NULL_TRACER)
        self._commit_cycle: Dict[int, int] = {}

    def tx_end(self, core, op, resume: Resume) -> None:
        # the bug: durability claimed with the writes still volatile
        self.committed_tx.add(op.tx_id)
        self._commit_cycle[op.tx_id] = self.sim.now
        resume()

    def durably_committed(self, crash_cycle: int) -> set:
        return {tx for tx, cycle in self._commit_cycle.items()
                if cycle <= crash_cycle}

    def durable_lines(self, crash_cycle: int) -> Dict[int, Optional[Version]]:
        # no recovery story at all: whatever write-backs happened to
        # reach the NVM home region before the crash
        return {
            line: version
            for line, version in
            self.memory.durable_state_at(crash_cycle).items()
            if is_home_line(line)
        }


register_scheme(BROKEN_COMMIT, CommitBeforeFlushScheme)
