"""Counterexample minimization: delta-debugging over litmus ops.

When the runner finds a violation, the raw program is rarely the
story — the broken behavior usually needs one store and one commit.
:func:`minimize_program` greedily shrinks a failing program to a local
minimum by structured reduction passes, largest cuts first:

1. drop a whole core,
2. drop a whole transaction (its TX_BEGIN..TX_END span),
3. drop a single store or fence.

Every candidate is validated (the grammar keeps TX brackets paired by
construction of the cuts) and re-run under the failure predicate; a
cut is kept only if the candidate still fails.  The passes repeat to a
fixpoint, so the result is 1-minimal with respect to these cuts.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Union

from ..common.config import FaultConfig, MachineConfig
from ..common.types import SchemeName
from .program import FENCE, STORE, TX_BEGIN, TX_END, LitmusOp, LitmusProgram


def _tx_spans(ops) -> List[range]:
    spans: List[range] = []
    start = None
    for index, op in enumerate(ops):
        if op.kind == TX_BEGIN:
            start = index
        elif op.kind == TX_END and start is not None:
            spans.append(range(start, index + 1))
            start = None
    return spans


def _rebuild(program: LitmusProgram,
             cores: List[List[LitmusOp]]) -> LitmusProgram:
    return LitmusProgram.build(program.name, cores)


def reduction_candidates(
        program: LitmusProgram) -> Iterator[LitmusProgram]:
    """Strictly smaller well-formed variants, largest cuts first."""
    cores = [list(ops) for ops in program.cores]
    if len(cores) > 1:
        for drop in range(len(cores)):
            yield _rebuild(program,
                           cores[:drop] + cores[drop + 1:])
    for core_index, ops in enumerate(cores):
        for span in _tx_spans(ops):
            reduced = [op for index, op in enumerate(ops)
                       if index not in span]
            yield _rebuild(
                program,
                cores[:core_index] + [reduced] + cores[core_index + 1:])
    for core_index, ops in enumerate(cores):
        for index, op in enumerate(ops):
            if op.kind in (STORE, FENCE):
                reduced = ops[:index] + ops[index + 1:]
                yield _rebuild(
                    program,
                    cores[:core_index] + [reduced]
                    + cores[core_index + 1:])


def minimize_program(
    program: LitmusProgram,
    is_failing: Callable[[LitmusProgram], bool],
) -> LitmusProgram:
    """Shrink ``program`` while ``is_failing`` stays true.

    ``program`` itself must fail; raises ValueError otherwise (a
    minimizer fed a passing input would silently return garbage).
    """
    if not is_failing(program):
        raise ValueError(
            f"{program.name}: minimization requires a failing program")
    current = program
    improved = True
    while improved:
        improved = False
        for candidate in reduction_candidates(current):
            if candidate.op_count >= current.op_count:
                continue
            if is_failing(candidate):
                current = candidate
                improved = True
                break
    if current is program:
        return program
    return LitmusProgram.build(f"{program.name}+min",
                               [list(ops) for ops in current.cores])


def minimize_violation(
    program: LitmusProgram,
    scheme: Union[str, SchemeName],
    *,
    config: Optional[MachineConfig] = None,
    fault_config: Optional[FaultConfig] = None,
    check_every: int = 1,
) -> LitmusProgram:
    """Minimize against 'this scheme violates somewhere in the
    every-cycle sweep' — the predicate the runner's report implies."""
    from .runner import run_litmus

    def is_failing(candidate: LitmusProgram) -> bool:
        result = run_litmus(candidate, scheme, config=config,
                            fault_config=fault_config,
                            check_every=check_every,
                            max_violation_records=1)
        return not result.consistent

    return minimize_program(program, is_failing)
