"""Seeded litmus-program generator.

Two sources of programs:

* **Classic shapes** — the named tests the persistency literature
  argues about: message passing (flag after data), store buffering
  (cross conflicts through fences), overlapping transactions on shared
  lines, same-line counters, and a private multi-tx chain.
* **Random programs** — seeded, bounded interleavings of
  STORE/FENCE/TX_BEGIN/TX_END over a small pool of shared-conflict and
  core-private lines.

Everything is a pure function of its arguments: the same seed yields
a byte-identical program (the determinism property in
``tests/test_litmus_properties.py`` holds this as a contract, since
program bytes feed the engine's cache keys).
"""

from __future__ import annotations

import random
from typing import List, Optional

from .program import FENCE, STORE, TX_BEGIN, TX_END, LitmusOp, LitmusProgram

#: line-index layout: shared conflict lines first, then per-core
#: private banks of this size
_PRIVATE_BANK = 16


def _private_line(core: int, offset: int) -> int:
    return 8 + core * _PRIVATE_BANK + offset


def _tx_id(core: int, number: int) -> int:
    """Globally unique, per-core increasing transaction ids."""
    return core * 64 + number + 1


def _tx(core: int, number: int, lines: List[int],
        fences_after: Optional[List[int]] = None) -> List[LitmusOp]:
    ops = [LitmusOp(TX_BEGIN, tx=_tx_id(core, number))]
    for index, line in enumerate(lines):
        ops.append(LitmusOp(STORE, line=line))
        if fences_after and index in fences_after:
            ops.append(LitmusOp(FENCE))
    ops.append(LitmusOp(TX_END))
    return ops


def message_passing() -> LitmusProgram:
    """Data then flag in separate txs on core 0; a reader-side core
    writes privately.  Write-order control demands the flag tx is
    never durable without the data tx."""
    return LitmusProgram.build("mp", [
        _tx(0, 0, [0]) + _tx(0, 1, [1]),
        _tx(1, 0, [_private_line(1, 0)]),
    ])


def store_buffering() -> LitmusProgram:
    """Each core writes the other's line first, fenced, then its own —
    both shared lines are cross-core conflicts."""
    return LitmusProgram.build("sb", [
        _tx(0, 0, [0]) + [LitmusOp(FENCE)] + _tx(0, 1, [1]),
        _tx(1, 0, [1]) + [LitmusOp(FENCE)] + _tx(1, 1, [0]),
    ])


def overlapping_tx() -> LitmusProgram:
    """Two transactions writing the same two shared lines in opposite
    orders — the canonical multi-valued persist set."""
    return LitmusProgram.build("overlap", [
        _tx(0, 0, [0, 1], fences_after=[0]),
        _tx(1, 0, [1, 0], fences_after=[0]),
    ])


def shared_counter() -> LitmusProgram:
    """Both cores repeatedly commit to one shared line."""
    return LitmusProgram.build("counter", [
        _tx(0, 0, [0]) + _tx(0, 1, [0]),
        _tx(1, 0, [0]) + _tx(1, 1, [0]),
    ])


def private_chain() -> LitmusProgram:
    """Three dependent txs per core over private lines — the
    single-threaded write-order shape of paper §2."""
    return LitmusProgram.build("chain", [
        _tx(0, 0, [_private_line(0, 0)])
        + _tx(0, 1, [_private_line(0, 0), _private_line(0, 1)])
        + _tx(0, 2, [_private_line(0, 1)]),
        _tx(1, 0, [_private_line(1, 0)])
        + _tx(1, 1, [_private_line(1, 0), _private_line(1, 1)])
        + _tx(1, 2, [_private_line(1, 1)]),
    ])


CLASSIC_SHAPES = (message_passing, store_buffering, overlapping_tx,
                  shared_counter, private_chain)


def random_program(seed: int,
                   *,
                   cores: int = 2,
                   max_txs: int = 3,
                   max_stores: int = 3,
                   shared_lines: int = 2,
                   private_lines: int = 2,
                   fence_probability: float = 0.3,
                   name: Optional[str] = None) -> LitmusProgram:
    """A seeded random program with bounded op counts.

    Each core runs 1..max_txs transactions of 1..max_stores stores;
    every store picks a shared conflict line or a core-private line
    with equal weight, and fences are sprinkled between stores.
    """
    rng = random.Random(seed)
    cores_ops: List[List[LitmusOp]] = []
    for core in range(cores):
        ops: List[LitmusOp] = []
        for tx_number in range(rng.randint(1, max_txs)):
            ops.append(LitmusOp(TX_BEGIN, tx=_tx_id(core, tx_number)))
            for _ in range(rng.randint(1, max_stores)):
                if rng.random() < 0.5:
                    line = rng.randrange(shared_lines)
                else:
                    line = _private_line(core,
                                         rng.randrange(private_lines))
                ops.append(LitmusOp(STORE, line=line))
                if rng.random() < fence_probability:
                    ops.append(LitmusOp(FENCE))
            ops.append(LitmusOp(TX_END))
        cores_ops.append(ops)
    return LitmusProgram.build(name or f"rand{seed}", cores_ops)


def default_suite(seed: int = 0, count: int = 20,
                  *, cores: int = 2) -> List[LitmusProgram]:
    """The default litmus matrix: every classic shape plus seeded
    random programs up to ``count`` total."""
    programs = [shape() for shape in CLASSIC_SHAPES]
    for index in range(max(0, count - len(programs))):
        programs.append(random_program(seed * 100003 + index,
                                       cores=cores,
                                       name=f"rand{seed}.{index}"))
    return programs[:count]
