"""Scheme-independent legal-persist-set oracle.

Given only a program (as per-core traces), this module answers: *which
NVM images may a correct persistency model expose after a crash?*  It
strictly generalizes the single-image ``expected_image`` oracle that
``repro.sim.crash`` started with, which assumed every line has exactly
one legal recovered value.

The model, matching the failure-atomicity contract of paper §2 (and
the per-thread persist orders of *Lost in Interpretation*,
arXiv:2405.18575):

1. **Write-order control (prefix closure).**  A core's transactions
   become durable in program order, so the set of durably-committed
   transactions restricted to one core must be a prefix of that core's
   transaction order.  A commit set that skips over an earlier
   uncommitted transaction on the same core is itself a violation.
2. **Failure atomicity.**  Every write of a committed transaction is
   durable; no write of an uncommitted transaction is visible.
3. **Per-line freshness.**  For each line, the recovered version must
   be the *final* value written by some core's **last** committed
   writer of that line.  Within a core, program order forbids exposing
   an overwritten value; across cores, conflicting committed writers
   are unordered by the program alone (no isolation is promised), so
   any of the per-core-maximal candidates is legal.

The legal persist set at a crash point is therefore the product, over
lines, of each line's candidate versions — singleton for core-private
lines (where it degenerates to the old ``expected_image``), and
multi-valued only on shared conflict lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import (AbstractSet, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from ..common.types import Version, is_home_line, line_addr
from ..cpu.trace import OpType, Trace

#: safety cap for explicit image enumeration (the membership check
#: never enumerates; this only bounds ``legal_images``)
MAX_ENUMERATED_IMAGES = 4096


@dataclass(frozen=True)
class TxSummary:
    """One transaction's durable footprint: its final version per
    home-region line, in one core's program order."""

    tx_id: int
    core: int
    index: int  # position in the core's transaction order
    writes: Tuple[Tuple[int, Version], ...]  # (line, final version)

    @property
    def lines(self) -> Tuple[int, ...]:
        return tuple(line for line, _ in self.writes)


def tx_summaries(traces: Sequence[Trace]) -> List[List[TxSummary]]:
    """Extract per-core transaction summaries from (unprepared) traces.

    Only versioned stores to the NVM home region count — scheme
    instrumentation regions (WAL logs, commit records) and DRAM
    scratch writes are not part of the program's persistent footprint.
    """
    summaries: List[List[TxSummary]] = []
    for core, trace in enumerate(traces):
        core_txs: List[TxSummary] = []
        open_tx: Optional[int] = None
        writes: Dict[int, Version] = {}
        for op in trace.ops:
            if op.op == OpType.TX_BEGIN:
                open_tx = op.tx_id
                writes = {}
            elif op.op == OpType.TX_END:
                if open_tx is not None:
                    core_txs.append(TxSummary(
                        tx_id=open_tx, core=core, index=len(core_txs),
                        writes=tuple(sorted(writes.items()))))
                open_tx = None
            elif (op.op == OpType.STORE and open_tx is not None
                  and op.version is not None and is_home_line(op.addr)):
                writes[line_addr(op.addr)] = op.version
        if open_tx is not None:
            # an unterminated trailing tx can never be durably
            # committed by a scheme, but synthetic oracles (tests
            # passing all tx ids) still count its writes
            core_txs.append(TxSummary(
                tx_id=open_tx, core=core, index=len(core_txs),
                writes=tuple(sorted(writes.items()))))
        summaries.append(core_txs)
    return summaries


def all_tx_ids(summaries: Sequence[Sequence[TxSummary]]) -> Set[int]:
    return {tx.tx_id for core_txs in summaries for tx in core_txs}


def prefix_violations(summaries: Sequence[Sequence[TxSummary]],
                      committed: AbstractSet[int]) -> List[str]:
    """Check write-order control: per core, the committed subset must
    be a program-order prefix of the core's *writing* transactions.

    Write-free transactions have no durable footprint, so a scheme
    that never marks them committed (SP emits no commit record for
    them) creates no observable ordering gap.
    """
    violations: List[str] = []
    for core_txs in summaries:
        gap: Optional[TxSummary] = None
        for tx in core_txs:
            if tx.tx_id not in committed:
                if gap is None and tx.writes:
                    gap = tx
            elif gap is not None:
                violations.append(
                    f"write-order violation on core {tx.core}: "
                    f"tx {tx.tx_id} durable before earlier tx {gap.tx_id}")
                break
    return violations


def legal_commit_sets(
        summaries: Sequence[Sequence[TxSummary]]) -> List[Set[int]]:
    """Every commit set a correct model may expose: the product of
    per-core program-order prefixes."""
    per_core_prefixes: List[List[Set[int]]] = []
    for core_txs in summaries:
        prefixes: List[Set[int]] = [set()]
        for tx in core_txs:
            prefixes.append(prefixes[-1] | {tx.tx_id})
        per_core_prefixes.append(prefixes)
    return [set().union(*combo) if combo else set()
            for combo in product(*per_core_prefixes)]


def line_candidates(summaries: Sequence[Sequence[TxSummary]],
                    committed: AbstractSet[int],
                    ) -> Dict[int, Set[Optional[Version]]]:
    """Per line, the set of versions a correct recovery may expose.

    For each core, only its *last* committed writer of the line
    contributes (program order forbids exposing overwritten values);
    across cores the candidates union (conflicting committed writers
    are unordered by the program alone).  A line no committed
    transaction wrote maps to ``{None}`` — it must be absent (or
    unversioned) in the recovered image.
    """
    candidates: Dict[int, Set[Optional[Version]]] = {}
    touched: Set[int] = set()
    for core_txs in summaries:
        last_write: Dict[int, Version] = {}
        for tx in core_txs:
            for line, version in tx.writes:
                touched.add(line)
                if tx.tx_id in committed:
                    last_write[line] = version
        for line, version in last_write.items():
            candidates.setdefault(line, set()).add(version)
    for line in touched:
        if line not in candidates:
            candidates[line] = {None}
    return candidates


def expected_image_from_summaries(
        summaries: Sequence[Sequence[TxSummary]],
        committed: AbstractSet[int]) -> Dict[int, Version]:
    """The old single-image expectation: per-core final committed
    writes merged in core order (later cores overwrite).  Exactly the
    legal image on conflict-free programs; on shared lines it picks
    the highest-numbered core's candidate, which is one member of the
    legal set."""
    expected: Dict[int, Version] = {}
    for core_txs in summaries:
        for tx in core_txs:
            if tx.tx_id in committed:
                for line, version in tx.writes:
                    expected[line] = version
    return expected


def legal_images(summaries: Sequence[Sequence[TxSummary]],
                 committed: AbstractSet[int],
                 limit: int = MAX_ENUMERATED_IMAGES,
                 ) -> List[Dict[int, Version]]:
    """Enumerate the full legal persist set for one commit set (for
    small programs / docs / the frozen corpus; the runner uses the
    O(lines) membership check instead).  Deterministic order."""
    cands = line_candidates(summaries, committed)
    lines = sorted(cands)
    choice_lists = [sorted(cands[line],
                           key=lambda v: (v is not None, str(v)))
                    for line in lines]
    count = 1
    for choices in choice_lists:
        count *= len(choices)
        if count > limit:
            raise ValueError(
                f"legal persist set larger than limit ({limit}); "
                "use check_membership instead of enumerating")
    images: List[Dict[int, Version]] = []
    for combo in product(*choice_lists):
        images.append({line: version
                       for line, version in zip(lines, combo)
                       if version is not None})
    return images


def check_membership(summaries: Sequence[Sequence[TxSummary]],
                     committed: AbstractSet[int],
                     recovered: Mapping[int, Optional[Version]],
                     ) -> List[str]:
    """Is ``recovered`` a member of the legal persist set for this
    commit set?  Returns human-readable violations (empty == legal).

    Checks, in order: per-core prefix closure of ``committed``, per
    line candidate membership (covers both torn/missing committed
    writes and stale overwritten versions), and uncommitted-data
    leaks on lines the program never committed a write to.
    """
    violations = list(prefix_violations(summaries, committed))
    known_tx = all_tx_ids(summaries)
    candidates = line_candidates(summaries, committed)

    for line in sorted(candidates):
        allowed = candidates[line]
        found = recovered.get(line)
        if found in allowed or allowed == {None}:
            # the {None} case (no committed writer) is covered by the
            # leak pass below, which also reports uncommitted data on
            # lines that *do* have committed candidates — matching the
            # historic two-pass check_recovery
            continue
        concrete = sorted((v for v in allowed if v is not None),
                          key=str)
        if len(concrete) == 1 and None not in allowed:
            # preserve the historic single-expectation message shape
            violations.append(
                f"line {line:#x}: expected committed {concrete[0]}, "
                f"found {found}")
        else:
            legal = ", ".join(str(v) for v in concrete)
            if None in allowed:
                legal += ", or absent"
            violations.append(
                f"line {line:#x}: found {found}, not in legal persist "
                f"set {{{legal}}}")

    # independent leak pass over the whole recovered image: any
    # versioned value from a known-but-uncommitted transaction is a
    # failure-atomicity violation, wherever it landed
    for line, found in recovered.items():
        if found is None or found.tx_id is None:
            continue
        if found.tx_id in known_tx and found.tx_id not in committed:
            violations.append(
                f"line {line:#x}: uncommitted data {found} "
                "leaked into NVM")
    return violations
