"""repro.litmus — persistency-model litmus engine.

Generated multi-core crash-interleaving programs, a scheme-independent
legal-persist-set oracle, and a runner that crashes every scheme at
every cycle and checks membership — the systematic validator the
ROADMAP's litmus item calls for (see docs/litmus.md).

The program/generator/oracle layers import only trace and type
primitives, so :mod:`repro.sim.crash` can build its recovery check on
the oracle without an import cycle; the simulation-facing pieces
(runner, minimizer, broken scheme) load lazily on first attribute
access.
"""

from .generator import (CLASSIC_SHAPES, default_suite, message_passing,
                        overlapping_tx, private_chain, random_program,
                        shared_counter, store_buffering)
from .oracle import (TxSummary, check_membership, expected_image_from_summaries,
                     legal_commit_sets, legal_images, line_candidates,
                     prefix_violations, tx_summaries)
from .program import LitmusOp, LitmusProgram, line_address

_LAZY = {
    "run_litmus": "runner",
    "run_litmus_matrix": "runner",
    "iter_crash_states": "runner",
    "LitmusResult": "runner",
    "LitmusMatrixReport": "runner",
    "scheme_label": "runner",
    "minimize_program": "minimize",
    "minimize_violation": "minimize",
    "reduction_candidates": "minimize",
    "CommitBeforeFlushScheme": "broken",
    "BROKEN_COMMIT": "broken",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)


__all__ = [
    "CLASSIC_SHAPES",
    "LitmusOp",
    "LitmusProgram",
    "TxSummary",
    "check_membership",
    "default_suite",
    "expected_image_from_summaries",
    "legal_commit_sets",
    "legal_images",
    "line_address",
    "line_candidates",
    "message_passing",
    "overlapping_tx",
    "prefix_violations",
    "private_chain",
    "random_program",
    "shared_counter",
    "store_buffering",
    "tx_summaries",
] + sorted(_LAZY)
