"""SECDED ECC model for transaction-cache lines.

The TC array is STT-RAM: reads can observe transient bit flips (read
disturb / retention errors).  Each TC line carries a SECDED codeword
(single-error-correct, double-error-detect over the 512-bit line):

* **0 flips** — clean read.
* **1 flip** — corrected in-line and the corrected word is scrubbed
  back to the array, so transient singles never accumulate.  (This is
  why the injector's per-read flip draws are memoryless.)
* **>= 2 flips** — detected but uncorrectable.  The line's *data* is
  still recoverable in the paper's design because every transactional
  store went to **both** the L1 (P/V-flagged) and the TC: the
  accelerator refills a committed entry from the cache copy
  (``refills``), while an *active* entry demotes its whole transaction
  to the copy-on-write overflow path — the graceful-degradation answer
  instead of crashing the run.

One :class:`SECDEDModel` instance guards one TC.  It also tracks the
TC's observed error rate; once the rate crosses
``FaultConfig.degrade_error_rate`` (after ``degrade_min_reads`` reads)
the TC is *degraded*: the scheme stops admitting new transactions into
it and runs them on the COW path instead.
"""

from __future__ import annotations

import enum

from ..common.config import FaultConfig
from ..common.stats import ScopedStats
from .injector import FaultInjector


class EccOutcome(enum.Enum):
    CLEAN = "clean"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"


class SECDEDModel:
    """Per-TC SECDED check-and-scrub model with degradation tracking."""

    def __init__(self, injector: FaultInjector, config: FaultConfig,
                 stats: ScopedStats) -> None:
        self.injector = injector
        self.config = config
        self.stats = stats
        self.reads = 0
        self.corrected = 0
        self.uncorrectable = 0
        self._degraded = False

    def read(self) -> EccOutcome:
        """ECC-check one TC line read; updates counters and the
        degradation state."""
        self.reads += 1
        self.stats.inc("reads")
        flips = self.injector.tc_read_flips()
        if flips == 0:
            return EccOutcome.CLEAN
        if flips == 1:
            self.corrected += 1
            self.stats.inc("corrected")
            self._update_degradation()
            return EccOutcome.CORRECTED
        self.uncorrectable += 1
        self.stats.inc("uncorrectable")
        self._update_degradation()
        return EccOutcome.UNCORRECTABLE

    # ------------------------------------------------------------------
    @property
    def error_rate(self) -> float:
        if not self.reads:
            return 0.0
        return (self.corrected + self.uncorrectable) / self.reads

    @property
    def degraded(self) -> bool:
        """Sticky: once a TC's error rate crosses the threshold it is
        never trusted with new transactions again."""
        return self._degraded

    def _update_degradation(self) -> None:
        if self._degraded:
            return
        if (self.reads >= self.config.degrade_min_reads
                and self.error_rate >= self.config.degrade_error_rate):
            self._degraded = True
            self.stats.inc("degraded")
