"""Fault injection and resilience modelling.

The reproduction's baseline (like the paper's MARSSx86 setup) assumes
perfect hardware: clean whole-system power cuts, an STT-RAM array that
never fails a write, and an acknowledgment path that never loses a
message.  This package models the imperfect variant and the hardware
mechanisms that answer each fault:

=====================================  ==================================
fault model                            resilience mechanism
=====================================  ==================================
stochastic NVM write failures          write-verify-retry with bounded
                                       retries + exponential backoff,
                                       then spare-row remap
                                       (:mod:`repro.memory.controller`)
lost / delayed / duplicated acks       ack timeout + idempotent,
                                       sequence-matched reissue
                                       (:mod:`repro.core.accelerator`)
single/double bit flips in TC lines    SECDED ECC: correct-and-scrub
                                       singles, detect doubles, degrade
                                       to the COW overflow path
                                       (:class:`~repro.faults.ecc.SECDEDModel`)
=====================================  ==================================

Everything is driven by one deterministic, seed-derived
:class:`~repro.faults.injector.FaultInjector`; with all fault rates at
zero no injector is constructed at all, so the fault layer is a strict
no-op on the baseline figures.
"""

from .injector import AckFate, FaultInjector, exponential_backoff
from .ecc import EccOutcome, SECDEDModel

__all__ = ["AckFate", "FaultInjector", "EccOutcome", "SECDEDModel",
           "exponential_backoff"]
