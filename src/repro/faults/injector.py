"""Deterministic, seed-driven fault injector.

One :class:`FaultInjector` is shared by every component of a system.
Each fault *site* (NVM write verification, the ack path, TC line reads)
draws from its own :class:`random.Random` stream, seeded from the
config seed and the site name — so enabling one fault model never
perturbs the draw sequence of another, and two runs with the same
config are bit-identical.

A site whose rate is zero never draws at all; a config with every rate
at zero never constructs an injector (see ``System``), which is how the
zero-rate strict-no-op guarantee is kept trivially true.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Tuple

from ..common.config import FaultConfig


def exponential_backoff(base: float, attempt: int,
                        max_doublings: int = 10) -> float:
    """Backoff before 1-based retry ``attempt``: ``base * 2**(attempt-1)``.

    Doubling is capped at ``max_doublings`` so the wait stays bounded
    however many retries a caller is configured for.  This is the one
    retry discipline shared by every bounded-retry path in the repo:
    NVM write-verify-retry (cycles, :meth:`FaultInjector.
    write_retry_backoff`) and the serving layer's worker-crash retry
    (seconds, :mod:`repro.serve.pool`).
    """
    return base * (1 << min(attempt - 1, max_doublings))


class AckFate(enum.Enum):
    """What the interconnect does to one acknowledgment message."""

    DELIVER = "deliver"
    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"


class FaultInjector:
    """Per-site deterministic RNG streams over a :class:`FaultConfig`."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._streams: Dict[str, random.Random] = {}
        # Binomial model of one TC line read: every data+check bit can
        # flip independently with tc_bit_flip_rate.  SECDED corrects
        # exactly one flip; >= 2 is uncorrectable.
        bits = self.TC_WORD_BITS
        p = config.tc_bit_flip_rate
        if p > 0:
            p0 = (1 - p) ** bits
            p1 = bits * p * (1 - p) ** (bits - 1)
            self._tc_p_clean = p0
            self._tc_p_single = p0 + p1
        else:
            self._tc_p_clean = 1.0
            self._tc_p_single = 1.0

    #: one TC line as seen by the ECC logic: 512 data bits + 11 SECDED
    #: check bits (SECDED over 512 bits needs ceil(log2(512)) + 2 = 11)
    TC_WORD_BITS = 512 + 11

    def _stream(self, site: str) -> random.Random:
        stream = self._streams.get(site)
        if stream is None:
            # string seeds hash via SHA-512 → stable across processes
            stream = random.Random(f"{self.config.seed}:{site}")
            self._streams[site] = stream
        return stream

    # ------------------------------------------------------------------
    # fault sites
    # ------------------------------------------------------------------
    def nvm_write_fails(self) -> bool:
        """Does this NVM array write attempt fail verification?"""
        rate = self.config.nvm_write_fail_rate
        if rate <= 0:
            return False
        return self._stream("nvm.write").random() < rate

    def write_retry_backoff(self, attempt: int) -> int:
        """Exponential backoff before retry number ``attempt`` (1-based)."""
        return int(exponential_backoff(self.config.retry_backoff_cycles,
                                       attempt))

    def ack_fate(self) -> Tuple[AckFate, int]:
        """Fate of one acknowledgment message: ``(fate, delay_cycles)``."""
        cfg = self.config
        if cfg.ack_loss_rate <= 0 and cfg.ack_delay_rate <= 0 \
                and cfg.ack_duplicate_rate <= 0:
            return AckFate.DELIVER, 0
        draw = self._stream("nvm.ack").random()
        if draw < cfg.ack_loss_rate:
            return AckFate.DROP, 0
        draw -= cfg.ack_loss_rate
        if draw < cfg.ack_delay_rate:
            return AckFate.DELAY, cfg.ack_delay_cycles
        draw -= cfg.ack_delay_rate
        if draw < cfg.ack_duplicate_rate:
            return AckFate.DUPLICATE, 0
        return AckFate.DELIVER, 0

    def tc_read_flips(self) -> int:
        """Flipped bits observed by one ECC-checked TC line read:
        0 (clean), 1 (correctable) or 2 (meaning >= 2, uncorrectable)."""
        if self.config.tc_bit_flip_rate <= 0:
            return 0
        draw = self._stream("tc.read").random()
        if draw < self._tc_p_clean:
            return 0
        if draw < self._tc_p_single:
            return 1
        return 2
