"""Persistence-scheme interface and the no-persistence baseline.

A scheme is the pluggable policy layer between the core's trace
execution and the cache/memory substrate.  The paper compares four
(§5.1): *Optimal* (native, no persistence), *SP* (software write-ahead
logging with flush/fence ordering), *Kiln* (nonvolatile LLC, [23]) and
*TC* (the proposed transaction-cache accelerator).

The interface is continuation-passing because operations may complete
synchronously (cache hit) or via a later event (memory fill, fence
drain, TC-full stall):

* ``load(core, op, on_complete)`` — ``on_complete(latency, version)``.
* ``store(core, op, on_issue, on_retire)`` — ``on_issue(latency)``
  fires when the core may move past the store (this is where a full
  transaction cache stalls the pipeline); ``on_retire(latency)`` fires
  when the store leaves the store buffer (L1 write done).
* ``tx_begin/tx_end/clwb/sfence(core, op, resume)`` — ``resume()``
  fires when the core may continue.

Schemes also expose the recovery model: :meth:`durable_lines` answers
"after a crash at cycle *t*, what line→version map does recovery
produce?" — the contract checked by the crash-consistency tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from ..cache.hierarchy import CacheHierarchy
from ..common.config import MachineConfig
from ..common.event import Simulator
from ..common.stats import Stats
from ..common.types import SchemeName, Version
from ..cpu.trace import Trace
from ..memory.system import MemorySystem
from ..obs.tracer import NULL_TRACER, NullTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cpu.core import Core

LoadComplete = Callable[[int, Optional[Version]], None]
StoreIssue = Callable[[int], None]
StoreRetire = Callable[[int], None]
Resume = Callable[[], None]


class PersistenceScheme:
    """Base class; behaves as the paper's *Optimal* (no persistence)."""

    name = SchemeName.OPTIMAL

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        stats: Stats,
        hierarchy: CacheHierarchy,
        memory: MemorySystem,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.sim = sim
        self.config = config
        self.stats = stats.scoped(f"scheme.{self.name.value}")
        self.hierarchy = hierarchy
        self.memory = memory
        self.tracer = tracer
        #: transactions whose commit is complete from the scheme's view
        self.committed_tx: set = set()

    # ------------------------------------------------------------------
    # trace preparation
    # ------------------------------------------------------------------
    def prepare_trace(self, trace: Trace) -> Trace:
        """Transform a scheme-independent workload trace into what this
        scheme's software layer actually executes.  Default: unchanged
        (hardware schemes need no extra instructions — paper §5.1: only
        SP 'runs the transactions with logging operations')."""
        return trace

    # ------------------------------------------------------------------
    # execution hooks
    # ------------------------------------------------------------------
    def load(self, core: "Core", op, on_complete: LoadComplete) -> None:
        self.hierarchy.load(core.core_id, op.addr, on_complete)

    def store(self, core: "Core", op, on_issue: StoreIssue,
              on_retire: StoreRetire) -> None:
        self.hierarchy.store(
            core.core_id, op.addr, op.version,
            persistent=op.persistent, tx_id=op.tx_id,
            on_complete=on_retire,
        )
        on_issue(1)

    def tx_begin(self, core: "Core", op, resume: Resume) -> None:
        resume()

    def tx_end(self, core: "Core", op, resume: Resume) -> None:
        self.committed_tx.add(op.tx_id)
        resume()

    def clwb(self, core: "Core", op, resume: Resume) -> None:
        # Hardware schemes never execute CLWB; treat as a no-op hint.
        resume()

    def sfence(self, core: "Core", op, resume: Resume) -> None:
        resume()

    # ------------------------------------------------------------------
    # completion / recovery
    # ------------------------------------------------------------------
    def busy(self) -> bool:
        """True while scheme-owned background work is still in flight."""
        return False

    def durable_lines(self, crash_cycle: int) -> Dict[int, Optional[Version]]:
        """Line→version map recovery would reconstruct after a crash at
        ``crash_cycle``.  The Optimal scheme guarantees nothing: it
        returns the raw NVM contents (which may tear transactions —
        that is exactly the paper's Fig. 2a failure case)."""
        return self.memory.durable_state_at(crash_cycle)

    def durably_committed(self, crash_cycle: int) -> set:
        """Transaction ids recovery would consider committed after a
        crash at ``crash_cycle``.  Optimal has no notion of recovery."""
        return set()


class OptimalScheme(PersistenceScheme):
    """Native execution without persistence guarantee (paper §5.1)."""

    name = SchemeName.OPTIMAL
