"""Kiln-style baseline: a nonvolatile last-level cache ([23] in the paper).

The prior hardware scheme the paper compares against keeps persistence
inside the cache hierarchy itself:

* the LLC is built from NVM technology, so data that reaches it is
  durable;
* **uncommitted** transaction lines that land in the LLC are *pinned* —
  they may not be evicted to memory (that would expose partial
  transactions) nor dropped (the LLC is their only durable copy).  This
  is the capacity pressure behind the paper's Fig. 8 (≈6 % higher LLC
  miss rate);
* at commit, the transaction's dirty lines are **flushed from L1/L2
  into the NV-LLC**, and the hierarchy is blocked while the flush
  drains — "blocks subsequent cache and memory requests during
  transaction commits and results in bursts of traffic" (paper §5.2).
  This is the source of Kiln's IPC/throughput gap (Fig. 6/7) and its
  ~2.4x persistent load latency (Fig. 10);
* committed lines are clean-on-commit from the transaction's point of
  view: they unpin and flow to the NVM only through normal LLC
  evictions (hence Kiln's NVM write traffic sits *below* the TC's in
  Fig. 9 — commits coalesce in the LLC).

Durability model: the NV-LLC guarantees that once a transaction's
commit flush completes, its writes survive a crash.  Recovery discards
pinned (uncommitted) lines.  We track the committed-version map at the
scheme level; the mechanism (flush + pin) is simulated cycle-by-cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..common.types import SchemeName, Version, is_home_line, line_addr
from ..obs.tracer import NULL_TRACER
from .base import PersistenceScheme, Resume, StoreIssue, StoreRetire


class KilnScheme(PersistenceScheme):
    """Nonvolatile-LLC persistence (flush-on-commit, pin-uncommitted)."""

    name = SchemeName.KILN

    #: NV-LLC access-latency penalty vs the SRAM LLC it replaces
    #: (STT-RAM reads are slower; see paper §2.2 / [17]).
    NV_LLC_LATENCY_FACTOR = 1.5

    def __init__(self, sim, config, stats, hierarchy, memory,
                 tracer=NULL_TRACER) -> None:
        super().__init__(sim, config, stats, hierarchy, memory, tracer)
        hierarchy.llc_pin_predicate = self._pin_uncommitted
        # the LLC is now STT-RAM: every access through it is slower
        hierarchy.llc.latency = int(round(
            hierarchy.llc.latency * self.NV_LLC_LATENCY_FACTOR))
        #: lines written by each still-open transaction
        self._open_tx_lines: Dict[int, Set[int]] = {}
        #: program-order versions written by each open transaction
        self._open_tx_versions: Dict[int, Dict[int, Version]] = {}
        #: cycle at which each transaction's commit flush completed
        self.commit_cycle: Dict[int, int] = {}
        #: per-transaction committed line versions (NV-LLC durability)
        self._tx_committed_writes: Dict[int, Dict[int, Version]] = {}
        #: commit order, for recovery replay
        self._commit_order: List[int] = []

    # ------------------------------------------------------------------
    def _pin_uncommitted(self, tx_id: Optional[int]) -> bool:
        """Hierarchy hook: pin dirty persistent LLC arrivals whose
        transaction has not committed yet."""
        return tx_id is not None and tx_id in self._open_tx_lines

    # ------------------------------------------------------------------
    def store(self, core, op, on_issue: StoreIssue,
              on_retire: StoreRetire) -> None:
        in_tx_persistent = core.in_transaction and op.persistent
        self.hierarchy.store(
            core.core_id, op.addr, op.version,
            persistent=in_tx_persistent, tx_id=op.tx_id,
            on_complete=on_retire,
        )
        if in_tx_persistent:
            line = line_addr(op.addr)
            self._open_tx_lines.setdefault(core.mode_tx, set()).add(line)
            if op.version is not None:
                self._open_tx_versions.setdefault(
                    core.mode_tx, {})[line] = op.version
            # Uncommitted blocks already resident in the NV-LLC must not
            # be replaced (paper §5.2) — pin them where they stand; the
            # llc_pin_predicate hook pins any that arrive later.
            entry = self.hierarchy.llc.probe(line)
            if entry is not None:
                entry.pinned = True
                entry.tx_id = core.mode_tx
        on_issue(1)

    def tx_begin(self, core, op, resume: Resume) -> None:
        self._open_tx_lines.setdefault(op.tx_id, set())
        resume()

    def tx_end(self, core, op, resume: Resume) -> None:
        """Commit: flush the transaction's lines from L1/L2 into the
        NV-LLC, blocking the hierarchy for the duration."""
        tx_id = op.tx_id
        lines = sorted(self._open_tx_lines.pop(tx_id, set()))
        flush_cycles = 0
        for line in lines:
            flush_cycles += self.hierarchy.flush_to_llc(core.core_id, line)
            self.hierarchy.unpin_llc_line(line)
        done = self.sim.now + flush_cycles
        if lines:
            self.hierarchy.block_until(done)
            self.stats.inc("commit_flush_lines", len(lines))
            self.stats.inc("commit_flush_cycles", flush_cycles)
        self.commit_cycle[tx_id] = done
        self._commit_order.append(tx_id)
        self.committed_tx.add(tx_id)
        # record the now-durable versions (they are in the NV-LLC);
        # taken from the program-order store record so a commit racing
        # an outstanding store-miss fill still captures the right data
        self._tx_committed_writes[tx_id] = \
            self._open_tx_versions.pop(tx_id, {})

        if flush_cycles:
            # the committing core waits out the flush: charge it to
            # "flush", not the generic tx_end default of "commit"
            core.attribute_stall("flush")
            if self.tracer.enabled:
                self.tracer.complete("scheme", "kiln", "commit.flush",
                                     self.sim.now, flush_cycles,
                                     tx=tx_id, lines=len(lines))
            self.sim.schedule(flush_cycles, resume)
        else:
            resume()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def durably_committed(self, crash_cycle: int) -> set:
        return {tx for tx, cycle in self.commit_cycle.items()
                if cycle <= crash_cycle}

    def durable_lines(self, crash_cycle: int) -> Dict[int, Optional[Version]]:
        """NV-LLC recovery: the NVM image plus every committed line
        still resident (durably) in the nonvolatile LLC; pinned
        (uncommitted) lines are discarded."""
        committed = self.durably_committed(crash_cycle)
        recovered = {
            line: version
            for line, version in self.memory.durable_state_at(crash_cycle).items()
            if is_home_line(line)
        }
        for tx_id in self._commit_order:
            if tx_id not in committed:
                continue
            recovered.update(self._tx_committed_writes.get(tx_id, {}))
        return recovered
