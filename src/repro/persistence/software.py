"""SP — software-supported persistence (write-ahead logging baseline).

The paper's SP baseline (§5.1) "supports write-ahead logging and
ensures the write ordering through software instructions" — the
``log()`` calls, ``clwb`` flushes and fences of Fig. 2(b)/3(a).

:meth:`SoftwareScheme.prepare_trace` rewrites each transaction into the
undo-log protocol a library like Mnemosyne/NV-heaps executes:

1. for every persistent store, construct a log entry (a few ALU
   instructions), store it to the per-core log region, and ``clwb`` it;
2. ``sfence`` — the undo log is durable before any in-place write;
3. the original transaction body (in-place writes, cached);
4. ``clwb`` every written data line and ``sfence`` — data durable;
5. store + ``clwb`` + ``sfence`` a per-transaction commit record — the
   atomicity point.

Recovery: transactions whose commit record is durable are complete
(their data was flushed before the record); all others are rolled back
from the undo log — any of their in-place writes that reached the NVM
are restored to the pre-transaction value.  The undo values are
captured at *runtime*, in the global (architectural) order the stores
actually issue in: computing them per-core at trace-preparation time —
the original implementation — silently assumed cores never write the
same line, and on cross-core conflict programs (the litmus matrix)
would roll a line back past another core's committed write.

This is where the paper's SP costs come from: roughly 2x NVM write
traffic (log + data + record) and serialized flush/fence stalls on the
critical path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.types import (
    HOME_REGION_LIMIT,
    SchemeName,
    Version,
    is_home_line,
    is_persistent_addr,
    line_addr,
)
from ..cpu.trace import OpType, Trace, TraceOp
from ..obs.tracer import NULL_TRACER
from .base import PersistenceScheme, Resume

#: per-core undo-log regions (scheme metadata: above the home region)
SP_LOG_BASE = HOME_REGION_LIMIT
SP_LOG_STRIDE = 1 << 30          # per-core log spacing
SP_LOG_WRAP = 1 << 20            # circular log size per core
#: commit records, one line per transaction
SP_RECORD_BASE = HOME_REGION_LIMIT + (1 << 35)

#: ALU instructions charged per log() call (address/value marshalling)
LOG_COMPUTE_COST = 2
#: sequence-number space for injected log stores (disjoint from app stores)
_LOG_SEQ_BASE = 1 << 20


def sp_record_addr(tx_id: int) -> int:
    return SP_RECORD_BASE + tx_id * 64


def tx_of_record_line(line: int) -> Optional[int]:
    if line < SP_RECORD_BASE:
        return None
    return (line - SP_RECORD_BASE) // 64


class SoftwareScheme(PersistenceScheme):
    """SP: write-ahead logging + clwb/sfence ordering in software."""

    name = SchemeName.SP

    def __init__(self, sim, config, stats, hierarchy, memory,
                 tracer=NULL_TRACER) -> None:
        super().__init__(sim, config, stats, hierarchy, memory, tracer)
        self._log_cursor: Dict[int, int] = {}   # per-trace log allocation
        self._next_log_region = 0
        # outstanding clwb writebacks per core, and fence waiters
        self._outstanding: Dict[int, int] = {}
        self._fence_waiters: Dict[int, List[Resume]] = {}
        # recovery bookkeeping, captured at runtime in store-issue
        # order: (tx, line, pre-store version) per in-place data store,
        # plus the current architectural version per data line
        self._undo_log: List[Tuple[int, int, Optional[Version]]] = []
        self._current_version: Dict[int, Optional[Version]] = {}
        # commit-record durability, observed at runtime
        self.record_durable: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # trace instrumentation (the 'software instructions' of Fig. 2b)
    # ------------------------------------------------------------------
    def prepare_trace(self, trace: Trace) -> Trace:
        region = self._next_log_region
        self._next_log_region += 1
        log_base = SP_LOG_BASE + region * SP_LOG_STRIDE
        log_cursor = 0
        out = Trace(name=f"{trace.name}+sp")
        pending_tx: Optional[List[TraceOp]] = None
        open_tx: Optional[int] = None

        def emit_tx(tx_id: int, body: List[TraceOp]) -> None:
            nonlocal log_cursor
            stores = [op for op in body
                      if op.op is OpType.STORE and op.persistent]
            writes: Dict[int, Version] = {}
            out.ops.append(TraceOp(OpType.TX_BEGIN, tx_id=tx_id))
            # 1. build + persist the undo log.  Each log record is
            # 16 B (address + 64-bit old value), packed four per line;
            # one clwb per touched log line.
            touched_log_lines: Dict[int, None] = {}
            for index, store in enumerate(stores):
                data_line = line_addr(store.addr)
                writes[data_line] = store.version
                log_entry = log_base + (log_cursor % SP_LOG_WRAP)
                log_cursor += 16
                out.ops.append(TraceOp(OpType.COMPUTE, count=LOG_COMPUTE_COST))
                out.ops.append(TraceOp(
                    OpType.STORE, addr=log_entry, tx_id=tx_id,
                    version=Version(tx_id, _LOG_SEQ_BASE + index)))
                touched_log_lines[line_addr(log_entry)] = None
            for log_line in touched_log_lines:
                out.ops.append(TraceOp(OpType.CLWB, addr=log_line, tx_id=tx_id))
            if stores:
                out.ops.append(TraceOp(OpType.SFENCE, tx_id=tx_id))
            # 2. original body
            out.ops.extend(body)
            # 3. force data home, then the commit record
            if stores:
                for data_line in writes:
                    out.ops.append(TraceOp(OpType.CLWB, addr=data_line,
                                           tx_id=tx_id))
                out.ops.append(TraceOp(OpType.SFENCE, tx_id=tx_id))
                record = sp_record_addr(tx_id)
                out.ops.append(TraceOp(
                    OpType.STORE, addr=record, tx_id=tx_id,
                    version=Version(tx_id, -1)))
                out.ops.append(TraceOp(OpType.CLWB, addr=record, tx_id=tx_id))
                out.ops.append(TraceOp(OpType.SFENCE, tx_id=tx_id))
            out.ops.append(TraceOp(OpType.TX_END, tx_id=tx_id))

        for op in trace.ops:
            if op.op is OpType.TX_BEGIN:
                open_tx = op.tx_id
                pending_tx = []
            elif op.op is OpType.TX_END:
                emit_tx(open_tx, pending_tx)
                open_tx = None
                pending_tx = None
            elif pending_tx is not None:
                pending_tx.append(op)
            else:
                out.ops.append(op)
        out.validate()
        return out

    # ------------------------------------------------------------------
    # runtime: in-place data stores (undo capture)
    # ------------------------------------------------------------------
    def store(self, core, op, on_issue, on_retire) -> None:
        # Record the pre-store architectural version in global issue
        # order.  Log-region and commit-record stores are outside the
        # home region and are not captured; the capture order matches
        # the hierarchy's architectural write order because both are
        # updated synchronously from this same event.
        if op.persistent and is_home_line(op.addr):
            data_line = line_addr(op.addr)
            if op.tx_id is not None and op.version is not None:
                self._undo_log.append(
                    (op.tx_id, data_line,
                     self._current_version.get(data_line)))
            self._current_version[data_line] = op.version
        super().store(core, op, on_issue, on_retire)

    # ------------------------------------------------------------------
    # runtime: clwb / sfence
    # ------------------------------------------------------------------
    def clwb(self, core, op, resume: Resume) -> None:
        core_id = core.core_id
        self._outstanding[core_id] = self._outstanding.get(core_id, 0) + 1
        line = line_addr(op.addr)

        def written_back(cycle: int) -> None:
            tx_id = tx_of_record_line(line)
            if tx_id is not None and tx_id not in self.record_durable:
                self.record_durable[tx_id] = cycle
                self.committed_tx.add(tx_id)
            self._outstanding[core_id] -= 1
            if self._outstanding[core_id] == 0:
                waiters = self._fence_waiters.pop(core_id, [])
                for waiter in waiters:
                    waiter()

        self.hierarchy.writeback_line(core_id, line, written_back)
        resume()  # clwb itself is asynchronous; sfence orders it

    def sfence(self, core, op, resume: Resume) -> None:
        if self._outstanding.get(core.core_id, 0) == 0:
            resume()
            return
        self.stats.inc("fence_waits")
        # the core charges the wait to "fence" by default; the phase
        # marker makes the ordering stall visible on the scheme track
        if self.tracer.enabled:
            start = self.sim.now
            inner = resume

            def traced_resume() -> None:
                self.tracer.complete("scheme", f"sp.core{core.core_id}",
                                     "fence.wait", start,
                                     self.sim.now - start)
                inner()

            resume = traced_resume
        self._fence_waiters.setdefault(core.core_id, []).append(resume)

    def tx_end(self, core, op, resume: Resume) -> None:
        # durability was established by the preceding record clwb+sfence
        resume()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def busy(self) -> bool:
        return any(count for count in self._outstanding.values())

    def durably_committed(self, crash_cycle: int) -> set:
        return {tx for tx, cycle in self.record_durable.items()
                if cycle <= crash_cycle}

    def durable_lines(self, crash_cycle: int) -> Dict[int, Optional[Version]]:
        """Undo-log recovery: roll back every in-place write of an
        uncommitted transaction that reached the NVM.

        The undo log is unwound newest-first across *all* cores, so a
        chain of conflicting stores rolls back as a stack: restoring a
        pre-value that itself belongs to an uncommitted transaction is
        immediately undone by that transaction's own (earlier) entry.
        """
        committed = self.durably_committed(crash_cycle)
        recovered = {
            line: version
            for line, version in self.memory.durable_state_at(crash_cycle).items()
            if is_home_line(line)
        }
        for tx_id, data_line, old_version in reversed(self._undo_log):
            if tx_id in committed:
                continue
            found = recovered.get(data_line)
            if found is not None and found.tx_id == tx_id:
                if old_version is None:
                    recovered.pop(data_line, None)
                else:
                    recovered[data_line] = old_version
        return recovered
