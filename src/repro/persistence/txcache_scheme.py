"""The paper's scheme: persistence via the transaction-cache accelerator.

Wiring (paper §3, "Persistent Memory Accelerator Working Flow"):

* In transaction mode, every persistent store goes to **both** the L1
  (tagged with the P/V flag, so the hierarchy can later drop it) and
  the core's transaction cache — non-blocking, unless the TC is full,
  in which case the CPU stalls until an NVM acknowledgment frees room.
* ``TX_END`` sends a commit request to the TC; the core continues
  immediately (commit work happens on the side data path).
* Dirty persistent LLC victims are **dropped** — the NVM only ever
  receives the consistent, ordered stream issued by the TC.
* LLC misses on persistent lines probe the TCs for the newest version.
* A transaction that would overflow the TC (≥ 90 % occupancy) falls
  back to hardware-controlled copy-on-write
  (:mod:`repro.core.overflow`).

Recovery: committed-but-unacked entries in the (nonvolatile) TCs are
replayed onto the NVM image; active entries are discarded; fallback
transactions apply iff their commit record is durable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.types import SchemeName, Version, is_home_line, line_addr
from ..core.accelerator import PersistentMemoryAccelerator
from ..core.overflow import OverflowManager
from ..obs.tracer import NULL_TRACER
from .base import PersistenceScheme, Resume, StoreIssue, StoreRetire


class TxCacheScheme(PersistenceScheme):
    """Persistent memory accelerator (the paper's 'TC' mechanism)."""

    name = SchemeName.TXCACHE

    def __init__(self, sim, config, stats, hierarchy, memory,
                 tracer=NULL_TRACER) -> None:
        super().__init__(sim, config, stats, hierarchy, memory, tracer)
        self.accelerator = PersistentMemoryAccelerator(
            sim, config, stats, memory, tracer=tracer)
        self.overflow = OverflowManager(sim, memory, stats.scoped("tc.overflow"))
        self.accelerator.uncorrectable_handler = self._on_uncorrectable
        hierarchy.drop_persistent_evictions = True
        hierarchy.llc_probe = self._probe
        #: commit-request arrival cycle per transaction (the durability
        #: point: the TC array is nonvolatile)
        self.commit_cycle: Dict[int, int] = {}
        #: home lines written per transaction, for ordered recovery
        self._tx_writes: Dict[int, Dict[int, Version]] = {}

    # ------------------------------------------------------------------
    # LLC miss probe
    # ------------------------------------------------------------------
    def _probe(self, line: int) -> Optional[Tuple[int, Optional[Version]]]:
        hit = self.accelerator.llc_probe(line)
        if hit is not None:
            return hit
        # Copy-on-write path: data diverted to the shadow region is not
        # in any TC; serve the newest shadow value so the program always
        # observes its own writes.
        newest: Optional[Version] = None
        for state in self.overflow.fallback.values():
            version = state.writes.get(line)
            if version is not None and (newest is None or
                                        (version.seq, version.tx_id or 0)
                                        > (newest.seq, newest.tx_id or 0)):
                newest = version
        if newest is not None:
            return self.accelerator.latency, newest
        return None

    # ------------------------------------------------------------------
    # execution hooks
    # ------------------------------------------------------------------
    def store(self, core, op, on_issue: StoreIssue,
              on_retire: StoreRetire) -> None:
        in_tx_persistent = core.in_transaction and op.persistent
        # The L1 write happens in every mode; only transaction-mode
        # persistent stores carry the P/V flag (paper §4.2).
        self.hierarchy.store(
            core.core_id, op.addr, op.version,
            persistent=in_tx_persistent, tx_id=op.tx_id,
            on_complete=on_retire,
        )
        if not in_tx_persistent:
            on_issue(1)
            return
        tx_id = core.mode_tx
        self._tx_writes.setdefault(tx_id, {})[line_addr(op.addr)] = op.version
        if self.overflow.active_fallback_for(core.core_id) == tx_id:
            self.overflow.write(core.core_id, tx_id, op.addr, op.version)
            on_issue(1)
            return
        if self._should_fall_back(core.core_id, tx_id):
            self._divert(core.core_id, tx_id)
            self.overflow.write(core.core_id, tx_id, op.addr, op.version)
            on_issue(1)
            return
        self._tc_write(core, tx_id, op, on_issue)

    def _should_fall_back(self, core_id: int, tx_id: int) -> bool:
        """Fall back to copy-on-write only for the case the paper built
        it for: a *transaction* about to exceed the TC capacity (§4.1).
        Occupancy from committed entries awaiting acknowledgments is
        ordinary back-pressure and is handled by stalling instead.

        Graceful degradation (fault injection): a TC whose observed
        ECC error rate crossed the configured threshold is no longer
        trusted — every new transaction runs on the COW path."""
        if self.accelerator.degraded(core_id):
            self.stats.inc("degraded_fallbacks")
            return True
        if not self.accelerator.near_overflow(core_id):
            return False
        tc = self.accelerator.tcs[core_id]
        return tc.count_active(tx_id) >= tc.capacity // 4

    def _on_uncorrectable(self, core_id: int, entry) -> None:
        """An *active* TC entry read back with an uncorrectable double
        bit error: demote its transaction to the COW path (its write
        data is reconstructed from the P/V-flagged cache copies that
        every transactional store also updated) instead of failing."""
        tx_id = entry.tx_id
        if self.overflow.is_fallback(tx_id):
            return
        self.stats.inc("ecc_fallbacks")
        self._divert(core_id, tx_id)

    def _tc_write(self, core, tx_id: int, op, on_issue: StoreIssue) -> None:
        accepted = self.accelerator.cpu_write(
            core.core_id, tx_id, op.addr, op.version)
        if accepted:
            on_issue(1)
            return

        if not self.accelerator.tcs[core.core_id].is_full():
            # Rejected with free capacity: an *associativity* overflow
            # (only possible with the set-associative organization —
            # paper §4.1: the CAM FIFO "is not susceptible" to these).
            # Waiting could deadlock if the blocking entries belong to
            # this very transaction, so fall back to copy-on-write now.
            self.stats.inc("assoc_overflow_fallbacks")
            self._divert(core.core_id, tx_id)
            self.overflow.write(core.core_id, tx_id, op.addr, op.version)
            on_issue(1)
            return

        # TC full: the CPU stalls until an acknowledgment frees an entry.
        def retry() -> None:
            if self.overflow.is_fallback(tx_id):
                # Demoted while stalled (e.g. an uncorrectable ECC
                # error on one of its entries): continue on COW.
                self.overflow.write(core.core_id, tx_id, op.addr, op.version)
                on_issue(1)
                return
            if self._should_fall_back(core.core_id, tx_id):
                self._divert(core.core_id, tx_id)
                self.overflow.write(core.core_id, tx_id, op.addr, op.version)
                on_issue(1)
                return
            self._tc_write(core, tx_id, op, on_issue)

        self.stats.inc("tc_full_stalls")
        # the store's issue is now delayed by TC back-pressure: charge
        # the stalled cycles to "tc_full", not the generic store default
        core.attribute_stall("tc_full")
        if self.tracer.enabled:
            self.tracer.instant("scheme", "txcache", "tc.full_stall",
                                self.sim.now, core=core.core_id, tx=tx_id)
        self.accelerator.wait_for_space(core.core_id, retry)

    def _divert(self, core_id: int, tx_id: int) -> None:
        """Demote the running transaction to the COW fall-back path."""
        dropped = self.accelerator.tcs[core_id].drop_transaction(tx_id)
        if self.tracer.enabled:
            self.tracer.instant("scheme", "txcache", "cow.divert",
                                self.sim.now, core=core_id, tx=tx_id,
                                dropped=len(dropped))
        self.overflow.divert(
            core_id, tx_id, [(e.tag, e.version) for e in dropped])

    def tx_end(self, core, op, resume: Resume) -> None:
        tx_id = op.tx_id
        if self.overflow.is_fallback(tx_id):
            # the core waits for the COW commit record to be durable in
            # the NVM — an acknowledgment wait, not a commit flush
            core.attribute_stall("ack_wait")
            if self.tracer.enabled:
                start = self.sim.now

                def committed() -> None:
                    self.tracer.complete("scheme", "txcache", "cow.commit",
                                         start, self.sim.now - start,
                                         tx=tx_id)
                    self.commit_cycle[tx_id] = self.sim.now
                    self.committed_tx.add(tx_id)
                    resume()
            else:
                def committed() -> None:
                    self.commit_cycle[tx_id] = self.sim.now
                    self.committed_tx.add(tx_id)
                    resume()

            self.overflow.commit(core.core_id, tx_id, committed)
            return
        self.accelerator.cpu_commit(core.core_id, tx_id)
        if self.tracer.enabled:
            self.tracer.instant("scheme", "txcache", "commit.msg",
                                self.sim.now, core=core.core_id, tx=tx_id)
        self.commit_cycle[tx_id] = self.sim.now
        self.committed_tx.add(tx_id)
        resume()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def busy(self) -> bool:
        return self.accelerator.busy() or self.overflow.busy()

    def durably_committed(self, crash_cycle: int) -> set:
        committed = {tx for tx, cycle in self.commit_cycle.items()
                     if cycle <= crash_cycle
                     and not self.overflow.is_fallback(tx)}
        committed.update(
            state.tx_id for state in self.overflow.committed_at(crash_cycle))
        return committed

    def durable_lines(self, crash_cycle: int) -> Dict[int, Optional[Version]]:
        """Recovery output after a crash at ``crash_cycle``.

        The simulation must be paused at (or after all activity up to)
        the crash cycle: the NVM image is replayed from its timeline,
        while the nonvolatile TC contents are read in place."""
        recovered = {
            line: version
            for line, version in self.memory.durable_state_at(crash_cycle).items()
            if is_home_line(line)
        }
        # Apply recovered transactions in commit order so conflicting
        # lines end up with the newest committed version — and never
        # overwrite durable data that a *later*-committed transaction
        # already put in place (a fall-back transaction's pending home
        # copies can be older than a subsequent TC write to the line).
        replay: List[Tuple[int, Dict[int, Optional[Version]]]] = []
        for tc in self.accelerator.tcs:
            by_tx: Dict[int, Dict[int, Optional[Version]]] = {}
            for entry in tc.committed_unacked():
                by_tx.setdefault(entry.tx_id, {})[entry.tag] = entry.version
            for tx_id, lines in by_tx.items():
                replay.append((self.commit_cycle.get(tx_id, 0), lines))
        for state in self.overflow.committed_at(crash_cycle):
            replay.append((state.record_durable_at, dict(state.writes)))

        def commit_of(version: Optional[Version]) -> int:
            if version is None or version.tx_id is None:
                return -1
            return self.commit_cycle.get(version.tx_id, -1)

        for cycle, lines in sorted(replay, key=lambda item: item[0]):
            for line, version in lines.items():
                if commit_of(recovered.get(line)) <= cycle:
                    recovered[line] = version
        return recovered
