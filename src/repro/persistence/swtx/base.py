"""Shared machinery of the software-transaction (swtx) schemes.

The three swtx schemes — undo-log, redo-log and hybrid DRAM-logged —
are *software* competitors to the paper's hardware transaction cache:
like SP they instrument the trace and drive ordinary clwb/sfence
ordering, but each picks a different point in the classic WAL design
space (see :mod:`repro.persistence.swtx`).

This base class centralizes what all three share:

* the **log address layout** — per-core NVM log windows, per-tx commit
  record lines and per-core truncation-head lines above the application
  home region, plus the DRAM-side log window the hybrid scheme uses.
  All of it satisfies :func:`~repro.common.types.is_log_region`, so a
  memory controller with ``log_banks`` reserved steers it to the
  dedicated log banks;
* **clwb/sfence ordering** with *split* outstanding-writeback counts:
  an sfence that waits on log-line writebacks attributes its stall to
  ``log_flush`` (the new swtx stall kind) instead of the generic
  ``fence``, so the Fig.-6-style breakdown separates "waiting for the
  log" from "waiting for data";
* **commit-record durability** observed at runtime (the
  ``record_durable`` map every scheme's :meth:`durably_committed` and
  the litmus stepped runner read), and the shared **redo-replay
  engine**: post-commit in-place writes with a bounded backlog window
  whose back-pressure parks commits under ``log_replay``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ...common.types import (
    DRAM_LOG_BASE,
    HOME_REGION_LIMIT,
    NVM_BASE,
    Version,
    is_home_line,
    line_addr,
)
from ...obs.tracer import NULL_TRACER
from ..base import PersistenceScheme, Resume

# -- NVM log layout (scheme metadata: above the application home region)
#: per-core log windows; is_log_region() holds for everything below
LOG_BASE = HOME_REGION_LIMIT
LOG_STRIDE = 1 << 30         # per-core log spacing
LOG_WRAP = 1 << 20           # circular log size per core
LOG_ENTRY_BYTES = 16         # address + 64-bit value, four per line
#: per-core log truncation heads, one line each
HEAD_BASE = HOME_REGION_LIMIT + (1 << 34)
#: per-transaction commit records, one line each
RECORD_BASE = HOME_REGION_LIMIT + (1 << 35)
RECORD_LIMIT = HOME_REGION_LIMIT + (1 << 36)
#: NVM mirror of the hybrid scheme's DRAM log (same offsets)
MIRROR_BASE = NVM_BASE + (1 << 37)

# -- DRAM log layout (the hybrid scheme's volatile side)
#: per-core DRAM log windows (same stride/wrap as the NVM ones)
DRAM_LOG_LIMIT = DRAM_LOG_BASE + (1 << 34)
#: DRAM-resident commit records, one line per transaction
DRAM_RECORD_BASE = DRAM_LOG_BASE + (1 << 35)
DRAM_RECORD_LIMIT = DRAM_LOG_BASE + (1 << 36)
#: DRAM shadow of the home region (DudeTM-style redirected writes)
SHADOW_BASE = DRAM_LOG_BASE + (1 << 37)

#: ALU instructions charged per log() call (address/value marshalling)
LOG_COMPUTE_COST = 2
#: sequence-number space for injected log stores (disjoint from app
#: stores, whose per-tx sequence numbers start at 0)
LOG_SEQ_BASE = 1 << 20


def record_addr(tx_id: int) -> int:
    """NVM commit-record line of one transaction."""
    return RECORD_BASE + tx_id * 64


def tx_of_record_line(line: int) -> Optional[int]:
    if not RECORD_BASE <= line < RECORD_LIMIT:
        return None
    return (line - RECORD_BASE) // 64


def head_addr(region: int) -> int:
    """Per-log-region truncation-head line (undo-log tail pointer)."""
    return HEAD_BASE + region * 64


def shadow_addr(home_line: int) -> int:
    """DRAM shadow line of a home-region line (hybrid scheme)."""
    return SHADOW_BASE + (home_line - NVM_BASE)


def home_of_shadow(addr: int) -> int:
    return NVM_BASE + (line_addr(addr) - SHADOW_BASE)


def mirror_addr(dram_log_addr: int) -> int:
    """NVM mirror line of a DRAM log line (hybrid scheme)."""
    return MIRROR_BASE + (line_addr(dram_log_addr) - DRAM_LOG_BASE)


def is_nvm_log_entry(addr: int) -> bool:
    return LOG_BASE <= addr < HEAD_BASE


def is_dram_log_entry(addr: int) -> bool:
    return DRAM_LOG_BASE <= addr < DRAM_LOG_LIMIT


def is_dram_record(addr: int) -> bool:
    return DRAM_RECORD_BASE <= addr < DRAM_RECORD_LIMIT


def is_shadow(addr: int) -> bool:
    return SHADOW_BASE <= addr < SHADOW_BASE + (1 << 36)


class SwTxScheme(PersistenceScheme):
    """Common runtime for the software-transaction schemes."""

    #: post-commit in-place replay writes allowed in flight before a
    #: committing core is back-pressured (``log_replay`` stall)
    REPLAY_WINDOW = 8

    def __init__(self, sim, config, stats, hierarchy, memory,
                 tracer=NULL_TRACER) -> None:
        super().__init__(sim, config, stats, hierarchy, memory, tracer)
        #: per-trace log-region allocation (prepare_trace order)
        self._next_log_region = 0
        # outstanding clwb writebacks per core, split by target so a
        # waiting sfence can attribute its stall to the log when that
        # is what it is actually waiting on
        self._outstanding_log: Dict[int, int] = {}
        self._outstanding_data: Dict[int, int] = {}
        self._fence_waiters: Dict[int, List[Resume]] = {}
        #: commit-record durability (tx -> completion cycle), observed
        #: at runtime; the recovery model keys on it
        self.record_durable: Dict[int, int] = {}
        #: per-tx final write sets (home line -> version), accumulated
        #: at runtime in program order; complete by the time the tx's
        #: commit record can possibly become durable
        self._write_sets: Dict[int, Dict[int, Version]] = {}
        # redo-replay engine (redo + hybrid)
        self._outstanding_replay = 0
        self._replay_waiters: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # trace preparation helpers
    # ------------------------------------------------------------------
    def _claim_log_region(self) -> Tuple[int, int]:
        """Allocate the next per-trace log window; returns
        ``(region index, NVM log base address)``."""
        region = self._next_log_region
        self._next_log_region += 1
        return region, LOG_BASE + region * LOG_STRIDE

    # ------------------------------------------------------------------
    # runtime: clwb / sfence ordering
    # ------------------------------------------------------------------
    def clwb(self, core, op, resume: Resume) -> None:
        core_id = core.core_id
        line = line_addr(op.addr)
        # record lines live above HEAD_BASE too — everything outside
        # the home region counts as log metadata for attribution
        counters = (self._outstanding_log if not is_home_line(line)
                    else self._outstanding_data)
        counters[core_id] = counters.get(core_id, 0) + 1

        def written_back(cycle: int) -> None:
            tx_id = tx_of_record_line(line)
            if tx_id is not None and tx_id not in self.record_durable:
                self.record_durable[tx_id] = cycle
                self.committed_tx.add(tx_id)
                self._on_record_durable(tx_id, cycle)
            counters[core_id] -= 1
            self._maybe_release_fence(core_id)

        self.hierarchy.writeback_line(core_id, line, written_back)
        resume()  # clwb itself is asynchronous; sfence orders it

    def sfence(self, core, op, resume: Resume) -> None:
        core_id = core.core_id
        self.stats.inc("fences")
        waiting_log = self._outstanding_log.get(core_id, 0)
        waiting_data = self._outstanding_data.get(core_id, 0)
        if not waiting_log and not waiting_data:
            resume()
            return
        self.stats.inc("fence_waits")
        if waiting_log:
            # the fence is ordering log writebacks: that is the
            # logging protocol's cost, not generic data ordering
            core.attribute_stall("log_flush")
        self._fence_waiters.setdefault(core_id, []).append(resume)

    def _maybe_release_fence(self, core_id: int) -> None:
        if (not self._outstanding_log.get(core_id, 0)
                and not self._outstanding_data.get(core_id, 0)):
            for waiter in self._fence_waiters.pop(core_id, []):
                waiter()

    def _on_record_durable(self, tx_id: int, cycle: int) -> None:
        """Hook: a transaction's commit record just became durable."""

    # ------------------------------------------------------------------
    # runtime: post-commit in-place replay (redo + hybrid)
    # ------------------------------------------------------------------
    def _replay(self, tx_id: int, writes: Dict[int, Version]) -> None:
        """Enqueue the committed transaction's in-place home writes.

        Architectural contents update at enqueue (so subsequent misses
        fill the new versions); cached stale copies are dropped first.
        """
        for home_line, version in writes.items():
            self._outstanding_replay += 1
            self.stats.inc("replay.lines")
            self.hierarchy.invalidate_everywhere(home_line)
            self.memory.write(home_line, version, persistent=True,
                              tx_id=tx_id, on_complete=self._replay_done,
                              source="swtx.replay")

    def _replay_done(self, request, cycle: int) -> None:
        self._outstanding_replay -= 1
        while (self._replay_waiters
               and self._outstanding_replay <= self.REPLAY_WINDOW):
            self._replay_waiters.pop(0)()

    def _with_replay_window(self, core, cont: Callable[[], None]) -> None:
        """Run ``cont`` once the replay backlog is under the window,
        charging any wait to ``log_replay``."""
        if self._outstanding_replay <= self.REPLAY_WINDOW:
            cont()
            return
        self.stats.inc("replay.stalls")
        core.attribute_stall("log_replay")
        self._replay_waiters.append(cont)

    # ------------------------------------------------------------------
    # completion / recovery
    # ------------------------------------------------------------------
    def busy(self) -> bool:
        return bool(
            any(self._outstanding_log.values())
            or any(self._outstanding_data.values())
            or self._outstanding_replay
            or self._replay_waiters
        )

    def durably_committed(self, crash_cycle: int) -> set:
        return {tx for tx, cycle in self.record_durable.items()
                if cycle <= crash_cycle}

    def _redo_recovery(self, crash_cycle: int) -> Dict[int, Optional[Version]]:
        """Recovery shared by the redo-style schemes: start from the
        home image the crash left behind, then replay the write set of
        every durably-committed transaction in record-durability order.

        Per core, records become durable in program order (redo fences
        each record; hybrid chains its record mirrors), so the last
        write applied to a line is some core's *last* committed writer
        of it — a member of the litmus oracle's legal persist set.  Any
        in-place home write the crash interrupted belongs to a
        record-durable transaction (replay starts strictly after record
        durability), so it is always re-applied consistently.
        """
        recovered = {
            line: version
            for line, version in self.memory.durable_state_at(crash_cycle).items()
            if is_home_line(line)
        }
        durable = sorted(
            ((cycle, tx) for tx, cycle in self.record_durable.items()
             if cycle <= crash_cycle))
        for _cycle, tx_id in durable:
            for home_line, version in self._write_sets.get(tx_id, {}).items():
                recovered[home_line] = version
        return recovered
