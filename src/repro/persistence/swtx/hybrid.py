"""Hybrid DRAM-logged software transactions (DudeTM-style decoupling).

The third point in the swtx design space, per the decoupled-durability
systems of arXiv:1903.06226: transactions run entirely against DRAM —
redo entries and the commit record are *stores to a DRAM log*, and
in-place writes are redirected to a DRAM shadow of the home region —
while a background mirror engine copies the DRAM log into NVM.  Commit
is an **epoch fence**: the committing core waits only until its own
log entries' NVM mirrors are durable (``log_flush`` stall when they
are not), then continues; the commit record's mirror is chained behind
the log mirrors per core (so records become durable in program order)
and in-place NVM replay follows record durability, both off the
critical path.

The transaction's critical path therefore has *no* clwb or sfence
instructions at all — the fence count is zero against undo's N+2 and
redo's 2 — and persistent loads are served from the DRAM shadow at
DRAM latency.  The costs move elsewhere: every log line is written
twice (DRAM + NVM mirror), a saturated mirror engine back-pressures
log appends (``log_write`` stall), and a deep replay backlog
back-pressures commits (``log_replay``).

Recovery is redo recovery keyed on the *mirrored* record: a durable
NVM record implies (epoch fence + per-core chaining) that every log
entry of the transaction is durably mirrored, so the write set can be
replayed; everything else ran only in DRAM and vanishes cleanly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ...common.types import SchemeName, Version, line_addr
from ...cpu.trace import OpType, Trace, TraceOp
from .base import (
    DRAM_RECORD_BASE,
    LOG_COMPUTE_COST,
    LOG_ENTRY_BYTES,
    LOG_SEQ_BASE,
    LOG_WRAP,
    SwTxScheme,
    home_of_shadow,
    is_dram_log_entry,
    is_shadow,
    mirror_addr,
    record_addr,
    shadow_addr,
)
from ...common.types import DRAM_LOG_BASE


def dram_record_addr(tx_id: int) -> int:
    return DRAM_RECORD_BASE + tx_id * 64


class HybridDramScheme(SwTxScheme):
    """DRAM log + shadow, asynchronous NVM mirror, epoch-fence commit."""

    name = SchemeName.HYBRID_DRAM

    #: NVM mirror writes allowed in flight before log appends stall
    MIRROR_WINDOW = 16

    def __init__(self, sim, config, stats, hierarchy, memory,
                 tracer=None) -> None:
        from ...obs.tracer import NULL_TRACER
        super().__init__(sim, config, stats, hierarchy, memory,
                         tracer if tracer is not None else NULL_TRACER)
        #: home lines whose newest value lives in the DRAM shadow;
        #: loads redirect there permanently (reads at DRAM speed are
        #: the point of the decoupling)
        self._visible: Dict[int, Version] = {}
        # mirror engine state
        self._mirror_outstanding = 0
        self._mirror_by_tx: Dict[int, int] = {}
        self._mirror_waiters: List[Callable[[], None]] = []
        self._epoch_waiters: Dict[int, List[Callable[[], None]]] = {}
        # per-core commit-record mirror chains (FIFO keeps record
        # durability in program order per core — the prefix-closure
        # obligation of the persistency oracle)
        self._record_chain: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # trace instrumentation
    # ------------------------------------------------------------------
    def prepare_trace(self, trace: Trace) -> Trace:
        _region, _nvm_base = self._claim_log_region()
        log_base = DRAM_LOG_BASE + _region * (1 << 30)
        log_cursor = 0
        out = Trace(name=f"{trace.name}+hybrid")
        pending: Optional[List[TraceOp]] = None
        open_tx: Optional[int] = None

        def emit_tx(tx_id: int, body: List[TraceOp]) -> None:
            nonlocal log_cursor
            out.ops.append(TraceOp(OpType.TX_BEGIN, tx_id=tx_id))
            index = 0
            for op in body:
                if op.op is OpType.STORE and op.persistent:
                    # redo entry into the DRAM log + redirected
                    # in-place write into the DRAM shadow; no clwb, no
                    # sfence — durability is the mirror engine's job
                    log_entry = log_base + (log_cursor % LOG_WRAP)
                    log_cursor += LOG_ENTRY_BYTES
                    out.ops.append(
                        TraceOp(OpType.COMPUTE, count=LOG_COMPUTE_COST))
                    out.ops.append(TraceOp(
                        OpType.STORE, addr=log_entry, tx_id=tx_id,
                        version=Version(tx_id, LOG_SEQ_BASE + index)))
                    out.ops.append(TraceOp(
                        OpType.STORE, addr=shadow_addr(line_addr(op.addr)),
                        tx_id=tx_id, version=op.version))
                    index += 1
                else:
                    out.ops.append(op)
            if index:
                out.ops.append(TraceOp(
                    OpType.STORE, addr=dram_record_addr(tx_id), tx_id=tx_id,
                    version=Version(tx_id, -1)))
            out.ops.append(TraceOp(OpType.TX_END, tx_id=tx_id))

        for op in trace.ops:
            if op.op is OpType.TX_BEGIN:
                open_tx = op.tx_id
                pending = []
            elif op.op is OpType.TX_END:
                emit_tx(open_tx, pending)
                open_tx = None
                pending = None
            elif pending is not None:
                pending.append(op)
            else:
                out.ops.append(op)
        out.validate()
        return out

    # ------------------------------------------------------------------
    # runtime: stores (log appends, shadow writes, mirror engine)
    # ------------------------------------------------------------------
    def store(self, core, op, on_issue, on_retire) -> None:
        line = line_addr(op.addr)
        if is_shadow(line) and op.tx_id is not None:
            home_line = home_of_shadow(line)
            self._visible[home_line] = op.version
            self._write_sets.setdefault(op.tx_id, {})[home_line] = op.version
            super().store(core, op, on_issue, on_retire)
            return
        if is_dram_log_entry(line) and op.tx_id is not None:
            # the DRAM append itself goes through the cache like any
            # store; the mirror engine picks the entry up immediately
            # and writes its NVM copy in the background
            self._mirror_outstanding += 1
            self._mirror_by_tx[op.tx_id] = (
                self._mirror_by_tx.get(op.tx_id, 0) + 1)
            self.stats.inc("mirror.lines")
            self.memory.write(
                mirror_addr(line), op.version, persistent=True,
                tx_id=op.tx_id, on_complete=self._mirror_done,
                source="swtx.mirror", meta={"swtx_tx": op.tx_id})
            self.hierarchy.store(
                core.core_id, op.addr, op.version,
                persistent=op.persistent, tx_id=op.tx_id,
                on_complete=on_retire)
            if self._mirror_outstanding > self.MIRROR_WINDOW:
                # mirror engine saturated: the log append cannot issue
                # until the window frees up
                self.stats.inc("mirror.stalls")
                core.attribute_stall("log_write")
                self._mirror_waiters.append(lambda: on_issue(1))
            else:
                on_issue(1)
            return
        super().store(core, op, on_issue, on_retire)

    def _mirror_done(self, request, cycle: int) -> None:
        self._mirror_outstanding -= 1
        tx_id = request.meta["swtx_tx"]
        remaining = self._mirror_by_tx.get(tx_id, 0) - 1
        if remaining <= 0:
            self._mirror_by_tx.pop(tx_id, None)
            for waiter in self._epoch_waiters.pop(tx_id, []):
                waiter()
        else:
            self._mirror_by_tx[tx_id] = remaining
        while (self._mirror_waiters
               and self._mirror_outstanding <= self.MIRROR_WINDOW):
            self._mirror_waiters.pop(0)()

    # ------------------------------------------------------------------
    # runtime: loads (DRAM shadow redirection)
    # ------------------------------------------------------------------
    def load(self, core, op, on_complete) -> None:
        line = line_addr(op.addr)
        if line in self._visible:
            self.hierarchy.load(core.core_id, shadow_addr(line), on_complete)
            return
        super().load(core, op, on_complete)

    # ------------------------------------------------------------------
    # runtime: commit (epoch fence + chained record mirror + replay)
    # ------------------------------------------------------------------
    def tx_end(self, core, op, resume) -> None:
        tx_id = op.tx_id
        writes = self._write_sets.get(tx_id)
        if not writes:
            resume()
            return
        self.stats.inc("epoch_fences")

        def after_fence() -> None:
            self._enqueue_record(core.core_id, tx_id)
            resume()

        def fence() -> None:
            if self._mirror_by_tx.get(tx_id):
                # epoch fence: this transaction's log mirrors are not
                # durable yet — the only wait on the commit path
                self.stats.inc("fence_waits")
                core.attribute_stall("log_flush")
                self._epoch_waiters.setdefault(tx_id, []).append(after_fence)
            else:
                after_fence()

        self._with_replay_window(core, fence)

    def _enqueue_record(self, core_id: int, tx_id: int) -> None:
        chain = self._record_chain.setdefault(core_id, [])
        chain.append(tx_id)
        if len(chain) == 1:
            self._issue_record(core_id)

    def _issue_record(self, core_id: int) -> None:
        tx_id = self._record_chain[core_id][0]

        def record_durable(request, cycle: int) -> None:
            if tx_id not in self.record_durable:
                self.record_durable[tx_id] = cycle
                self.committed_tx.add(tx_id)
            chain = self._record_chain[core_id]
            chain.pop(0)
            self._replay(tx_id, self._write_sets.get(tx_id, {}))
            if chain:
                self._issue_record(core_id)

        self.memory.write(
            record_addr(tx_id), Version(tx_id, -1), persistent=True,
            tx_id=tx_id, on_complete=record_durable, source="swtx.record")

    # ------------------------------------------------------------------
    # completion / recovery
    # ------------------------------------------------------------------
    def busy(self) -> bool:
        return bool(
            super().busy()
            or self._mirror_outstanding
            or self._mirror_waiters
            or any(self._record_chain.values())
            or self._epoch_waiters
        )

    def durable_lines(self, crash_cycle: int) -> Dict[int, Optional[Version]]:
        return self._redo_recovery(crash_cycle)
