"""Software-transaction (swtx) competitor schemes.

Three first-class software persistence schemes spanning the classic
WAL design space, each a point the paper's hardware transaction cache
is implicitly compared against:

==================  =================================================
``undo_log``        old value logged + flushed + fenced before every
                    in-place store; N+2 fences and the highest write
                    amplification (arXiv:1804.00701 lineage)
``redo_log``        DRAM write set + NVM redo log; 2 fences per
                    transaction, post-commit in-place replay
``hybrid_dram``     DRAM log mirrored to NVM asynchronously; an epoch
                    fence at commit is the only wait
                    (arXiv:1903.06226 lineage)
==================  =================================================

All three implement the full continuation-passing
:class:`~repro.persistence.base.PersistenceScheme` interface including
the ``durable_lines`` recovery contract, register
:class:`~repro.common.types.SchemeName` members, and emit the
``log_write`` / ``log_flush`` / ``log_replay`` stall kinds through
``core.attribute_stall`` so the sum-to-total attribution invariant
keeps holding.
"""

from .base import SwTxScheme
from .hybrid import HybridDramScheme
from .redo import RedoLogScheme
from .undo import UndoLogScheme

__all__ = [
    "HybridDramScheme",
    "RedoLogScheme",
    "SwTxScheme",
    "UndoLogScheme",
]
