"""Undo-log software transactions: fence-per-entry eager logging.

The classic undo-log protocol (Mnemosyne/NV-heaps style, per the
PMDK-era libraries surveyed in arXiv:1804.00701): before *each*
in-place store, the old value is logged and made durable —

    log(addr, old) ; clwb(log) ; sfence ; store in place

so at any crash point every in-place write of an uncommitted
transaction has a durable undo record.  Commit flushes the data lines,
fences, writes + flushes + fences a commit record, then truncates the
log (a lazily-flushed head-pointer store).

Against SP (which batches the whole transaction's log and pays one
fence for it), undo pays an sfence per store — the worst-case ordering
cost — and the highest write amplification of the swtx family: one log
line, one data line, a record and a head write per N=1 transaction.
The differential invariants pin this down: undo fences >= redo fences
and undo NVM write traffic >= redo's.

Recovery is SP's, shared semantics: committed = durable commit record;
every in-place write of an uncommitted transaction found in the NVM is
rolled back to its logged pre-value, newest-first across cores.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...common.types import SchemeName, Version, is_home_line, line_addr
from ...cpu.trace import OpType, Trace, TraceOp
from .base import (
    LOG_COMPUTE_COST,
    LOG_ENTRY_BYTES,
    LOG_SEQ_BASE,
    LOG_WRAP,
    SwTxScheme,
    head_addr,
    record_addr,
)


class UndoLogScheme(SwTxScheme):
    """Per-store undo WAL with a fence before every in-place write."""

    name = SchemeName.UNDO_LOG

    def __init__(self, sim, config, stats, hierarchy, memory,
                 tracer=None) -> None:
        from ...obs.tracer import NULL_TRACER
        super().__init__(sim, config, stats, hierarchy, memory,
                         tracer if tracer is not None else NULL_TRACER)
        # recovery bookkeeping, captured at runtime in store-issue
        # order (same contract as SP: capture order == architectural
        # write order because both update synchronously here)
        self._undo_log: List[Tuple[int, int, Optional[Version]]] = []
        self._current_version: Dict[int, Optional[Version]] = {}

    # ------------------------------------------------------------------
    # trace instrumentation
    # ------------------------------------------------------------------
    def prepare_trace(self, trace: Trace) -> Trace:
        region, log_base = self._claim_log_region()
        log_cursor = 0
        out = Trace(name=f"{trace.name}+undo")
        pending: Optional[List[TraceOp]] = None
        open_tx: Optional[int] = None

        def emit_tx(tx_id: int, body: List[TraceOp]) -> None:
            nonlocal log_cursor
            out.ops.append(TraceOp(OpType.TX_BEGIN, tx_id=tx_id))
            index = 0
            writes: Dict[int, None] = {}
            for op in body:
                if op.op is OpType.STORE and op.persistent:
                    # log the old value and make it durable *before*
                    # the in-place write — one full ordering point per
                    # store, the protocol's defining cost
                    log_entry = log_base + (log_cursor % LOG_WRAP)
                    log_cursor += LOG_ENTRY_BYTES
                    out.ops.append(
                        TraceOp(OpType.COMPUTE, count=LOG_COMPUTE_COST))
                    out.ops.append(TraceOp(
                        OpType.STORE, addr=log_entry, tx_id=tx_id,
                        version=Version(tx_id, LOG_SEQ_BASE + index)))
                    out.ops.append(TraceOp(
                        OpType.CLWB, addr=line_addr(log_entry), tx_id=tx_id))
                    out.ops.append(TraceOp(OpType.SFENCE, tx_id=tx_id))
                    writes[line_addr(op.addr)] = None
                    index += 1
                out.ops.append(op)
            if writes:
                # data durable, then the commit record (atomicity
                # point), then truncate the log: the head store is
                # flushed lazily — the next transaction's first fence
                # orders it
                for data_line in writes:
                    out.ops.append(TraceOp(OpType.CLWB, addr=data_line,
                                           tx_id=tx_id))
                out.ops.append(TraceOp(OpType.SFENCE, tx_id=tx_id))
                record = record_addr(tx_id)
                out.ops.append(TraceOp(
                    OpType.STORE, addr=record, tx_id=tx_id,
                    version=Version(tx_id, -1)))
                out.ops.append(TraceOp(OpType.CLWB, addr=record, tx_id=tx_id))
                out.ops.append(TraceOp(OpType.SFENCE, tx_id=tx_id))
                head = head_addr(region)
                out.ops.append(TraceOp(
                    OpType.STORE, addr=head, tx_id=tx_id,
                    version=Version(tx_id, -2)))
                out.ops.append(TraceOp(OpType.CLWB, addr=head, tx_id=tx_id))
            out.ops.append(TraceOp(OpType.TX_END, tx_id=tx_id))

        for op in trace.ops:
            if op.op is OpType.TX_BEGIN:
                open_tx = op.tx_id
                pending = []
            elif op.op is OpType.TX_END:
                emit_tx(open_tx, pending)
                open_tx = None
                pending = None
            elif pending is not None:
                pending.append(op)
            else:
                out.ops.append(op)
        out.validate()
        return out

    # ------------------------------------------------------------------
    # runtime: in-place data stores (undo capture)
    # ------------------------------------------------------------------
    def store(self, core, op, on_issue, on_retire) -> None:
        if op.persistent and is_home_line(op.addr):
            data_line = line_addr(op.addr)
            if op.tx_id is not None and op.version is not None:
                self._undo_log.append(
                    (op.tx_id, data_line,
                     self._current_version.get(data_line)))
            self._current_version[data_line] = op.version
        super().store(core, op, on_issue, on_retire)

    def tx_end(self, core, op, resume) -> None:
        # durability was established by the record clwb+sfence; the
        # trailing head store/clwb drain in the background
        resume()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def durable_lines(self, crash_cycle: int) -> Dict[int, Optional[Version]]:
        """Undo recovery: roll back every in-place write of an
        uncommitted transaction that reached the NVM, newest-first
        across all cores (conflicting chains unwind as a stack)."""
        committed = self.durably_committed(crash_cycle)
        recovered = {
            line: version
            for line, version in self.memory.durable_state_at(crash_cycle).items()
            if is_home_line(line)
        }
        for tx_id, data_line, old_version in reversed(self._undo_log):
            if tx_id in committed:
                continue
            found = recovered.get(data_line)
            if found is not None and found.tx_id == tx_id:
                if old_version is None:
                    recovered.pop(data_line, None)
                else:
                    recovered[data_line] = old_version
        return recovered
