"""Redo-log software transactions: DRAM write set, two fences per tx.

The classic redo/WAL alternative (the Mnemosyne "torn-bit log" /
SoftWrAP family, per arXiv:1804.00701): in-transaction stores never
touch the home region.  Each store appends a redo entry to the NVM log
(new value, not old) and records the intended write in a DRAM-side
write set; loads consult the write set first (read-your-writes).
Commit is two ordering points total —

    clwb(touched log lines) ; sfence ; store record ; clwb ; sfence

— after which the transaction is durable and its write set is replayed
in place in the background.  A crash before the record loses the
transaction (nothing in the home region to undo); a crash after it is
recovered by re-running the replay from the durable log.

Against undo, redo trades fences (2 per transaction vs N+2) and write
amplification (log entries pack four per line; undo writes a full line
per entry *and* flushes it eagerly) for a write-set lookup on every
transactional load and a replay backlog that can back-pressure commits
(the ``log_replay`` stall).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...common.types import SchemeName, Version, line_addr
from ...cpu.trace import OpType, Trace, TraceOp
from .base import (
    LOG_COMPUTE_COST,
    LOG_ENTRY_BYTES,
    LOG_SEQ_BASE,
    LOG_WRAP,
    SwTxScheme,
    record_addr,
)


class RedoLogScheme(SwTxScheme):
    """NVM redo WAL + DRAM write set, post-commit in-place replay."""

    name = SchemeName.REDO_LOG

    def __init__(self, sim, config, stats, hierarchy, memory,
                 tracer=None) -> None:
        from ...obs.tracer import NULL_TRACER
        super().__init__(sim, config, stats, hierarchy, memory,
                         tracer if tracer is not None else NULL_TRACER)
        #: prepare-time map from an injected log store's (tx, seq) to
        #: the home write it stands for — the runtime uses it to grow
        #: the write set in program order as log stores issue
        self._log_targets: Dict[Tuple[int, int], Tuple[int, Version]] = {}
        self._open_tx: Set[int] = set()

    # ------------------------------------------------------------------
    # trace instrumentation
    # ------------------------------------------------------------------
    def prepare_trace(self, trace: Trace) -> Trace:
        _region, log_base = self._claim_log_region()
        log_cursor = 0
        out = Trace(name=f"{trace.name}+redo")
        pending: Optional[List[TraceOp]] = None
        open_tx: Optional[int] = None

        def emit_tx(tx_id: int, body: List[TraceOp]) -> None:
            nonlocal log_cursor
            out.ops.append(TraceOp(OpType.TX_BEGIN, tx_id=tx_id))
            touched_log_lines: Dict[int, None] = {}
            index = 0
            for op in body:
                if op.op is OpType.STORE and op.persistent:
                    # replace the in-place write with a redo-log append
                    log_entry = log_base + (log_cursor % LOG_WRAP)
                    log_cursor += LOG_ENTRY_BYTES
                    seq = LOG_SEQ_BASE + index
                    self._log_targets[(tx_id, seq)] = (
                        line_addr(op.addr), op.version)
                    out.ops.append(
                        TraceOp(OpType.COMPUTE, count=LOG_COMPUTE_COST))
                    out.ops.append(TraceOp(
                        OpType.STORE, addr=log_entry, tx_id=tx_id,
                        version=Version(tx_id, seq)))
                    touched_log_lines[line_addr(log_entry)] = None
                    index += 1
                else:
                    out.ops.append(op)
            if touched_log_lines:
                for log_line in touched_log_lines:
                    out.ops.append(TraceOp(OpType.CLWB, addr=log_line,
                                           tx_id=tx_id))
                out.ops.append(TraceOp(OpType.SFENCE, tx_id=tx_id))
                record = record_addr(tx_id)
                out.ops.append(TraceOp(
                    OpType.STORE, addr=record, tx_id=tx_id,
                    version=Version(tx_id, -1)))
                out.ops.append(TraceOp(OpType.CLWB, addr=record, tx_id=tx_id))
                out.ops.append(TraceOp(OpType.SFENCE, tx_id=tx_id))
            out.ops.append(TraceOp(OpType.TX_END, tx_id=tx_id))

        for op in trace.ops:
            if op.op is OpType.TX_BEGIN:
                open_tx = op.tx_id
                pending = []
            elif op.op is OpType.TX_END:
                emit_tx(open_tx, pending)
                open_tx = None
                pending = None
            elif pending is not None:
                pending.append(op)
            else:
                out.ops.append(op)
        out.validate()
        return out

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    def tx_begin(self, core, op, resume) -> None:
        self._open_tx.add(op.tx_id)
        resume()

    def store(self, core, op, on_issue, on_retire) -> None:
        # a redo-log append also lands the write in the DRAM write set,
        # in program order (a later in-tx load must see it; an earlier
        # one must not)
        if op.version is not None and op.tx_id is not None:
            target = self._log_targets.get((op.tx_id, op.version.seq))
            if target is not None:
                home_line, version = target
                self._write_sets.setdefault(op.tx_id, {})[home_line] = version
        super().store(core, op, on_issue, on_retire)

    def load(self, core, op, on_complete) -> None:
        # read-your-writes: an open transaction's loads hit its DRAM
        # write set before the cache sees them
        tx_id = op.tx_id
        if tx_id is not None and tx_id in self._open_tx:
            writes = self._write_sets.get(tx_id)
            if writes is not None:
                version = writes.get(line_addr(op.addr))
                if version is not None:
                    self.stats.inc("write_set_hits")
                    on_complete(self.hierarchy.l1[core.core_id].latency,
                                version)
                    return
        super().load(core, op, on_complete)

    def tx_end(self, core, op, resume) -> None:
        # the record clwb+sfence just before this op established
        # durability; what remains is the in-place replay, which only
        # blocks the core when the backlog window is full
        tx_id = op.tx_id
        self._open_tx.discard(tx_id)
        writes = self._write_sets.get(tx_id)
        if not writes:
            resume()
            return

        def commit() -> None:
            self._replay(tx_id, writes)
            resume()

        self._with_replay_window(core, commit)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def durable_lines(self, crash_cycle: int) -> Dict[int, Optional[Version]]:
        return self._redo_recovery(crash_cycle)
