"""The four persistence mechanisms compared in the paper (§5.1)."""

from typing import Union

from ..common.types import SchemeName
from .base import OptimalScheme, PersistenceScheme
from .kiln import KilnScheme
from .software import SoftwareScheme
from .txcache_scheme import TxCacheScheme

_SCHEMES = {
    SchemeName.OPTIMAL: OptimalScheme,
    SchemeName.SP: SoftwareScheme,
    SchemeName.KILN: KilnScheme,
    SchemeName.TXCACHE: TxCacheScheme,
}


def create_scheme(
    name: Union[str, SchemeName],
    sim,
    config,
    stats,
    hierarchy,
    memory,
) -> PersistenceScheme:
    """Instantiate a persistence scheme by name, wiring its hierarchy
    and memory-system hooks."""
    cls = _SCHEMES[SchemeName.parse(name)]
    return cls(sim, config, stats, hierarchy, memory)


__all__ = [
    "KilnScheme",
    "OptimalScheme",
    "PersistenceScheme",
    "SoftwareScheme",
    "TxCacheScheme",
    "create_scheme",
]
