"""The four persistence mechanisms compared in the paper (§5.1)."""

from typing import Union

from ..common.types import SchemeName
from .base import OptimalScheme, PersistenceScheme
from .kiln import KilnScheme
from .software import SoftwareScheme
from .txcache_scheme import TxCacheScheme

_SCHEMES = {
    SchemeName.OPTIMAL: OptimalScheme,
    SchemeName.SP: SoftwareScheme,
    SchemeName.KILN: KilnScheme,
    SchemeName.TXCACHE: TxCacheScheme,
}


def create_scheme(
    name: Union[str, SchemeName],
    sim,
    config,
    stats,
    hierarchy,
    memory,
    tracer=None,
) -> PersistenceScheme:
    """Instantiate a persistence scheme by name, wiring its hierarchy
    and memory-system hooks (and the observability tracer, if any)."""
    from ..obs.tracer import NULL_TRACER

    cls = _SCHEMES[SchemeName.parse(name)]
    return cls(sim, config, stats, hierarchy, memory,
               tracer=tracer if tracer is not None else NULL_TRACER)


__all__ = [
    "KilnScheme",
    "OptimalScheme",
    "PersistenceScheme",
    "SoftwareScheme",
    "TxCacheScheme",
    "create_scheme",
]
