"""The four persistence mechanisms compared in the paper (§5.1).

Beyond the paper's four, extra schemes (deliberately broken validator
targets, experimental prototypes) can be registered by plain string
name via :func:`register_scheme`; :func:`create_scheme` consults that
registry before the :class:`~repro.common.types.SchemeName` enum, so
registered names work everywhere a scheme name string is accepted.
"""

from typing import Dict, List, Type, Union

from ..common.types import SchemeName
from .base import OptimalScheme, PersistenceScheme
from .kiln import KilnScheme
from .software import SoftwareScheme
from .swtx import HybridDramScheme, RedoLogScheme, UndoLogScheme
from .txcache_scheme import TxCacheScheme

_SCHEMES = {
    SchemeName.OPTIMAL: OptimalScheme,
    SchemeName.SP: SoftwareScheme,
    SchemeName.KILN: KilnScheme,
    SchemeName.TXCACHE: TxCacheScheme,
    SchemeName.UNDO_LOG: UndoLogScheme,
    SchemeName.REDO_LOG: RedoLogScheme,
    SchemeName.HYBRID_DRAM: HybridDramScheme,
}

#: string-named schemes outside the paper's enum (see register_scheme)
EXTRA_SCHEMES: Dict[str, Type[PersistenceScheme]] = {}


class _SchemeRegistry:
    """Live name→class view over the enum schemes and EXTRA_SCHEMES.

    A mapping (not a frozen dict) so schemes registered *after* import
    — the litmus broken-scheme validator targets, test prototypes —
    appear without any cache invalidation.  CLI choice lists and serve
    error messages read their valid names from here, so a new scheme
    is advertised everywhere by the single act of registering it.
    """

    def __contains__(self, name: object) -> bool:
        return name in EXTRA_SCHEMES or name in {
            scheme.value for scheme in _SCHEMES}

    def __getitem__(self, name: str) -> Type[PersistenceScheme]:
        if name in EXTRA_SCHEMES:
            return EXTRA_SCHEMES[name]
        return _SCHEMES[SchemeName.parse(name)]

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(_SCHEMES) + len(EXTRA_SCHEMES)

    @staticmethod
    def names(include_extras: bool = True) -> List[str]:
        """Every accepted scheme name: enum order, then registered
        extras sorted — the order help text and error messages use.
        ``include_extras=False`` restricts to the enum schemes (the
        ones whose results round-trip through SchemeName.parse)."""
        names = [scheme.value for scheme in _SCHEMES]
        if include_extras:
            names += sorted(EXTRA_SCHEMES)
        return names


#: the single source of truth for "which scheme names are valid"
SCHEME_REGISTRY = _SchemeRegistry()


def scheme_names(include_extras: bool = True) -> List[str]:
    """All currently valid scheme names (enum first, extras after)."""
    return SCHEME_REGISTRY.names(include_extras)


def register_scheme(name: str, cls: Type[PersistenceScheme]) -> None:
    """Register a scheme class under a plain string name.

    Re-registering the same class under the same name is a no-op;
    claiming an enum name or re-binding an existing name is an error.
    """
    try:
        SchemeName.parse(name)
    except (KeyError, ValueError):
        pass
    else:
        raise ValueError(f"scheme name {name!r} is reserved by SchemeName")
    existing = EXTRA_SCHEMES.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"scheme name {name!r} already registered "
                         f"to {existing.__name__}")
    EXTRA_SCHEMES[name] = cls


def create_scheme(
    name: Union[str, SchemeName],
    sim,
    config,
    stats,
    hierarchy,
    memory,
    tracer=None,
) -> PersistenceScheme:
    """Instantiate a persistence scheme by name, wiring its hierarchy
    and memory-system hooks (and the observability tracer, if any)."""
    from ..obs.tracer import NULL_TRACER

    if isinstance(name, str) and name in EXTRA_SCHEMES:
        cls = EXTRA_SCHEMES[name]
    else:
        cls = _SCHEMES[SchemeName.parse(name)]
    return cls(sim, config, stats, hierarchy, memory,
               tracer=tracer if tracer is not None else NULL_TRACER)


__all__ = [
    "EXTRA_SCHEMES",
    "HybridDramScheme",
    "KilnScheme",
    "OptimalScheme",
    "PersistenceScheme",
    "RedoLogScheme",
    "SCHEME_REGISTRY",
    "SoftwareScheme",
    "TxCacheScheme",
    "UndoLogScheme",
    "create_scheme",
    "register_scheme",
    "scheme_names",
]
