"""The four persistence mechanisms compared in the paper (§5.1).

Beyond the paper's four, extra schemes (deliberately broken validator
targets, experimental prototypes) can be registered by plain string
name via :func:`register_scheme`; :func:`create_scheme` consults that
registry before the :class:`~repro.common.types.SchemeName` enum, so
registered names work everywhere a scheme name string is accepted.
"""

from typing import Dict, Type, Union

from ..common.types import SchemeName
from .base import OptimalScheme, PersistenceScheme
from .kiln import KilnScheme
from .software import SoftwareScheme
from .txcache_scheme import TxCacheScheme

_SCHEMES = {
    SchemeName.OPTIMAL: OptimalScheme,
    SchemeName.SP: SoftwareScheme,
    SchemeName.KILN: KilnScheme,
    SchemeName.TXCACHE: TxCacheScheme,
}

#: string-named schemes outside the paper's enum (see register_scheme)
EXTRA_SCHEMES: Dict[str, Type[PersistenceScheme]] = {}


def register_scheme(name: str, cls: Type[PersistenceScheme]) -> None:
    """Register a scheme class under a plain string name.

    Re-registering the same class under the same name is a no-op;
    claiming an enum name or re-binding an existing name is an error.
    """
    try:
        SchemeName.parse(name)
    except (KeyError, ValueError):
        pass
    else:
        raise ValueError(f"scheme name {name!r} is reserved by SchemeName")
    existing = EXTRA_SCHEMES.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"scheme name {name!r} already registered "
                         f"to {existing.__name__}")
    EXTRA_SCHEMES[name] = cls


def create_scheme(
    name: Union[str, SchemeName],
    sim,
    config,
    stats,
    hierarchy,
    memory,
    tracer=None,
) -> PersistenceScheme:
    """Instantiate a persistence scheme by name, wiring its hierarchy
    and memory-system hooks (and the observability tracer, if any)."""
    from ..obs.tracer import NULL_TRACER

    if isinstance(name, str) and name in EXTRA_SCHEMES:
        cls = EXTRA_SCHEMES[name]
    else:
        cls = _SCHEMES[SchemeName.parse(name)]
    return cls(sim, config, stats, hierarchy, memory,
               tracer=tracer if tracer is not None else NULL_TRACER)


__all__ = [
    "EXTRA_SCHEMES",
    "KilnScheme",
    "OptimalScheme",
    "PersistenceScheme",
    "SoftwareScheme",
    "TxCacheScheme",
    "create_scheme",
    "register_scheme",
]
