"""repro — reproduction of "Leave the Cache Hierarchy Operation as It
Is: A New Persistent Memory Accelerating Approach" (DAC 2017).

The package implements the paper's persistent memory accelerator — a
nonvolatile CAM-FIFO transaction cache deployed beside an unmodified
cache hierarchy — together with every substrate it is evaluated on:

* a multicore cache-hierarchy simulator (:mod:`repro.cache`),
* a hybrid DRAM/NVM memory system with DRAMSim2-style controllers
  (:mod:`repro.memory`),
* a trace-driven CPU timing model (:mod:`repro.cpu`),
* the transaction cache, its accelerator logic and the copy-on-write
  overflow fall-back (:mod:`repro.core`),
* the four compared persistence mechanisms (:mod:`repro.persistence`),
* the five Table 3 benchmarks as instrumented data structures
  (:mod:`repro.workloads`), and
* experiment runners, crash injection, and figure/table regeneration
  (:mod:`repro.sim`).

Quick start::

    from repro import run_comparison, SchemeName
    results = run_comparison("hashtable", operations=200)
    print(results[SchemeName.TXCACHE].ipc /
          results[SchemeName.OPTIMAL].ipc)   # ~0.99 (paper: 0.985)
"""

__version__ = "1.0.0"

from .common import (
    CACHE_LINE_SIZE,
    NVM_BASE,
    MachineConfig,
    SchemeName,
    Simulator,
    Stats,
    TxCacheConfig,
    Version,
    paper_machine_config,
    small_machine_config,
)
from .core import (
    PersistentMemoryAccelerator,
    TransactionCache,
    TxState,
    hardware_overhead,
)
from .cpu import Trace, TraceBuilder
from .pheap import (
    PersistentArena,
    PersistentCounter,
    PersistentDict,
    PersistentList,
)
from .persistence import (
    KilnScheme,
    OptimalScheme,
    PersistenceScheme,
    SoftwareScheme,
    TxCacheScheme,
    create_scheme,
)
from .sim import (
    CrashReport,
    SimulationResult,
    System,
    crash_sweep,
    run_comparison,
    run_experiment,
    run_with_crash,
)
from .workloads import (
    PAPER_WORKLOADS,
    WORKLOADS,
    Workload,
    create_workload,
    register,
)

__all__ = [
    "CACHE_LINE_SIZE",
    "NVM_BASE",
    "PAPER_WORKLOADS",
    "WORKLOADS",
    "CrashReport",
    "KilnScheme",
    "MachineConfig",
    "OptimalScheme",
    "PersistenceScheme",
    "PersistentArena",
    "PersistentCounter",
    "PersistentDict",
    "PersistentList",
    "PersistentMemoryAccelerator",
    "SchemeName",
    "SimulationResult",
    "Simulator",
    "SoftwareScheme",
    "Stats",
    "System",
    "Trace",
    "TraceBuilder",
    "TransactionCache",
    "TxCacheConfig",
    "TxCacheScheme",
    "TxState",
    "Version",
    "Workload",
    "crash_sweep",
    "create_scheme",
    "create_workload",
    "hardware_overhead",
    "paper_machine_config",
    "register",
    "run_comparison",
    "run_experiment",
    "run_with_crash",
    "small_machine_config",
]
