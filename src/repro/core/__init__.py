"""The paper's contribution: the nonvolatile transaction cache and its
accelerator logic, including the overflow copy-on-write fall-back."""

from .accelerator import PersistentMemoryAccelerator
from .recovery import RecoveryResult, simulate_recovery
from .overflow import (
    RECORD_BASE,
    SHADOW_OFFSET,
    FallbackTx,
    OverflowManager,
    is_metadata_line,
    record_addr,
    shadow_addr,
)
from .txcache import (
    TransactionCache,
    TxEntry,
    TxState,
    hardware_overhead,
    overhead_summary_bits,
)

__all__ = [
    "RECORD_BASE",
    "SHADOW_OFFSET",
    "FallbackTx",
    "OverflowManager",
    "PersistentMemoryAccelerator",
    "RecoveryResult",
    "TransactionCache",
    "TxEntry",
    "TxState",
    "hardware_overhead",
    "is_metadata_line",
    "overhead_summary_bits",
    "record_addr",
    "shadow_addr",
    "simulate_recovery",
]
