"""Set-associative transaction buffer — the organization the CAM FIFO
is *better than*.

Paper §4.1: "the TC is not susceptible to cache associativity
overflows as prior studies do [23]".  Prior hardware schemes track
in-flight transactional lines in set-associative structures indexed by
address; a transaction whose lines collide in one set overflows that
set even when the structure is nearly empty.  The fully-associative
CAM FIFO admits any line as long as *total* capacity remains.

This module implements the set-associative alternative behind the same
interface as :class:`~repro.core.txcache.TransactionCache`, so the
accelerator (and therefore the whole TXCACHE scheme) can run with
either organization — the
``benchmarks/test_ablation_tc_organization.py`` bench shows
set-conflicting transactions forcing stalls/fall-backs under the
set-associative buffer while the CAM FIFO sails through.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..common.config import TxCacheConfig
from ..common.stats import ScopedStats
from ..common.types import Version, line_addr
from ..obs.tracer import NULL_TRACER, NullTracer
from .txcache import TxEntry, TxState


class SetAssocTransactionBuffer:
    """Address-indexed, set-associative transaction buffer.

    Entries are freed in place on acknowledgment (no tail sweep), but a
    write can be rejected with most of the buffer empty — the
    associativity overflow the paper's design avoids.
    """

    def __init__(self, config: TxCacheConfig, stats: ScopedStats,
                 seq_source: Optional[Callable[[], int]] = None,
                 assoc: int = 4,
                 tracer: NullTracer = NULL_TRACER, track: str = "tc",
                 clock: Optional[Callable[[], int]] = None) -> None:
        self.config = config
        self.stats = stats
        # same observability surface as TransactionCache (the sampler
        # probes __len__; per-event emission stays on the CAM FIFO)
        self.tracer = tracer
        self._track = track
        self._clock = clock or (lambda: 0)
        self.capacity = config.num_entries
        if self.capacity % assoc:
            raise ValueError(
                f"{self.capacity} entries not divisible into {assoc}-way sets")
        self.assoc = assoc
        self.num_sets = self.capacity // assoc
        self._sets: List[List[TxEntry]] = [[] for _ in range(self.num_sets)]
        self._seq_source = seq_source
        self._local_seq = 0
        self.set_conflict_rejections = 0

    # ------------------------------------------------------------------
    def _set_index(self, tag: int) -> int:
        return (tag // self.config.line_size) % self.num_sets

    def _next_seq(self) -> int:
        if self._seq_source is not None:
            return self._seq_source()
        self._local_seq += 1
        return self._local_seq

    def _all_entries(self) -> List[TxEntry]:
        out = [entry for bucket in self._sets for entry in bucket]
        out.sort(key=lambda entry: entry.seq)
        return out

    # ------------------------------------------------------------------
    # the TransactionCache interface
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def __len__(self) -> int:
        return self.occupancy

    def is_full(self) -> bool:
        return self.occupancy >= self.capacity

    def above_threshold(self) -> bool:
        return self.occupancy >= self.config.overflow_threshold * self.capacity

    def live_entries(self) -> List[TxEntry]:
        return self._all_entries()

    def count_active(self, tx_id: int) -> int:
        return sum(1 for entry in self._all_entries()
                   if entry.tx_id == tx_id and entry.state is TxState.ACTIVE)

    def write(self, tx_id: int, addr: int, version: Optional[Version]) -> bool:
        tag = line_addr(addr)
        bucket = self._sets[self._set_index(tag)]
        if self.config.coalesce_writes:
            for entry in bucket:
                if (entry.tx_id == tx_id and entry.tag == tag
                        and entry.state is TxState.ACTIVE):
                    entry.version = version
                    self.stats.inc("write.coalesced")
                    return True
        if len(bucket) >= self.assoc:
            # the associativity overflow: this *set* is full
            self.set_conflict_rejections += 1
            self.stats.inc("write.rejected_set_conflict")
            return False
        bucket.append(TxEntry(seq=self._next_seq(), tx_id=tx_id,
                              tag=tag, version=version))
        self.stats.inc("write.inserted")
        return True

    def commit(self, tx_id: int) -> List[TxEntry]:
        committed = []
        for entry in self._all_entries():
            if entry.tx_id == tx_id and entry.state is TxState.ACTIVE:
                entry.state = TxState.COMMITTED
                committed.append(entry)
        self.stats.inc("commit.requests")
        self.stats.inc("commit.entries", len(committed))
        return committed

    def take_issuable(self, limit: Optional[int] = None) -> List[TxEntry]:
        """Committed entries in global insertion (program) order,
        stopping at the first active entry — the same ordering contract
        as the FIFO, enforced here by seq-sorting."""
        out = []
        for entry in self._all_entries():
            if limit is not None and len(out) >= limit:
                break
            if entry.state is TxState.ACTIVE:
                break
            if entry.state is TxState.COMMITTED and not entry.issued:
                entry.issued = True
                out.append(entry)
        self.stats.inc("issue.entries", len(out))
        return out

    def ack(self, addr: int, seq: Optional[int] = None) -> Optional[TxEntry]:
        tag = line_addr(addr)
        bucket = self._sets[self._set_index(tag)]
        candidates = [entry for entry in bucket
                      if entry.tag == tag and entry.issued
                      and entry.state is TxState.COMMITTED
                      and (seq is None or entry.seq == seq)]
        if not candidates:
            self.stats.warn(
                "ack.unmatched",
                f"unmatched/duplicate NVM ack for line {tag:#x}"
                + (f" seq {seq}" if seq is not None else "")
                + " — no entry freed (idempotent drop)")
            return None
        oldest = min(candidates, key=lambda entry: entry.seq)
        bucket.remove(oldest)  # freed in place — no tail sweep needed
        self.stats.inc("ack.matched")
        return oldest

    def probe(self, addr: int) -> Optional[TxEntry]:
        tag = line_addr(addr)
        bucket = self._sets[self._set_index(tag)]
        candidates = [entry for entry in bucket if entry.tag == tag]
        if not candidates:
            self.stats.inc("probe.miss")
            return None
        self.stats.inc("probe.hit")
        return max(candidates, key=lambda entry: entry.seq)

    def drop_transaction(self, tx_id: int) -> List[TxEntry]:
        dropped = []
        for bucket in self._sets:
            keep = []
            for entry in bucket:
                if entry.tx_id == tx_id and entry.state is TxState.ACTIVE:
                    dropped.append(entry)
                else:
                    keep.append(entry)
            bucket[:] = keep
        dropped.sort(key=lambda entry: entry.seq)
        self.stats.inc("overflow.dropped_entries", len(dropped))
        return dropped

    def committed_unacked(self) -> List[TxEntry]:
        return [entry for entry in self._all_entries()
                if entry.state is TxState.COMMITTED]

    def active_entries(self) -> List[TxEntry]:
        return [entry for entry in self._all_entries()
                if entry.state is TxState.ACTIVE]
