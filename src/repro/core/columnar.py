"""Columnar transaction cache: indexed CAM scans for the columnar core.

:class:`ColumnarTransactionCache` is the columnar execution core's
drop-in replacement for the CAM-FIFO :class:`~repro.core.txcache.
TransactionCache` (``organization == "cam_fifo"`` only; the set-assoc
variant has its own geometry).  The object TC realizes every CAM match
as a linear ring scan — faithful to the hardware, O(occupancy) per
request.  This subclass keeps the ring (capacity behaviour, FIFO issue
order, tail sweeping and every stat are inherited unchanged) and adds
flat lookup indexes so the four hot CAM matches are O(1):

* ``write`` coalesce  — ``(tx_id, tag) → entry`` over ACTIVE entries,
* ``commit`` / ``drop_transaction`` / ``count_active``
                      — ``tx_id → [entries]`` in ring (program) order,
* ``ack``             — ``seq → entry`` (sequence numbers are globally
                        unique, so an exact match *is* the object
                        kernel's nearest-tail match),
* ``probe``           — ``tag → [entries]`` in ring order; the newest
                        live entry is the last live element.

Why indexes over literal state columns: TC entries are *shared mutable
objects* — the accelerator holds references across cycles (ack-timeout
watchdogs mutate ``issue_cycle``/``reissues`` in place) and the scheme
compares identity.  Flattening tag/state into ``array`` columns would
force an entry↔slot translation on every boundary crossing; the
indexes get the same O(1) access over the exact objects the rest of
the system already holds.  Equivalence with the object TC — identical
return values, stats, and stall behaviour — is pinned by the
three-way kernel matrix and the fault-injection differential tests.

Safety argument for index maintenance: every state transition of a
cam_fifo entry goes through a method of this class (``write``,
``commit``, ``take_issuable``, ``ack``, ``drop_transaction``); external
code mutates only ``issue_cycle``/``reissues``/``issued``/``version``,
none of which any index keys on.  New entries are born ACTIVE, leave
ACTIVE only via ``commit`` (→ COMMITTED) or ``drop_transaction``
(→ AVAILABLE), and leave COMMITTED only via ``ack`` (→ AVAILABLE) —
each site updates the affected indexes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.types import Version, line_addr
from .txcache import TransactionCache, TxEntry, TxState


class ColumnarTransactionCache(TransactionCache):
    """CAM-FIFO transaction cache with O(1) indexed CAM matches."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: (tx_id, tag) → the ACTIVE entry (unique while coalescing:
        #: a second insert of the pair only happens after the first
        #: left ACTIVE)
        self._active_idx: Dict[Tuple[int, int], TxEntry] = {}
        #: tx_id → ACTIVE entries, ring (program) order
        self._active_by_tx: Dict[int, List[TxEntry]] = {}
        #: seq → live entry (removed when the entry is freed)
        self._by_seq: Dict[int, TxEntry] = {}
        #: tag → live entries, ring order (newest last)
        self._by_tag: Dict[int, List[TxEntry]] = {}

    # ------------------------------------------------------------------
    def _free(self, entry: TxEntry) -> None:
        """COMMITTED/ACTIVE → AVAILABLE, with index upkeep."""
        entry.state = TxState.AVAILABLE
        self._by_seq.pop(entry.seq, None)
        tag_list = self._by_tag.get(entry.tag)
        if tag_list is not None:
            tag_list.remove(entry)  # identity match (TxEntry has no __eq__)
            if not tag_list:
                del self._by_tag[entry.tag]

    # ------------------------------------------------------------------
    # the four request types, indexed
    # ------------------------------------------------------------------
    def write(self, tx_id: int, addr: int, version: Optional[Version]) -> bool:
        tag = line_addr(addr)
        if self.config.coalesce_writes:
            entry = self._active_idx.get((tx_id, tag))
            if entry is not None:
                entry.version = version
                self.stats.inc("write.coalesced")
                return True
        if self.is_full():
            self.stats.inc("write.rejected_full")
            if self.tracer.enabled:
                self.tracer.instant("tc", self._track, "write.rejected",
                                    self._clock(), tx=tx_id)
            return False
        seq = self._seq_source() if self._seq_source else self._head_seq
        entry = TxEntry(seq=seq, tx_id=tx_id, tag=tag, version=version)
        self._ring.append(entry)
        self._head_seq += 1
        if self.config.coalesce_writes:
            self._active_idx[(tx_id, tag)] = entry
        self._active_by_tx.setdefault(tx_id, []).append(entry)
        self._by_seq[seq] = entry
        self._by_tag.setdefault(tag, []).append(entry)
        self.stats.inc("write.inserted")
        if self.tracer.enabled:
            self._trace_occupancy()
        return True

    def commit(self, tx_id: int) -> List[TxEntry]:
        committed = self._active_by_tx.pop(tx_id, [])
        active_idx = self._active_idx
        for entry in committed:
            entry.state = TxState.COMMITTED
            active_idx.pop((tx_id, entry.tag), None)
        self.stats.inc("commit.requests")
        self.stats.inc("commit.entries", len(committed))
        if self.tracer.enabled:
            self.tracer.instant("tc", self._track, "commit",
                                self._clock(), tx=tx_id,
                                entries=len(committed))
        return committed

    def ack(self, addr: int, seq: Optional[int] = None) -> Optional[TxEntry]:
        tag = line_addr(addr)
        entry: Optional[TxEntry] = None
        if seq is not None:
            # exact sequence match — equals the object TC's nearest-tail
            # scan because sequence numbers are globally unique, and a
            # stale/duplicate ack finds its seq already unindexed
            candidate = self._by_seq.get(seq)
            if (candidate is not None and candidate.tag == tag
                    and candidate.issued
                    and candidate.state is TxState.COMMITTED):
                entry = candidate
        else:
            for candidate in self._ring:  # oldest (tail) first
                if (candidate.tag == tag and candidate.issued
                        and candidate.state is TxState.COMMITTED):
                    entry = candidate
                    break
        if entry is not None:
            self._free(entry)
            self.stats.inc("ack.matched")
            self._sweep_tail()
            if self.tracer.enabled:
                self._trace_occupancy()
            return entry
        self.stats.warn(
            "ack.unmatched",
            f"unmatched/duplicate NVM ack for line {tag:#x}"
            + (f" seq {seq}" if seq is not None else "")
            + " — no entry freed (idempotent drop)")
        return None

    def probe(self, addr: int) -> Optional[TxEntry]:
        tag = line_addr(addr)
        tag_list = self._by_tag.get(tag)
        if tag_list:
            # the list holds only live entries in ring order, so the
            # newest (nearest-head) live entry is simply the last
            self.stats.inc("probe.hit")
            return tag_list[-1]
        self.stats.inc("probe.miss")
        return None

    # ------------------------------------------------------------------
    # overflow fall-back + queries
    # ------------------------------------------------------------------
    def drop_transaction(self, tx_id: int) -> List[TxEntry]:
        dropped = self._active_by_tx.pop(tx_id, [])
        active_idx = self._active_idx
        for entry in dropped:
            self._free(entry)
            active_idx.pop((tx_id, entry.tag), None)
        self._sweep_tail()
        self.stats.inc("overflow.dropped_entries", len(dropped))
        if self.tracer.enabled and dropped:
            self.tracer.instant("tc", self._track, "overflow.drop",
                                self._clock(), tx=tx_id, entries=len(dropped))
            self._trace_occupancy()
        return dropped

    def count_active(self, tx_id: int) -> int:
        return len(self._active_by_tx.get(tx_id, ()))

    def check_invariants(self) -> None:
        """Head/tail invariants plus index↔ring consistency."""
        super().check_invariants()
        live = [e for e in self._ring if e.state is not TxState.AVAILABLE]
        live_ids = {id(e) for e in live}
        assert {id(e) for e in self._by_seq.values()} <= live_ids, (
            "seq index holds a freed entry")
        indexed = [e for entries in self._by_tag.values() for e in entries]
        assert {id(e) for e in indexed} == live_ids, (
            "tag index disagrees with the ring's live set")
        for tx_id, entries in self._active_by_tx.items():
            for e in entries:
                assert e.tx_id == tx_id and e.state is TxState.ACTIVE, (
                    f"active index holds non-active entry {e!r}")
