"""Transaction-cache overflow fall-back: hardware-controlled copy-on-write.

A transaction larger than the TC would fill the FIFO with active
(uncommittable) entries and deadlock the CPU.  The paper (§4.1) adopts
a fall-back: once the TC is *almost* full (default 90 %), the
overflowing transaction is demoted to a hardware copy-on-write path:

1. the transaction's entries already buffered in the TC are re-issued
   as writes to a **shadow region** of the NVM and freed from the TC
   (making room for other transactions);
2. subsequent writes of that transaction bypass the TC and go straight
   to the shadow region;
3. at commit, the hardware waits for every shadow write to become
   durable, then persists a per-transaction **commit record**;
4. after the record is durable the shadow data is copied to its home
   addresses in the background.

The commit record is the single atomicity point: recovery applies a
fallback transaction's writes iff its record is durable — before the
record, home locations are untouched (copy-on-write), after it, the
shadow region holds every write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..common.event import Simulator
from ..common.stats import ScopedStats
from ..common.types import NVM_BASE, Version, line_addr

#: shadow copy of home line L lives at L + SHADOW_OFFSET (still in NVM)
SHADOW_OFFSET = 1 << 38
#: commit records live in their own NVM region, one line per transaction
RECORD_BASE = NVM_BASE + (1 << 37)


def shadow_addr(home_line: int) -> int:
    return home_line + SHADOW_OFFSET


def record_addr(tx_id: int) -> int:
    return RECORD_BASE + tx_id * 64


def is_metadata_line(line: int) -> bool:
    """True for shadow/record lines (excluded from recovered images)."""
    return line >= RECORD_BASE


@dataclass
class FallbackTx:
    """State of one transaction running on the copy-on-write path."""

    tx_id: int
    core_id: int
    writes: Dict[int, Version] = field(default_factory=dict)  # home line → newest
    outstanding_shadow: int = 0
    commit_requested: bool = False
    record_durable_at: Optional[int] = None
    resume: Optional[Callable[[], None]] = None


class OverflowManager:
    """Drives the COW fall-back path for every core."""

    def __init__(self, sim: Simulator, memory, stats: ScopedStats) -> None:
        self.sim = sim
        self.memory = memory
        self.stats = stats
        #: transactions currently (or historically) on the fall-back path
        self.fallback: Dict[int, FallbackTx] = {}
        self._active_by_core: Dict[int, int] = {}  # core → tx on COW path

    # ------------------------------------------------------------------
    def is_fallback(self, tx_id: int) -> bool:
        return tx_id in self.fallback

    def active_fallback_for(self, core_id: int) -> Optional[int]:
        return self._active_by_core.get(core_id)

    def divert(self, core_id: int, tx_id: int,
               buffered: List[Tuple[int, Optional[Version]]]) -> None:
        """Demote ``tx_id`` to the COW path, re-issuing its already
        buffered (home line, version) writes to the shadow region."""
        state = FallbackTx(tx_id=tx_id, core_id=core_id)
        self.fallback[tx_id] = state
        self._active_by_core[core_id] = tx_id
        self.stats.inc("fallback.transactions")
        for line, version in buffered:
            self.write(core_id, tx_id, line, version)

    def write(self, core_id: int, tx_id: int, addr: int,
              version: Optional[Version]) -> None:
        """A COW-path write: goes to the shadow region, non-blocking."""
        state = self.fallback[tx_id]
        line = line_addr(addr)
        state.writes[line] = version
        state.outstanding_shadow += 1
        self.stats.inc("fallback.shadow_writes")

        def shadow_done(_request, _cycle) -> None:
            state.outstanding_shadow -= 1
            self._maybe_write_record(state)

        self.memory.write(shadow_addr(line), version,
                          on_complete=shadow_done,
                          source=f"cow.shadow.{core_id}")

    def commit(self, core_id: int, tx_id: int,
               resume: Callable[[], None]) -> None:
        """Commit a COW transaction: wait for shadow durability, then
        persist the commit record; ``resume()`` fires once the record
        is durable (the transaction's atomicity point)."""
        state = self.fallback[tx_id]
        state.commit_requested = True
        state.resume = resume
        self._active_by_core.pop(core_id, None)
        self._maybe_write_record(state)

    def _maybe_write_record(self, state: FallbackTx) -> None:
        if (not state.commit_requested or state.outstanding_shadow
                or state.record_durable_at is not None):
            return
        state.record_durable_at = -1  # record write in flight

        def record_done(_request, cycle: int) -> None:
            state.record_durable_at = cycle
            self.stats.inc("fallback.commits")
            if state.resume is not None:
                state.resume()
                state.resume = None
            self._copy_home(state)

        self.memory.write(record_addr(state.tx_id),
                          Version(state.tx_id, -1),
                          on_complete=record_done,
                          source=f"cow.record.{state.core_id}")

    def _copy_home(self, state: FallbackTx) -> None:
        """Background copy shadow → home after the record is durable."""
        for line, version in state.writes.items():
            self.memory.write(line, version,
                              source=f"cow.copy.{state.core_id}")
            self.stats.inc("fallback.home_copies")

    # ------------------------------------------------------------------
    # recovery view
    # ------------------------------------------------------------------
    def committed_at(self, crash_cycle: int) -> List[FallbackTx]:
        """Fallback transactions whose commit record was durable by
        ``crash_cycle`` — recovery applies exactly these."""
        return [
            state for state in self.fallback.values()
            if state.record_durable_at is not None
            and 0 <= state.record_durable_at <= crash_cycle
        ]

    def busy(self) -> bool:
        return any(
            state.outstanding_shadow or
            (state.commit_requested and state.record_durable_at in (None, -1))
            for state in self.fallback.values()
        )
