"""The nonvolatile transaction cache (TC) — the paper's key component.

A content-addressable FIFO (CAM FIFO, §4.1): write requests from the
CPU are inserted at the head, committed entries are issued toward the
NVM from the tail in FIFO (= program) order, and entries are freed only
by the NVM controller's acknowledgment messages.

Each entry carries ``{TxID, State, Tag, Data}`` with
``State ∈ {available, active, committed}``:

* **write request** (CPU, in transaction mode): if the head entry is
  available, fill it and advance the head; otherwise the TC is full and
  the CPU stalls.
* **commit request** (CPU, at ``TX_END``): CAM-match on TxID; every
  active entry of the transaction becomes committed.  Committed
  entries are issued to the NVM in FIFO order.
* **acknowledgment** (NVM controller): CAM-match on the address; the
  matched entry *nearest the tail* becomes available (it was issued
  first), then the tail sweeps forward over available entries to make
  room — acks can complete out of order across banks.
* **miss request** (LLC): CAM-match on the address; the matched entry
  *nearest the head* is returned (it is the newest version, since
  insertion is in program order).

The implementation represents the ring as a deque in insertion order;
entries freed out of order stay in place as *available holes* until the
tail sweeps past them, exactly like the hardware head/tail pointers —
so capacity behaviour (and therefore CPU stall behaviour) matches the
paper's structure, not an idealized free list.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional

from ..common.config import MachineConfig, TxCacheConfig
from ..common.stats import ScopedStats
from ..common.types import Version, line_addr
from ..obs.tracer import NULL_TRACER, NullTracer


class TxState(enum.Enum):
    AVAILABLE = "available"
    ACTIVE = "active"
    COMMITTED = "committed"


class TxEntry:
    """One TC line: tag + data (version) + transaction bookkeeping.

    ``__slots__`` rather than a dataclass: the CAM scans (coalesce,
    commit, issue, ack, probe) walk every ring entry, so field reads
    dominate the accelerator's cost."""

    __slots__ = ("seq", "tx_id", "tag", "version", "state", "issued",
                 "issue_cycle", "reissues")

    def __init__(self, seq: int, tx_id: int, tag: int,
                 version: Optional[Version],
                 state: TxState = TxState.ACTIVE,
                 issued: bool = False, issue_cycle: int = -1,
                 reissues: int = 0) -> None:
        self.seq = seq                # global insertion order (head counter)
        self.tx_id = tx_id
        self.tag = tag                # cache-line address
        self.version = version
        self.state = state
        self.issued = issued          # write sent toward the NVM
        self.issue_cycle = issue_cycle  # cycle of the newest issue/reissue
        self.reissues = reissues      # ack-timeout reissues of this entry

    def __repr__(self) -> str:
        return (f"TxEntry(seq={self.seq}, tx_id={self.tx_id}, "
                f"tag={self.tag:#x}, state={self.state.name}, "
                f"issued={self.issued})")


class TransactionCache:
    """CAM-FIFO data array of one core's transaction cache."""

    def __init__(self, config: TxCacheConfig, stats: ScopedStats,
                 seq_source: Optional[Callable[[], int]] = None,
                 tracer: NullTracer = NULL_TRACER, track: str = "tc",
                 clock: Optional[Callable[[], int]] = None) -> None:
        self.config = config
        self.stats = stats
        self.capacity = config.num_entries
        if self.capacity < 1:
            raise ValueError("transaction cache must hold at least one line")
        self._ring: Deque[TxEntry] = deque()
        self._head_seq = 0  # total insertions (head pointer position)
        self._tail_seq = 0  # total reclamations (tail pointer position)
        #: entry ordering clock; shareable across TCs so cross-core
        #: probes can pick the globally newest entry
        self._seq_source = seq_source
        # observability: the TC is passive (no simulator reference), so
        # the accelerator hands it a cycle-clock for event timestamps
        self.tracer = tracer
        self._track = track
        self._clock = clock or (lambda: 0)

    def _trace_occupancy(self) -> None:
        self.tracer.counter("tc", self._track, "occupancy", self._clock(),
                            entries=len(self._ring))

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def occupancy(self) -> int:
        """Slots between tail and head — holes count (hardware FIFO)."""
        return len(self._ring)

    def is_full(self) -> bool:
        return len(self._ring) >= self.capacity

    def above_threshold(self) -> bool:
        """True when the overflow fall-back should trigger (§4.1:
        'once the TC is almost filled, e.g., 90% full')."""
        return len(self._ring) >= self.config.overflow_threshold * self.capacity

    def live_entries(self) -> List[TxEntry]:
        """Non-available entries, oldest first."""
        return [e for e in self._ring if e.state is not TxState.AVAILABLE]

    def count_active(self, tx_id: int) -> int:
        """Active entries belonging to one transaction."""
        return sum(1 for e in self._ring
                   if e.tx_id == tx_id and e.state is TxState.ACTIVE)

    # ------------------------------------------------------------------
    # the four request types (§4.1)
    # ------------------------------------------------------------------
    def write(self, tx_id: int, addr: int, version: Optional[Version]) -> bool:
        """CPU write request: insert at head.  False when full.

        When ``coalesce_writes`` is set (default), a write whose
        transaction already has an *active* entry for the same line
        updates that entry in place — a 64-bit store into an already
        buffered 64 B line costs no new entry.  Ordering across
        transactions is unaffected (active entries are not yet in the
        issue stream)."""
        if self.config.coalesce_writes:
            tag = line_addr(addr)
            for entry in reversed(self._ring):
                if (entry.tx_id == tx_id and entry.tag == tag
                        and entry.state is TxState.ACTIVE):
                    entry.version = version
                    self.stats.inc("write.coalesced")
                    return True
        if self.is_full():
            self.stats.inc("write.rejected_full")
            if self.tracer.enabled:
                self.tracer.instant("tc", self._track, "write.rejected",
                                    self._clock(), tx=tx_id)
            return False
        seq = self._seq_source() if self._seq_source else self._head_seq
        entry = TxEntry(seq=seq, tx_id=tx_id,
                        tag=line_addr(addr), version=version)
        self._ring.append(entry)
        self._head_seq += 1
        self.stats.inc("write.inserted")
        if self.tracer.enabled:
            self._trace_occupancy()
        return True

    def commit(self, tx_id: int) -> List[TxEntry]:
        """CPU commit request: CAM-match TxID, active → committed.

        Returns the newly committed entries (oldest first)."""
        committed = []
        for entry in self._ring:
            if entry.tx_id == tx_id and entry.state is TxState.ACTIVE:
                entry.state = TxState.COMMITTED
                committed.append(entry)
        self.stats.inc("commit.requests")
        self.stats.inc("commit.entries", len(committed))
        if self.tracer.enabled:
            self.tracer.instant("tc", self._track, "commit",
                                self._clock(), tx=tx_id,
                                entries=len(committed))
        return committed

    def take_issuable(self, limit: Optional[int] = None) -> List[TxEntry]:
        """Committed-and-unissued entries, in FIFO order, stopping at
        the first active entry (writes must reach the NVM in program
        order; an active entry belongs to a younger transaction).
        ``limit`` caps how many are taken (issue pacing)."""
        out = []
        for entry in self._ring:
            if limit is not None and len(out) >= limit:
                break
            if entry.state is TxState.AVAILABLE:
                continue
            if entry.state is TxState.ACTIVE:
                break
            if not entry.issued:
                entry.issued = True
                out.append(entry)
        self.stats.inc("issue.entries", len(out))
        return out

    def ack(self, addr: int, seq: Optional[int] = None) -> Optional[TxEntry]:
        """NVM acknowledgment: free the matching issued entry nearest
        the tail, then sweep the tail over available holes.

        When ``seq`` is given the ack must name that exact entry — the
        sequence number travels with the write request, making acks
        **idempotent**: a duplicated or stale ack (its entry already
        freed) matches nothing and frees nothing.  Without ``seq`` the
        classic nearest-tail tag match applies; the two are equivalent
        in fault-free operation because the controller completes
        same-line writes in order."""
        tag = line_addr(addr)
        for entry in self._ring:  # deque iterates oldest (tail) first
            if (entry.tag == tag and entry.issued
                    and entry.state is TxState.COMMITTED
                    and (seq is None or entry.seq == seq)):
                entry.state = TxState.AVAILABLE
                self.stats.inc("ack.matched")
                self._sweep_tail()
                if self.tracer.enabled:
                    self._trace_occupancy()
                return entry
        self.stats.warn(
            "ack.unmatched",
            f"unmatched/duplicate NVM ack for line {tag:#x}"
            + (f" seq {seq}" if seq is not None else "")
            + " — no entry freed (idempotent drop)")
        return None

    def probe(self, addr: int) -> Optional[TxEntry]:
        """LLC miss request: newest (nearest-head) live entry for the
        line, or None."""
        tag = line_addr(addr)
        for entry in reversed(self._ring):
            if entry.tag == tag and entry.state is not TxState.AVAILABLE:
                self.stats.inc("probe.hit")
                return entry
        self.stats.inc("probe.miss")
        return None

    # ------------------------------------------------------------------
    # overflow fall-back support
    # ------------------------------------------------------------------
    def drop_transaction(self, tx_id: int) -> List[TxEntry]:
        """Free every entry of a (still-active) transaction — used when
        the overflow fall-back rewrites the transaction as a
        hardware-controlled copy-on-write (§4.1).  Returns the dropped
        entries in FIFO order."""
        dropped = []
        for entry in self._ring:
            if entry.tx_id == tx_id and entry.state is TxState.ACTIVE:
                entry.state = TxState.AVAILABLE
                dropped.append(entry)
        self._sweep_tail()
        self.stats.inc("overflow.dropped_entries", len(dropped))
        if self.tracer.enabled and dropped:
            self.tracer.instant("tc", self._track, "overflow.drop",
                                self._clock(), tx=tx_id, entries=len(dropped))
            self._trace_occupancy()
        return dropped

    # ------------------------------------------------------------------
    def _sweep_tail(self) -> None:
        while self._ring and self._ring[0].state is TxState.AVAILABLE:
            self._ring.popleft()
            self._tail_seq += 1

    @property
    def head_seq(self) -> int:
        return self._head_seq

    @property
    def tail_seq(self) -> int:
        return self._tail_seq

    def check_invariants(self) -> None:
        """Structural head/tail invariants; raises AssertionError on
        corruption (used by fault-injection tests to prove duplicate
        acks and reissues leave the FIFO sound)."""
        assert self._tail_seq <= self._head_seq, (
            f"tail_seq {self._tail_seq} ran past head_seq {self._head_seq}")
        assert len(self._ring) <= self.capacity, (
            f"occupancy {len(self._ring)} exceeds capacity {self.capacity}")
        assert self._head_seq - self._tail_seq == len(self._ring), (
            "head/tail pointers disagree with ring occupancy: "
            f"{self._head_seq} - {self._tail_seq} != {len(self._ring)}")

    # ------------------------------------------------------------------
    # recovery view
    # ------------------------------------------------------------------
    def committed_unacked(self) -> List[TxEntry]:
        """Entries that survived a crash and must be replayed: the TC
        array is nonvolatile, so committed entries whose ack had not
        arrived are recovered in FIFO order (§3, Multiversioning)."""
        return [e for e in self._ring if e.state is TxState.COMMITTED]

    def active_entries(self) -> List[TxEntry]:
        """Uncommitted entries — discarded by recovery."""
        return [e for e in self._ring if e.state is TxState.ACTIVE]


def hardware_overhead(config: MachineConfig) -> Dict[str, Dict[str, str]]:
    """Reproduce the paper's Table 1 (hardware overhead summary).

    With a 4 KB TC and 64 B lines there are at most 64 in-flight
    transactions per core (one line per transaction), so the TxID
    fields need log2(64) = 6 bits; the per-line state and P/V flags
    are 1 bit each.
    """
    entries = config.txcache.num_entries
    txid_bits = max(1, math.ceil(math.log2(max(2, entries))))
    line_bits = config.txcache.line_size * 8
    return {
        "CPU TxID/Mode register": {
            "type": "flip-flops", "size": f"{txid_bits} bits"},
        "CPU Next TxID register": {
            "type": "flip-flops", "size": f"{txid_bits} bits"},
        "Cache P/V flag": {
            "type": "SRAM", "size": "1 bit"},
        "TxID in TC data array": {
            "type": "STTRAM", "size": f"{txid_bits} bits"},
        "State in TC data array": {
            "type": "STTRAM", "size": "1 bit"},
        "TC head/tail pointer": {
            "type": "flip-flops",
            "size": f"{max(1, math.ceil(math.log2(max(2, entries))))} bits each"},
        "TC data array": {
            "type": "STTRAM",
            "size": (f"{config.txcache.size_bytes // 1024} KB/core "
                     f"({entries} lines x {line_bits} bits)")},
    }


def overhead_summary_bits(config: MachineConfig) -> Dict[str, int]:
    """Numeric totals behind Table 1's prose (§4.4)."""
    entries = config.txcache.num_entries
    txid_bits = max(1, math.ceil(math.log2(max(2, entries))))
    return {
        "txid_bits": txid_bits,
        "per_tc_line_extra_bits": txid_bits + 1,        # TxID + state
        "per_cache_line_extra_bits": 1,                 # P/V flag
        "tc_total_bytes_per_core": config.txcache.size_bytes,
        "tc_total_bytes_machine": config.txcache.size_bytes * config.num_cores,
    }
