"""Persistent memory accelerator: per-core TCs + controller glue.

This is the stand-alone hardware module of the paper's Fig. 3(c): one
nonvolatile transaction cache per core, the logic that issues committed
entries toward the NVM, consumes the NVM controller's acknowledgment
messages, answers LLC miss probes with the newest buffered version, and
wakes stalled CPUs when a full TC gains room.

The accelerator is deliberately *mechanical* — policy (when to fall
back on overflow, what counts as durably committed) lives in the
TXCACHE persistence scheme that drives it.

Resilience (active only when a fault injector is attached to the
memory system; a strict no-op otherwise):

* every issued write carries its TC entry's sequence number, and acks
  are matched on it — a lost ack leaves the entry committed-unacked,
  and after ``ack_timeout_cycles`` the accelerator **reissues** it.
  Reissue is provably safe: the entry's (line, version) pair is exactly
  what the first write carried, the controller never reorders same-line
  writes, and FIFO multiversioning means rewriting the same committed
  version is idempotent.  A duplicated ack matches no live sequence
  number and frees nothing.
* TC line reads (issue, LLC probe) pass through a per-TC SECDED model
  (:class:`~repro.faults.ecc.SECDEDModel`): singles are corrected and
  scrubbed; an uncorrectable committed entry is refilled from the L1
  copy (every transactional store went to both L1 and TC); an
  uncorrectable *active* entry demotes its transaction to the COW
  overflow path via ``uncorrectable_handler``; a TC whose error rate
  crosses the configured threshold is *degraded* and stops admitting
  new transactions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..common.config import MachineConfig
from ..common.event import Simulator
from ..common.stats import Stats
from ..common.types import MemRequest, Version, line_addr
from ..memory.system import MemorySystem
from ..obs.tracer import NULL_TRACER, NullTracer
from .txcache import TransactionCache, TxEntry, TxState


class PersistentMemoryAccelerator:
    """All per-core transaction caches plus their shared NVM-side logic."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        stats: Stats,
        memory: MemorySystem,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.sim = sim
        self.config = config
        self.memory = memory
        self.stats = stats.scoped("tc")
        self.tracer = tracer
        self.latency = config.txcache.latency_cycles(config.freq_ghz)
        self._global_seq = 0

        def next_seq() -> int:
            self._global_seq += 1
            return self._global_seq

        if config.txcache.organization == "set_assoc":
            from .setassoc import SetAssocTransactionBuffer

            self.tcs = [
                SetAssocTransactionBuffer(
                    config.txcache, stats.scoped(f"tc.{i}"),
                    seq_source=next_seq, assoc=config.txcache.assoc,
                    tracer=tracer, track=f"tc{i}", clock=self._clock)
                for i in range(config.num_cores)
            ]
        elif config.txcache.organization == "cam_fifo":
            tc_cls = TransactionCache
            if getattr(sim, "columnar", False):
                # columnar kernel: same CAM-FIFO semantics, indexed scans
                from .columnar import ColumnarTransactionCache

                tc_cls = ColumnarTransactionCache
            self.tcs = [
                tc_cls(config.txcache, stats.scoped(f"tc.{i}"),
                       seq_source=next_seq,
                       tracer=tracer, track=f"tc{i}",
                       clock=self._clock)
                for i in range(config.num_cores)
            ]
        else:
            raise ValueError(
                f"unknown TC organization {config.txcache.organization!r}")
        # CPUs stalled on a full TC, per core: resume callbacks
        self._space_waiters: Dict[int, List[Callable[[], None]]] = {
            i: [] for i in range(config.num_cores)
        }
        # issued-but-unacked writes per core (paced commit drain)
        self._outstanding: Dict[int, int] = {
            i: 0 for i in range(config.num_cores)
        }
        self.issue_window = config.txcache.issue_window
        #: fault injector (None in the fault-free baseline — every
        #: resilience path below is then never scheduled or taken)
        self.faults = memory.faults
        self.ack_timeout = (config.faults.ack_timeout_cycles
                            if self.faults is not None else 0)
        #: per-TC SECDED ECC models (only when bit-flip faults are on)
        self.ecc: Optional[List] = None
        if self.faults is not None and config.faults.tc_bit_flip_rate > 0:
            from ..faults.ecc import SECDEDModel

            self.ecc = [
                SECDEDModel(self.faults, config.faults,
                            stats.scoped(f"tc.{i}.ecc"))
                for i in range(config.num_cores)
            ]
        #: scheme hook: called with (core_id, entry) when an *active*
        #: entry reads back uncorrectable — the policy answer is to
        #: demote that transaction to the COW overflow path
        self.uncorrectable_handler: Optional[
            Callable[[int, TxEntry], None]] = None
        memory.set_nvm_ack_handler(self.on_ack)

    def _clock(self) -> int:
        """Timestamp source handed to the (otherwise passive) TCs."""
        return self.sim.now

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------
    def cpu_write(self, core_id: int, tx_id: int, addr: int,
                  version: Optional[Version]) -> bool:
        """Non-blocking write request from the CPU (§3 working flow).
        Returns False when the TC is full — the caller must stall and
        register with :meth:`wait_for_space`."""
        return self.tcs[core_id].write(tx_id, addr, version)

    def wait_for_space(self, core_id: int, resume: Callable[[], None]) -> None:
        self.stats.inc("full_stalls")
        self._space_waiters[core_id].append(resume)

    def cpu_commit(self, core_id: int, tx_id: int) -> int:
        """Commit request from the CPU; returns the number of entries
        committed.  Issuing toward the NVM happens immediately after."""
        committed = self.tcs[core_id].commit(tx_id)
        self._issue(core_id)
        return len(committed)

    def near_overflow(self, core_id: int) -> bool:
        return self.tcs[core_id].above_threshold()

    # ------------------------------------------------------------------
    # NVM side
    # ------------------------------------------------------------------
    def _issue(self, core_id: int) -> None:
        """Send committed entries toward the NVM in FIFO order, paced
        to ``issue_window`` outstanding writes per core.  Routing of
        the later acknowledgment uses the request's ``source`` tag; the
        entry's sequence number rides along so the ack can be matched
        idempotently."""
        budget = self.issue_window - self._outstanding[core_id]
        if budget <= 0:
            return
        for entry in self.tcs[core_id].take_issuable(limit=budget):
            self._outstanding[core_id] += 1
            self._ecc_read_committed(core_id, entry)
            if self.tracer.enabled:
                self.tracer.instant("tc", f"tc{core_id}", "issue",
                                    self.sim.now, line=entry.tag,
                                    seq=entry.seq, tx=entry.tx_id)
            self.memory.write(
                entry.tag, entry.version,
                persistent=True, tx_id=entry.tx_id,
                source=f"tc.{core_id}",
                meta={"tc_seq": entry.seq},
            )
            if self.faults is not None:
                entry.issue_cycle = self.sim.now
                self.sim.schedule(self.ack_timeout, self._check_ack,
                                  core_id, entry, entry.issue_cycle)

    def on_ack(self, request: MemRequest, cycle: int) -> None:
        """Acknowledgment message from the NVM controller (§4.3): the
        write completed in the array, so the backup copy can be freed.
        A duplicate/stale ack matches no entry and changes nothing."""
        core_id = self._core_of(request)
        if core_id is None:
            self.stats.inc("ack.unrouted")
            return
        tc = self.tcs[core_id]
        was_full = tc.is_full()
        entry = tc.ack(request.line, seq=request.meta.get("tc_seq"))
        if entry is not None and self._outstanding[core_id] > 0:
            self._outstanding[core_id] -= 1
        self._issue(core_id)
        if was_full and not tc.is_full():
            waiters = self._space_waiters[core_id]
            self._space_waiters[core_id] = []
            if waiters and self.tracer.enabled:
                self.tracer.instant("tc", f"tc{core_id}", "space.wakeup",
                                    self.sim.now, waiters=len(waiters))
            for resume in waiters:
                self.sim.schedule(self.latency, resume)

    # ------------------------------------------------------------------
    # resilience: ack-timeout reissue and ECC (fault injection only)
    # ------------------------------------------------------------------
    def _check_ack(self, core_id: int, entry: TxEntry,
                   issue_stamp: int) -> None:
        """Ack-timeout watchdog for one issued entry.  If the entry is
        still committed-unacked and no newer reissue superseded this
        check, the acknowledgment was lost (or its write starved):
        reissue the same (line, version, seq) — idempotent by
        construction."""
        if (entry.state is not TxState.COMMITTED or not entry.issued
                or entry.issue_cycle != issue_stamp):
            return
        self.stats.inc("ack.timeouts")
        self.stats.inc("ack.reissues")
        if self.tracer.enabled:
            self.tracer.instant("tc", f"tc{core_id}", "ack.reissue",
                                self.sim.now, line=entry.tag, seq=entry.seq)
        entry.reissues += 1
        entry.issue_cycle = self.sim.now
        self.memory.write(
            entry.tag, entry.version,
            persistent=True, tx_id=entry.tx_id,
            source=f"tc.{core_id}",
            meta={"tc_seq": entry.seq},
        )
        self.sim.schedule(self.ack_timeout, self._check_ack,
                          core_id, entry, entry.issue_cycle)

    def _ecc_read_committed(self, core_id: int, entry: TxEntry) -> None:
        """ECC-check a committed entry read on the issue path.  An
        uncorrectable double is refilled from the L1 copy (the store
        went to both L1 and TC), costing one extra TC write."""
        if self.ecc is None:
            return
        from ..faults.ecc import EccOutcome

        if self.ecc[core_id].read() is EccOutcome.UNCORRECTABLE:
            self.stats.inc("ecc.refills")

    def degraded(self, core_id: int) -> bool:
        """True once this core's TC crossed the configured ECC error
        rate — the scheme then routes new transactions to the COW
        path instead of trusting the TC."""
        return self.ecc is not None and self.ecc[core_id].degraded

    @staticmethod
    def _core_of(request: MemRequest) -> Optional[int]:
        source = request.source
        if source.startswith("tc."):
            try:
                return int(source.split(".", 1)[1])
            except ValueError:
                return None
        return None

    # ------------------------------------------------------------------
    # LLC side
    # ------------------------------------------------------------------
    def llc_probe(self, line: int) -> Optional[Tuple[int, Optional[Version]]]:
        """LLC miss request (§3): return the newest buffered version of
        the line across all TCs, or None.  The probe costs one TC
        access.  Under fault injection every probe hit is ECC-checked:
        an uncorrectable *active* entry demotes its transaction to the
        COW path (and the probe falls through to the shadow copy); an
        uncorrectable committed entry is refilled from the L1 copy."""
        best: Optional[TxEntry] = None
        for core_id, tc in enumerate(self.tcs):
            entry = tc.probe(line)
            if entry is not None and self.ecc is not None:
                if not self._ecc_read_probe(core_id, entry):
                    continue
            if entry is not None and (best is None or entry.seq > best.seq):
                best = entry
        if best is None:
            return None
        return self.latency, best.version

    def _ecc_read_probe(self, core_id: int, entry: TxEntry) -> bool:
        """ECC-check a probe hit; returns False when the entry can no
        longer serve the probe (its transaction was just demoted)."""
        from ..faults.ecc import EccOutcome

        if self.ecc[core_id].read() is not EccOutcome.UNCORRECTABLE:
            return True
        if entry.state is TxState.ACTIVE:
            if self.uncorrectable_handler is not None:
                self.uncorrectable_handler(core_id, entry)
                # the transaction now lives on the COW path; its TC
                # entries were dropped, so this hit no longer exists
                return False
            return True
        self.stats.inc("ecc.refills")
        return True

    # ------------------------------------------------------------------
    def busy(self) -> bool:
        """True while any TC still holds live (unacked) entries."""
        return any(tc.live_entries() for tc in self.tcs)

    def recover(
        self, durable_nvm: Dict[int, Optional[Version]]
    ) -> Dict[int, Optional[Version]]:
        """Crash recovery (§3, Multiversioning): replay the committed
        entries buffered in the nonvolatile TCs, in FIFO order, on top
        of the NVM image found after the crash.  Active (uncommitted)
        entries are discarded."""
        recovered = dict(durable_nvm)
        for tc in self.tcs:
            for entry in tc.committed_unacked():
                recovered[entry.tag] = entry.version
        return recovered
