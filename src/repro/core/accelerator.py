"""Persistent memory accelerator: per-core TCs + controller glue.

This is the stand-alone hardware module of the paper's Fig. 3(c): one
nonvolatile transaction cache per core, the logic that issues committed
entries toward the NVM, consumes the NVM controller's acknowledgment
messages, answers LLC miss probes with the newest buffered version, and
wakes stalled CPUs when a full TC gains room.

The accelerator is deliberately *mechanical* — policy (when to fall
back on overflow, what counts as durably committed) lives in the
TXCACHE persistence scheme that drives it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..common.config import MachineConfig
from ..common.event import Simulator
from ..common.stats import Stats
from ..common.types import MemRequest, Version, line_addr
from ..memory.system import MemorySystem
from .txcache import TransactionCache, TxEntry, TxState


class PersistentMemoryAccelerator:
    """All per-core transaction caches plus their shared NVM-side logic."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        stats: Stats,
        memory: MemorySystem,
    ) -> None:
        self.sim = sim
        self.config = config
        self.memory = memory
        self.stats = stats.scoped("tc")
        self.latency = config.txcache.latency_cycles(config.freq_ghz)
        self._global_seq = 0

        def next_seq() -> int:
            self._global_seq += 1
            return self._global_seq

        if config.txcache.organization == "set_assoc":
            from .setassoc import SetAssocTransactionBuffer

            self.tcs = [
                SetAssocTransactionBuffer(
                    config.txcache, stats.scoped(f"tc.{i}"),
                    seq_source=next_seq, assoc=config.txcache.assoc)
                for i in range(config.num_cores)
            ]
        elif config.txcache.organization == "cam_fifo":
            self.tcs = [
                TransactionCache(config.txcache, stats.scoped(f"tc.{i}"),
                                 seq_source=next_seq)
                for i in range(config.num_cores)
            ]
        else:
            raise ValueError(
                f"unknown TC organization {config.txcache.organization!r}")
        # CPUs stalled on a full TC, per core: resume callbacks
        self._space_waiters: Dict[int, List[Callable[[], None]]] = {
            i: [] for i in range(config.num_cores)
        }
        # issued-but-unacked writes per core (paced commit drain)
        self._outstanding: Dict[int, int] = {
            i: 0 for i in range(config.num_cores)
        }
        self.issue_window = config.txcache.issue_window
        memory.set_nvm_ack_handler(self.on_ack)

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------
    def cpu_write(self, core_id: int, tx_id: int, addr: int,
                  version: Optional[Version]) -> bool:
        """Non-blocking write request from the CPU (§3 working flow).
        Returns False when the TC is full — the caller must stall and
        register with :meth:`wait_for_space`."""
        return self.tcs[core_id].write(tx_id, addr, version)

    def wait_for_space(self, core_id: int, resume: Callable[[], None]) -> None:
        self.stats.inc("full_stalls")
        self._space_waiters[core_id].append(resume)

    def cpu_commit(self, core_id: int, tx_id: int) -> int:
        """Commit request from the CPU; returns the number of entries
        committed.  Issuing toward the NVM happens immediately after."""
        committed = self.tcs[core_id].commit(tx_id)
        self._issue(core_id)
        return len(committed)

    def near_overflow(self, core_id: int) -> bool:
        return self.tcs[core_id].above_threshold()

    # ------------------------------------------------------------------
    # NVM side
    # ------------------------------------------------------------------
    def _issue(self, core_id: int) -> None:
        """Send committed entries toward the NVM in FIFO order, paced
        to ``issue_window`` outstanding writes per core.  Routing of
        the later acknowledgment uses the request's ``source`` tag."""
        budget = self.issue_window - self._outstanding[core_id]
        if budget <= 0:
            return
        for entry in self.tcs[core_id].take_issuable(limit=budget):
            self._outstanding[core_id] += 1
            self.memory.write(
                entry.tag, entry.version,
                persistent=True, tx_id=entry.tx_id,
                source=f"tc.{core_id}",
            )

    def on_ack(self, request: MemRequest, cycle: int) -> None:
        """Acknowledgment message from the NVM controller (§4.3): the
        write completed in the array, so the backup copy can be freed."""
        core_id = self._core_of(request)
        if core_id is None:
            self.stats.inc("ack.unrouted")
            return
        tc = self.tcs[core_id]
        was_full = tc.is_full()
        tc.ack(request.line)
        if self._outstanding[core_id] > 0:
            self._outstanding[core_id] -= 1
        self._issue(core_id)
        if was_full and not tc.is_full():
            waiters = self._space_waiters[core_id]
            self._space_waiters[core_id] = []
            for resume in waiters:
                self.sim.schedule(self.latency, resume)

    @staticmethod
    def _core_of(request: MemRequest) -> Optional[int]:
        source = request.source
        if source.startswith("tc."):
            try:
                return int(source.split(".", 1)[1])
            except ValueError:
                return None
        return None

    # ------------------------------------------------------------------
    # LLC side
    # ------------------------------------------------------------------
    def llc_probe(self, line: int) -> Optional[Tuple[int, Optional[Version]]]:
        """LLC miss request (§3): return the newest buffered version of
        the line across all TCs, or None.  The probe costs one TC
        access."""
        best: Optional[TxEntry] = None
        for tc in self.tcs:
            entry = tc.probe(line)
            if entry is not None and (best is None or entry.seq > best.seq):
                best = entry
        if best is None:
            return None
        return self.latency, best.version

    # ------------------------------------------------------------------
    def busy(self) -> bool:
        """True while any TC still holds live (unacked) entries."""
        return any(tc.live_entries() for tc in self.tcs)

    def recover(
        self, durable_nvm: Dict[int, Optional[Version]]
    ) -> Dict[int, Optional[Version]]:
        """Crash recovery (§3, Multiversioning): replay the committed
        entries buffered in the nonvolatile TCs, in FIFO order, on top
        of the NVM image found after the crash.  Active (uncommitted)
        entries are discarded."""
        recovered = dict(durable_nvm)
        for tc in self.tcs:
            for entry in tc.committed_unacked():
                recovered[entry.tag] = entry.version
        return recovered
