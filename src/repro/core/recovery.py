"""Timed post-crash recovery procedure for the persistent memory
accelerator.

The paper's recovery story (§3, Multiversioning) is stated but not
evaluated: after a failure, the nonvolatile TC still holds the
committed-but-unacknowledged entries, and recovery writes them to the
NVM in FIFO order; active entries are discarded.  This module makes
that procedure a first-class, *timed* simulation so recovery latency
can be studied (an extension the paper leaves open):

1. scan every core's TC array (one CAM access per entry),
2. discard active entries, re-issue committed entries to the NVM
   controller in FIFO order,
3. for fall-back transactions whose commit record is durable, copy the
   shadow region to the home addresses (one read + one write each),
4. wait for all writes to drain — the machine may then restart.

:func:`simulate_recovery` replays this on a *fresh* memory system
seeded with the crashed NVM image, returning the recovered image and
the recovery latency in cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.config import MachineConfig
from ..common.event import Simulator
from ..common.stats import Stats
from ..common.types import Version, is_home_line
from ..memory.system import MemorySystem
from .accelerator import PersistentMemoryAccelerator
from .overflow import OverflowManager


@dataclass
class RecoveryResult:
    """Outcome of one timed recovery simulation."""

    cycles: int                      # crash-to-restart latency
    entries_scanned: int             # TC lines examined
    entries_replayed: int            # committed lines written to NVM
    entries_discarded: int           # active (uncommitted) lines dropped
    fallback_lines_copied: int       # COW shadow → home copies
    image: Dict[int, Optional[Version]] = field(default_factory=dict)


def simulate_recovery(
    config: MachineConfig,
    accelerator: PersistentMemoryAccelerator,
    overflow: Optional[OverflowManager],
    crashed_nvm: Dict[int, Optional[Version]],
    crash_cycle: int,
    commit_cycle: Optional[Dict[int, int]] = None,
) -> RecoveryResult:
    """Replay the hardware recovery procedure with timing.

    Args:
        config: machine configuration (controller timing comes from it).
        accelerator: the crashed machine's accelerator — its TCs are
            nonvolatile and are read in place.
        overflow: the crashed machine's COW manager (None if unused).
        crashed_nvm: NVM home-region image found after the crash
            (line → version).
        crash_cycle: the crash point; fall-back transactions count as
            committed iff their record was durable by then.

    Returns:
        A :class:`RecoveryResult` whose ``image`` is the recovered NVM
        contents and whose ``cycles`` is the simulated recovery time.
    """
    sim = Simulator()
    stats = Stats()
    memory = MemorySystem(sim, config, stats)
    for line, version in crashed_nvm.items():
        memory.poke(line, version)
        memory.durable_image.record(0, line, version)

    tc_latency = config.txcache.latency_cycles(config.freq_ghz)
    now = 0
    scanned = replayed = discarded = 0

    # 1-2. scan each TC; re-issue committed entries in FIFO order.
    replay: List[Tuple[int, Dict[int, Optional[Version]]]] = []
    for tc in accelerator.tcs:
        for entry in tc.live_entries():
            scanned += 1
            now += tc_latency  # CAM read of the entry
        by_tx: Dict[int, Dict[int, Optional[Version]]] = {}
        for entry in tc.committed_unacked():
            by_tx.setdefault(entry.tx_id, {})[entry.tag] = entry.version
        discarded += len(tc.active_entries())
        for tx_id, lines in by_tx.items():
            replay.append((tx_id, lines))

    # Lines already owned by a later-committed transaction in the
    # crashed image must not be rolled back by older replayed data
    # (possible when a fall-back transaction's home copies and a later
    # TC transaction race on one line).
    commit_cycle = commit_cycle or {}

    def committed_later(line: int, than_cycle: int) -> bool:
        existing = crashed_nvm.get(line)
        if existing is None or existing.tx_id is None:
            return False
        return commit_cycle.get(existing.tx_id, -1) > than_cycle

    for tx_id, lines in sorted(replay, key=lambda item: item[0]):
        when = commit_cycle.get(tx_id, crash_cycle)
        for line, version in lines.items():
            if committed_later(line, when):
                continue
            sim.schedule_at(now, memory.write, line, version)
            replayed += 1

    # 3. fall-back transactions with durable records: copy shadow → home
    #    — with the same later-owner guard.

    copied = 0
    if overflow is not None:
        read_cycles = config.nvm.timing.read_cycles(config.freq_ghz,
                                                    row_hit=False)
        for state in overflow.committed_at(crash_cycle):
            for line, version in state.writes.items():
                now += read_cycles          # read the shadow copy
                if committed_later(line, state.record_durable_at):
                    continue
                sim.schedule_at(now, memory.write, line, version)
                copied += 1

    # 4. drain.
    sim.run()
    end = max(sim.now, now)

    image = {
        line: version
        for line, version in memory.durable_image.final_state().items()
        if is_home_line(line)
    }
    return RecoveryResult(
        cycles=end,
        entries_scanned=scanned,
        entries_replayed=replayed,
        entries_discarded=discarded,
        fallback_lines_copied=copied,
        image=image,
    )
