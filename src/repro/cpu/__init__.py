"""CPU layer: trace ISA, trace containers, and the core timing model."""

from .core import Core
from .trace import OpType, Trace, TraceBuilder, TraceOp

__all__ = ["Core", "OpType", "Trace", "TraceBuilder", "TraceOp"]
