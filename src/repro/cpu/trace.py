"""Trace operation ISA and trace containers.

Workloads compile to a per-core *trace*: a list of :class:`TraceOp`.
The base ISA is scheme-independent — LOAD / STORE / COMPUTE plus the
paper's ``TX_BEGIN`` / ``TX_END`` transaction primitives (§4.2).  The
software-persistence baseline additionally understands ``CLWB`` and
``SFENCE`` ops, which its trace instrumentation injects (Fig. 2b);
hardware schemes never see them.

Persistent stores carry a :class:`~repro.common.types.Version`
(transaction id + per-transaction sequence number) assigned at trace
generation time, so every scheme runs the *same* logical writes and the
crash-consistency checker can compare durable states across schemes.
"""

from __future__ import annotations

import enum
import io
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..common.columns import (
    count_byte,
    int_column,
    masked_count,
    sum_compute_instructions,
)
from ..common.types import Version, is_persistent_addr, line_addr


class OpType(enum.Enum):
    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"
    TX_BEGIN = "tx_begin"
    TX_END = "tx_end"
    CLWB = "clwb"      # SP instrumentation only
    SFENCE = "sfence"  # SP instrumentation only


#: dense integer codes for each op type; the core's dispatch table and
#: :class:`CompiledTrace`'s flat arrays index on these instead of
#: hashing enum members in the retire loop
(KIND_LOAD, KIND_STORE, KIND_COMPUTE, KIND_TX_BEGIN,
 KIND_TX_END, KIND_CLWB, KIND_SFENCE) = range(7)

_KIND_OF = {
    OpType.LOAD: KIND_LOAD,
    OpType.STORE: KIND_STORE,
    OpType.COMPUTE: KIND_COMPUTE,
    OpType.TX_BEGIN: KIND_TX_BEGIN,
    OpType.TX_END: KIND_TX_END,
    OpType.CLWB: KIND_CLWB,
    OpType.SFENCE: KIND_SFENCE,
}

_ADDRESSED_KINDS = frozenset((KIND_LOAD, KIND_STORE, KIND_CLWB))


class TraceOp:
    """One dynamic operation.

    ``count`` is the number of ALU instructions for COMPUTE (1 for all
    other ops).  ``version`` is set on persistent stores.

    A ``__slots__`` class: traces hold 10⁴–10⁶ of these and the core
    touches them every retire, so ``kind`` (dense int code) and
    ``persistent`` are derived once at construction.  ``op`` and
    ``addr`` must not be mutated afterwards (``count`` may grow while
    a builder coalesces COMPUTE runs — that derives nothing).
    """

    __slots__ = ("op", "addr", "count", "tx_id", "version",
                 "kind", "persistent")

    def __init__(self, op: OpType, addr: int = 0, count: int = 1,
                 tx_id: Optional[int] = None,
                 version: Optional[Version] = None) -> None:
        self.op = op
        self.addr = addr
        self.count = count
        self.tx_id = tx_id
        self.version = version
        kind = _KIND_OF[op]
        self.kind = kind
        self.persistent = (kind in _ADDRESSED_KINDS
                           and is_persistent_addr(addr))

    @property
    def instructions(self) -> int:
        """Dynamic instruction count this op represents."""
        return self.count if self.op is OpType.COMPUTE else 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceOp):
            return NotImplemented
        return (self.op is other.op and self.addr == other.addr
                and self.count == other.count
                and self.tx_id == other.tx_id
                and self.version == other.version)

    def __repr__(self) -> str:
        return (f"TraceOp(op={self.op.name}, addr={self.addr:#x}, "
                f"count={self.count}, tx_id={self.tx_id}, "
                f"version={self.version})")

    def to_json(self) -> dict:
        data = {"op": self.op.value}
        if self.addr:
            data["addr"] = self.addr
        if self.count != 1:
            data["count"] = self.count
        if self.tx_id is not None:
            data["tx_id"] = self.tx_id
        if self.version is not None:
            data["version"] = [self.version.tx_id, self.version.seq]
        return data

    @staticmethod
    def from_json(data: dict) -> "TraceOp":
        version = data.get("version")
        return TraceOp(
            op=OpType(data["op"]),
            addr=data.get("addr", 0),
            count=data.get("count", 1),
            tx_id=data.get("tx_id"),
            version=Version(version[0], version[1]) if version else None,
        )


class CompiledTrace:
    """Flat parallel columns over a trace's ops, for the core's retire
    loop and the trace aggregates: ``kinds[i]`` is the dense op-type
    code of ``ops[i]`` (an immutable ``bytes`` byte column — indexing
    returns cached small ints and the buffer is one byte per op),
    ``counts[i]`` its instruction count (an ``array('q')`` int column),
    and ``persistent[i]`` its P/V flag (byte column).  Scanning flat
    columns is markedly cheaper than touching a Python object per
    retired op, and the aggregate reductions over them run in C (with
    an optional numpy fast path — see :mod:`repro.common.columns`)."""

    __slots__ = ("kinds", "counts", "persistent")

    def __init__(self, ops: List[TraceOp]) -> None:
        self.kinds: bytes = bytes(bytearray(op.kind for op in ops))
        self.counts = int_column(op.count for op in ops)
        self.persistent: bytes = bytes(
            bytearray(1 if op.persistent else 0 for op in ops))


@dataclass
class Trace:
    """A per-core operation stream plus summary metadata."""

    name: str
    ops: List[TraceOp] = field(default_factory=list)
    _compiled: Optional[CompiledTrace] = field(
        default=None, repr=False, compare=False)
    #: op count at the last successful validate() (-1: never validated)
    _validated_len: int = field(default=-1, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    def compiled(self) -> CompiledTrace:
        """Flat-array view of the ops, computed once and cached.

        Called by the core when execution starts, i.e. after workload
        generation and scheme instrumentation are done.  Appending ops
        after this invalidates the cache (length check); in-place
        mutation of existing ops does not and is unsupported."""
        cached = self._compiled
        if cached is None or len(cached.kinds) != len(self.ops):
            cached = self._compiled = CompiledTrace(self.ops)
        return cached

    @property
    def instructions(self) -> int:
        compiled = self.compiled()
        return sum_compute_instructions(compiled.kinds, compiled.counts,
                                        KIND_COMPUTE)

    @property
    def transactions(self) -> int:
        return count_byte(self.compiled().kinds, KIND_TX_END)

    @property
    def persistent_stores(self) -> int:
        compiled = self.compiled()
        return masked_count(compiled.kinds, KIND_STORE, compiled.persistent)

    def validate(self) -> None:
        """Check transaction bracketing and version discipline.

        Raises ValueError on malformed traces: unbalanced TX markers,
        nested transactions, persistent in-transaction stores without a
        version, or version tx_id mismatching the enclosing transaction.

        A successful pass is memoized by op count: traces are shared
        across experiment points (and re-validated at system start), so
        the O(n) sweep runs once per distinct trace, not once per run.
        Appending ops invalidates the memo; in-place op mutation does
        not and is unsupported (same contract as :meth:`compiled`).
        """
        if self._validated_len == len(self.ops):
            return
        open_tx: Optional[int] = None
        for index, op in enumerate(self.ops):
            if op.op is OpType.TX_BEGIN:
                if open_tx is not None:
                    raise ValueError(
                        f"{self.name}[{index}]: nested TX_BEGIN "
                        f"(tx {op.tx_id} inside {open_tx})")
                if op.tx_id is None:
                    raise ValueError(f"{self.name}[{index}]: TX_BEGIN without tx_id")
                open_tx = op.tx_id
            elif op.op is OpType.TX_END:
                if open_tx is None:
                    raise ValueError(f"{self.name}[{index}]: TX_END outside tx")
                if op.tx_id != open_tx:
                    raise ValueError(
                        f"{self.name}[{index}]: TX_END tx {op.tx_id} != {open_tx}")
                open_tx = None
            elif op.op is OpType.STORE and op.persistent and open_tx is not None:
                if op.version is None:
                    raise ValueError(
                        f"{self.name}[{index}]: persistent tx store missing version")
                if op.version.tx_id != open_tx:
                    raise ValueError(
                        f"{self.name}[{index}]: version tx {op.version.tx_id} "
                        f"!= open tx {open_tx}")
        if open_tx is not None:
            raise ValueError(f"{self.name}: unterminated transaction {open_tx}")
        self._validated_len = len(self.ops)

    def transaction_writes(self) -> Dict[int, List[TraceOp]]:
        """Persistent stores grouped by enclosing transaction id."""
        groups: Dict[int, List[TraceOp]] = {}
        open_tx: Optional[int] = None
        for op in self.ops:
            if op.op is OpType.TX_BEGIN:
                open_tx = op.tx_id
                groups.setdefault(open_tx, [])
            elif op.op is OpType.TX_END:
                open_tx = None
            elif op.op is OpType.STORE and op.persistent and open_tx is not None:
                groups[open_tx].append(op)
        return groups

    # -- serialization -------------------------------------------------
    def dump(self, fp: io.TextIOBase) -> None:
        """Write as JSON-lines (one header line + one line per op)."""
        fp.write(json.dumps({"trace": self.name, "ops": len(self.ops)}) + "\n")
        for op in self.ops:
            fp.write(json.dumps(op.to_json()) + "\n")

    @staticmethod
    def load(fp: io.TextIOBase) -> "Trace":
        header = json.loads(fp.readline())
        trace = Trace(name=header["trace"])
        for line in fp:
            line = line.strip()
            if line:
                trace.ops.append(TraceOp.from_json(json.loads(line)))
        return trace


class TraceBuilder:
    """Helper for workloads: assigns tx ids and store versions.

    Addresses given to :meth:`store` / :meth:`load` are byte addresses;
    ops are recorded at line granularity by the simulator but kept
    byte-accurate in the trace.
    """

    def __init__(self, name: str, start_tx_id: int = 1) -> None:
        self.trace = Trace(name=name)
        self._next_tx = start_tx_id
        self._open_tx: Optional[int] = None
        self._tx_seq = 0

    @property
    def in_tx(self) -> bool:
        return self._open_tx is not None

    def begin_tx(self) -> int:
        if self._open_tx is not None:
            raise ValueError("nested transactions are not supported")
        tx_id = self._next_tx
        self._next_tx += 1
        self._open_tx = tx_id
        self._tx_seq = 0
        self.trace.ops.append(TraceOp(OpType.TX_BEGIN, tx_id=tx_id))
        return tx_id

    def end_tx(self) -> None:
        if self._open_tx is None:
            raise ValueError("TX_END without TX_BEGIN")
        self.trace.ops.append(TraceOp(OpType.TX_END, tx_id=self._open_tx))
        self._open_tx = None

    def load(self, addr: int) -> None:
        self.trace.ops.append(TraceOp(OpType.LOAD, addr=addr, tx_id=self._open_tx))

    def store(self, addr: int) -> None:
        version = None
        if self._open_tx is not None and is_persistent_addr(addr):
            version = Version(self._open_tx, self._tx_seq)
            self._tx_seq += 1
        self.trace.ops.append(
            TraceOp(OpType.STORE, addr=addr, tx_id=self._open_tx, version=version))

    def compute(self, count: int = 1) -> None:
        if count > 0:
            ops = self.trace.ops
            if ops and ops[-1].op is OpType.COMPUTE:
                ops[-1].count += count
            else:
                ops.append(TraceOp(OpType.COMPUTE, count=count))

    def build(self) -> Trace:
        if self._open_tx is not None:
            raise ValueError("trace ends inside a transaction")
        self.trace.validate()
        return self.trace
