"""Trace-driven CPU core timing model.

Approximates the paper's 4-issue out-of-order core (simulated there
with MARSSx86/PTLsim) with the stall structure that actually drives the
paper's results:

* COMPUTE retires ``issue_width`` instructions per cycle;
* LOADs block the dependent instruction stream — an out-of-order
  window of ``hide_cycles`` is credited against *synchronously known*
  latencies (cache hits), while memory misses stall for their full
  duration (a 130+-cycle NVM miss cannot hide in a 16-cycle window);
* STOREs retire into a finite store buffer and only stall the core
  when the buffer is full — or when the persistence scheme itself
  back-pressures the issue (e.g. a full transaction cache, §4.1);
* TX_BEGIN / TX_END maintain the mode and TxID registers of the
  paper's Fig. 5 and delegate commit work to the scheme (SP fences,
  Kiln commit flushes, TC commit messages).

The core owns per-core stall statistics; IPC and throughput are
computed by the runner from ``instructions_retired`` /
``committed_transactions`` and the final ``cycle``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..common.config import CoreConfig
from ..common.event import Simulator
from ..common.stats import ScopedStats
from ..cpu.trace import (
    KIND_CLWB,
    KIND_COMPUTE,
    KIND_LOAD,
    KIND_SFENCE,
    KIND_STORE,
    KIND_TX_BEGIN,
    KIND_TX_END,
    OpType,
    Trace,
    TraceOp,
)
from ..obs.tracer import NULL_TRACER, NullTracer
from ..persistence.base import PersistenceScheme


class Core:
    """One CPU core executing a prepared trace under a scheme.

    ``__slots__`` plus a per-instance dispatch table: the retire loop
    runs once per trace op, so attribute reads stay off the instance
    dict and op dispatch is a list index on the op's dense kind code
    instead of a dict built per call.
    """

    __slots__ = (
        "sim", "core_id", "config", "stats", "scheme", "tracer", "_track",
        "mode_tx", "next_tx_id", "cycle", "_ops", "_kinds", "_counts",
        "_ip", "_on_done", "_sb_tokens", "_sb_waiting", "done",
        "_stall_reason", "_tx_begin_cycle", "instructions_retired",
        "committed_transactions", "_handlers", "_issue_width",
        "_inc", "_sample", "_k_stall_prefix", "_k_stall_total",
        "_k_load_latency", "_k_persist_load_latency",
        "_cur_op", "_cur_issued",
    )

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        config: CoreConfig,
        stats: ScopedStats,
        scheme: PersistenceScheme,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.sim = sim
        self.core_id = core_id
        self.config = config
        self.stats = stats
        self.scheme = scheme
        self.tracer = tracer
        self._track = f"core{core_id}"  # tracer thread label
        # architectural registers of the paper's Fig. 5
        self.mode_tx: Optional[int] = None   # TxID/Mode register (None = normal)
        self.next_tx_id: int = 1             # Next TxID register
        # execution state
        self.cycle = 0
        self._ops: List[TraceOp] = []
        self._kinds: List[int] = []
        self._counts: List[int] = []
        self._ip = 0
        self._on_done: Optional[Callable[[], None]] = None
        self._sb_tokens = config.store_buffer_entries
        self._sb_waiting = False
        self.done = False
        # stall attribution: the scheme names the reason it is about to
        # delay this core for; the completion helper charges the cycles
        self._stall_reason: Optional[str] = None
        # the op currently blocking this core and its issue cycle: the
        # core retires strictly one op at a time, so its completion
        # callbacks are plain bound methods over these two fields
        # instead of a fresh closure per load/store/fence
        self._cur_op: Optional[TraceOp] = None
        self._cur_issued = 0
        self._tx_begin_cycle = 0
        # headline metrics
        self.instructions_retired = 0
        self.committed_transactions = 0
        # hot-path precomputation: dispatch table indexed by op kind
        # code, issue width, and resolved stat keys
        handlers = [None] * 7
        handlers[KIND_LOAD] = self._do_load
        handlers[KIND_STORE] = self._do_store
        handlers[KIND_TX_BEGIN] = self._do_tx_begin
        handlers[KIND_TX_END] = self._do_tx_end
        handlers[KIND_CLWB] = self._do_clwb
        handlers[KIND_SFENCE] = self._do_sfence
        self._handlers = handlers
        self._issue_width = config.issue_width
        base = stats.base
        self._inc = base.inc
        self._sample = base.sample
        self._k_stall_prefix = stats.resolve("stall.")
        self._k_stall_total = stats.resolve("stall.total")
        self._k_load_latency = stats.resolve("load.latency")
        self._k_persist_load_latency = stats.resolve("persist_load.latency")

    # ------------------------------------------------------------------
    def run_trace(self, trace: Trace, on_done: Optional[Callable[[], None]] = None) -> None:
        """Begin executing ``trace`` (already scheme-prepared)."""
        compiled = trace.compiled()
        self._ops = trace.ops
        self._kinds = compiled.kinds
        self._counts = compiled.counts
        self._ip = 0
        self._on_done = on_done
        self.done = False
        self.sim.schedule_at(max(self.cycle, self.sim.now), self._step)

    @property
    def in_transaction(self) -> bool:
        return self.mode_tx is not None

    # ------------------------------------------------------------------
    def _step(self) -> None:
        """Retire ops until one needs the event system, then yield.

        COMPUTE runs retire from the compiled flat arrays — two int
        list reads per op, with cycle/retired-instruction totals folded
        back into the instance only when the loop yields."""
        ops = self._ops
        kinds = self._kinds
        counts = self._counts
        n = len(ops)
        ip = self._ip
        cycle = self.cycle
        issue = self._issue_width
        retired = 0
        while ip < n:
            if kinds[ip] == KIND_COMPUTE:
                count = counts[ip]
                cycle += (count + issue - 1) // issue
                retired += count
                ip += 1
                continue
            # every other op interacts with timing components: align the
            # kernel clock with the core clock first.
            self._ip = ip
            self.cycle = cycle
            if retired:
                self.instructions_retired += retired
            if cycle > self.sim.now:
                self.sim.schedule_at(cycle, self._step)
                return
            self.cycle = self.sim.now
            self._handlers[kinds[ip]](ops[ip])
            return
        self._ip = ip
        self.cycle = cycle
        if retired:
            self.instructions_retired += retired
        self.done = True
        self.stats.inc("finished", 1)
        if self.tracer.enabled:
            self.tracer.instant("core", self._track, "finished", self.cycle,
                                instructions=self.instructions_retired)
        if self._on_done is not None:
            self._on_done()

    def _advance(self) -> None:
        """Move past the current op and continue execution."""
        self._ip += 1
        self._step()

    # -- stall attribution ---------------------------------------------
    def attribute_stall(self, reason: str) -> None:
        """Called by the persistence scheme *before* it delays this
        core's current op: the next completion charges its stalled
        cycles to ``reason`` (e.g. ``tc_full``, ``flush``, ``ack_wait``)
        instead of the op's default."""
        self._stall_reason = reason

    def _account_stall(self, issued: int, default_reason: str) -> None:
        """Charge the current op's stall (cycles beyond its 1-cycle
        issue slot) to one reason, and maintain ``stall.total`` at the
        same site — so per-kind counters sum to the total *by
        construction* (the invariant :class:`repro.obs.StallReport`
        asserts)."""
        reason = self._stall_reason or default_reason
        self._stall_reason = None
        stall = self.cycle - issued - 1
        if stall > 0:
            inc = self._inc
            inc(self._k_stall_prefix + reason, stall)
            inc(self._k_stall_total, stall)
            if self.tracer.enabled:
                self.tracer.complete("core", self._track,
                                     f"stall.{reason}", issued + 1, stall)

    # ------------------------------------------------------------------
    def _dispatch(self, op: TraceOp) -> None:
        self._handlers[op.kind](op)

    # -- loads ---------------------------------------------------------
    def _do_load(self, op: TraceOp) -> None:
        self._cur_issued = self.cycle
        self._cur_op = op
        self.scheme.load(self, op, self._load_complete)

    def _load_complete(self, latency: int, version) -> None:
        issued = self._cur_issued
        if self.sim.now == issued:
            # Synchronous (cache hit): the OoO window hides part of it.
            cost = max(1, latency - self.config.hide_cycles)
            self.cycle = issued + cost
        else:
            # Memory miss: resumed by the fill event.
            self.cycle = max(self.sim.now, issued + 1)
        self._account_stall(issued, "load")
        self._sample(self._k_load_latency, latency)
        if self._cur_op.persistent:
            self._sample(self._k_persist_load_latency, latency)
        self.instructions_retired += 1
        self._advance()

    # -- stores ----------------------------------------------------------
    def _do_store(self, op: TraceOp) -> None:
        if self._sb_tokens == 0:
            # Store buffer full: retry when a store retires.
            self._sb_waiting = True
            self.stats.inc("stall.store_buffer.events")
            return
        self._sb_tokens -= 1
        self._cur_issued = self.cycle
        self._cur_op = op
        self.scheme.store(self, op, self._store_issued, self._store_retired)

    def _store_issued(self, latency: int) -> None:
        issued = self._cur_issued
        if self.sim.now == issued:
            self.cycle = issued + max(1, latency)
        else:
            self.cycle = max(self.sim.now, issued + 1)
        self._account_stall(issued, "store_issue")
        self.instructions_retired += 1
        self._advance()

    def _store_retired(self, _latency: int) -> None:
        self._sb_tokens += 1
        if self._sb_waiting:
            self._sb_waiting = False
            resume_at = max(self.cycle, self.sim.now)
            stall = resume_at - self.cycle
            if stall > 0:
                self.stats.inc("stall.store_buffer", stall)
                self.stats.inc("stall.total", stall)
                if self.tracer.enabled:
                    self.tracer.complete("core", self._track,
                                         "stall.store_buffer",
                                         self.cycle, stall)
            self.cycle = resume_at
            self.sim.schedule_at(resume_at, self._step)

    # -- transactions ----------------------------------------------------
    def _do_tx_begin(self, op: TraceOp) -> None:
        issued = self.cycle
        # TX_BEGIN: copy next TxID into the mode register, bump it (§4.2).
        self.mode_tx = op.tx_id
        self.next_tx_id = (op.tx_id or 0) + 1
        self._tx_begin_cycle = issued
        self._cur_issued = issued
        self._cur_op = op
        self.scheme.tx_begin(self, op, self._tx_begin_resume)

    def _tx_begin_resume(self) -> None:
        issued = self._cur_issued
        self.cycle = max(self.sim.now, issued + 1)
        self._account_stall(issued, "commit")
        self.instructions_retired += 1
        self._advance()

    def _do_tx_end(self, op: TraceOp) -> None:
        self._cur_issued = self.cycle
        self._cur_op = op
        self.scheme.tx_end(self, op, self._tx_end_resume)

    def _tx_end_resume(self) -> None:
        issued = self._cur_issued
        self.cycle = max(self.sim.now, issued + 1)
        self._account_stall(issued, "commit")
        if self.tracer.enabled:
            self.tracer.complete(
                "core", self._track, "tx", self._tx_begin_cycle,
                self.cycle - self._tx_begin_cycle, tx=self._cur_op.tx_id)
        self.mode_tx = None
        self.committed_transactions += 1
        self.instructions_retired += 1
        self._advance()

    # -- SP instrumentation ops -------------------------------------------
    def _do_clwb(self, op: TraceOp) -> None:
        self._cur_issued = self.cycle
        self._cur_op = op
        self.scheme.clwb(self, op, self._fence_resume)

    def _do_sfence(self, op: TraceOp) -> None:
        self._cur_issued = self.cycle
        self._cur_op = op
        self.scheme.sfence(self, op, self._fence_resume)

    def _fence_resume(self) -> None:
        issued = self._cur_issued
        self.cycle = max(self.sim.now, issued + 1)
        self._account_stall(issued, "fence")
        self.instructions_retired += 1
        self._advance()
