"""Discrete-event simulation kernel.

All timing components in the simulator (cores, caches, memory
controllers, the transaction cache) share one :class:`Simulator`
instance.  Time is measured in CPU cycles (integers).  Components
schedule callbacks with :meth:`Simulator.schedule` and the kernel runs
them in (time, insertion-order) order, so same-cycle events fire in the
order they were scheduled — a deterministic tie-break that keeps every
simulation run reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling into the past, etc.)."""


class Simulator:
    """A minimal deterministic discrete-event kernel.

    >>> sim = Simulator()
    >>> order = []
    >>> sim.schedule(5, order.append, 'b')
    >>> sim.schedule(1, order.append, 'a')
    >>> sim.run()
    >>> order
    ['a', 'b']
    >>> sim.now
    5
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple]] = []
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self._on_advance: Optional[Callable[[int], None]] = None

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def set_advance_hook(self, hook: Optional[Callable[[int], None]]) -> None:
        """Install ``hook(new_time)``, called whenever :meth:`step`
        advances simulation time — *between* events, never during one.

        This is how the observability layer's epoch sampler observes
        the clock without scheduling events of its own: a
        self-rescheduling sampler event would keep the queue non-empty
        forever and perturb same-cycle insertion order, whereas the
        hook leaves the event schedule untouched.  The hook must not
        call :meth:`schedule`; it fires with ``now`` already at the
        new time.  Pass ``None`` to remove.
        """
        self._on_advance = hook

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles into the past")
        self.schedule_at(self._now + int(delay), fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; current time is {self._now}"
            )
        heapq.heappush(self._queue, (int(time), self._seq, fn, args))
        self._seq += 1

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def step(self) -> bool:
        """Run the single next event.  Returns False if none remain."""
        if not self._queue:
            return False
        time, _seq, fn, args = heapq.heappop(self._queue)
        if time > self._now and self._on_advance is not None:
            self._now = time
            self._on_advance(time)
        else:
            self._now = time
        fn(*args)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once simulation time would exceed this cycle
                (events at exactly ``until`` still run).
            max_events: safety valve — raise if more than this many
                events fire (guards against livelock bugs in components).

        Returns:
            The number of events executed.
        """
        executed = 0
        while self._queue:
            time = self._queue[0][0]
            if until is not None and time > until:
                break
            self.step()
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; probable livelock"
                )
        if until is not None and self._now < until:
            self._now = until
        return executed
