"""Discrete-event simulation kernel.

All timing components in the simulator (cores, caches, memory
controllers, the transaction cache) share one :class:`Simulator`
instance.  Time is measured in CPU cycles (integers).  Components
schedule callbacks with :meth:`Simulator.schedule` and the kernel runs
them in (time, insertion-order) order, so same-cycle events fire in the
order they were scheduled — a deterministic tie-break that keeps every
simulation run reproducible.

Three interchangeable kernels implement that contract:

* :class:`Simulator` — the reference implementation, a flat ``heapq``
  of ``(time, seq, fn, args)`` tuples.  Simple, obviously correct, and
  the semantics oracle the property tests compare against.
* :class:`TimingWheelSimulator` — a hierarchical timing wheel (near
  -future bucket array + far-future heap overflow) with batched
  same-cycle drains.  Observationally equivalent to the reference
  kernel — identical firing order, advance-hook points, and
  ``run(until=..., max_events=...)`` semantics — but cheaper per event
  on the bursty schedules cycle-accurate simulation produces.
* :class:`ColumnarSimulator` — the timing wheel with columnar bucket
  storage: each bucket is a flat ``[fn, args, fn, args, ...]`` column
  (no per-event tuple), with bucket timestamps in a parallel column.
  It also announces itself via ``columnar = True`` so components
  (memory controller, transaction cache, compiled traces) switch on
  their own columnar fast paths — all observationally equivalent, and
  oracle-checked against the object kernels by the three-way matrix in
  ``tests/test_kernel_equivalence.py``.

:func:`create_simulator` picks the kernel, honouring the
``REPRO_SIM_KERNEL`` environment variable (``wheel`` | ``heap`` |
``columnar``) so a whole figure run can be A/B'd between kernels
without code changes.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, List, Optional, Tuple

#: environment variable selecting the event kernel for new systems
KERNEL_ENV = "REPRO_SIM_KERNEL"
#: kernel used when the environment does not say otherwise
DEFAULT_KERNEL = "wheel"
#: recognised kernel names, in (default-first) preference order
KERNEL_NAMES = ("wheel", "heap", "columnar")


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling into the past, etc.)."""


def _as_cycles(value: Any, what: str) -> int:
    """Validate ``value`` as a whole number of cycles.

    Accepts ints and integral floats (``2.0`` → ``2``); rejects
    fractional values instead of silently truncating them — a
    ``schedule(1.5, ...)`` bug used to fire one cycle early via
    ``int()``.
    """
    if type(value) is int:
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise SimulationError(
            f"non-integral {what} {value!r}: simulation time is counted "
            "in whole cycles (round explicitly at the call site)")
    if isinstance(value, int):  # bool / int subclasses
        return int(value)
    raise SimulationError(
        f"{what} must be an integral number of cycles, got {value!r}")


class Simulator:
    """A minimal deterministic discrete-event kernel.

    >>> sim = Simulator()
    >>> order = []
    >>> sim.schedule(5, order.append, 'b')
    >>> sim.schedule(1, order.append, 'a')
    >>> sim.run()
    2
    >>> order
    ['a', 'b']
    >>> sim.now
    5
    """

    #: True on kernels whose components should switch to their columnar
    #: fast paths (flat column state, parked-poll scheduler ticks).
    #: Class attribute so the hot-path probe is a plain attribute read.
    columnar = False

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple]] = []
        #: current simulation time in cycles — a plain attribute, not a
        #: property: the clock is read millions of times per run and
        #: only the kernel writes it
        self.now: int = 0
        self._seq: int = 0
        self._running = False
        self._on_advance: Optional[Callable[[int], None]] = None

    def set_advance_hook(self, hook: Optional[Callable[[int], None]]) -> None:
        """Install ``hook(new_time)``, called whenever the kernel
        advances simulation time — *between* events, never during one.

        This is how the observability layer's epoch sampler observes
        the clock without scheduling events of its own: a
        self-rescheduling sampler event would keep the queue non-empty
        forever and perturb same-cycle insertion order, whereas the
        hook leaves the event schedule untouched.  The hook must not
        call :meth:`schedule`; it fires with ``now`` already at the
        new time.  Pass ``None`` to remove.
        """
        self._on_advance = hook

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if type(delay) is not int:  # fast path: almost every call passes int
            delay = _as_cycles(delay, "delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles into the past")
        self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at absolute ``time``."""
        if type(time) is not int:
            time = _as_cycles(time, "time")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}; current time is {self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, fn, args))
        self._seq += 1

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def step(self) -> bool:
        """Run the single next event.  Returns False if none remain."""
        if not self._queue:
            return False
        time, _seq, fn, args = heapq.heappop(self._queue)
        if time > self.now and self._on_advance is not None:
            self.now = time
            self._on_advance(time)
        else:
            self.now = time
        fn(*args)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once simulation time would exceed this cycle
                (events at exactly ``until`` still run).
            max_events: safety valve — raise if more than this many
                events fire (guards against livelock bugs in components).

        Returns:
            The number of events executed.
        """
        executed = 0
        while self._queue:
            time = self._queue[0][0]
            if until is not None and time > until:
                break
            self.step()
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; probable livelock"
                )
        if until is not None and self.now < until:
            self.now = until
        return executed


class TimingWheelSimulator(Simulator):
    """Timing-wheel event kernel: near-future wheel, far-future heap.

    Events within ``WHEEL_SIZE`` cycles of *now* live in a circular
    array of buckets indexed by ``time & (WHEEL_SIZE - 1)``; events
    beyond the horizon overflow to a plain heap and migrate into the
    wheel as time advances.  An occupancy bitmap (one Python int, one
    bit per bucket) makes next-event search a single rotate +
    lowest-set-bit scan instead of a heap sift, and each occupied
    bucket is drained in a batched inner loop — the advance-hook check
    and next-event search run once per distinct timestamp, not once
    per event.

    Correctness invariants (exercised by the property tests in
    ``tests/test_kernel_equivalence.py``):

    * **bucket uniqueness** — a bucket only ever holds one distinct
      timestamp: the live window ``[now, now + WHEEL_SIZE - 1]`` covers
      each residue class exactly once, and a bucket is emptied before
      *now* can wrap back onto it.
    * **migration ordering** — far-future events migrate (in heap
      order) at *every* time advance, before any callback at the new
      time runs, so a migrated event always lands in its bucket ahead
      of any same-time event scheduled later (its sequence number is
      smaller, and bucket order is append order).
    * **batched FIFO** — callbacks that schedule for the current cycle
      append to the bucket being drained and are picked up by the
      index-based inner loop, preserving (time, seq) order exactly.
    """

    #: bucket count; power of two so ``time & mask`` is the bucket
    #: index.  Sized so the occupancy bitmap stays a few machine words
    #: (bitmap shifts allocate ints of this many bits on every peek)
    #: while still covering the common component latencies — cache
    #: fills (≤ ~20 cycles), bank service times (≤ ~176 cycles at the
    #: paper's timings), scheduler periods — without overflowing to
    #: the far heap.
    WHEEL_SIZE = 256

    def __init__(self) -> None:
        super().__init__()
        size = self.WHEEL_SIZE
        self._size = size
        self._mask = size - 1
        self._wheel: List[list] = [[] for _ in range(size)]
        self._occ = 0           # occupancy bitmap: bit i ⇔ bucket i non-empty
        self._near = 0          # events currently in the wheel
        self._far = self._queue  # far-future overflow heap (reuses base slot)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at absolute ``time``."""
        if type(time) is not int:
            time = _as_cycles(time, "time")
        now = self.now
        if time < now:
            raise SimulationError(
                f"cannot schedule at {time}; current time is {now}"
            )
        seq = self._seq
        self._seq = seq + 1
        mask = self._mask
        if time - now <= mask:
            # The bucket-uniqueness invariant (see class docstring)
            # guarantees any current occupants are at this same time;
            # the property tests in test_kernel_equivalence.py exercise
            # it, so no per-event assert here.
            idx = time & mask
            bucket = self._wheel[idx]
            if not bucket:
                self._occ |= 1 << idx
            bucket.append((time, seq, fn, args))
            self._near += 1
        else:
            heapq.heappush(self._far, (time, seq, fn, args))

    def pending(self) -> int:
        """Number of events still queued."""
        return self._near + len(self._far)

    def _migrate(self) -> None:
        """Pull far-future events now inside the wheel horizon into
        their buckets.  Must run at every time advance, before any
        callback at the new time executes."""
        far = self._far
        if not far:
            return
        horizon = self.now + self._mask
        mask = self._mask
        wheel = self._wheel
        pop = heapq.heappop
        while far and far[0][0] <= horizon:
            item = pop(far)
            idx = item[0] & mask
            bucket = wheel[idx]
            if not bucket:
                self._occ |= 1 << idx
            bucket.append(item)
            self._near += 1

    def _peek_bucket(self) -> Optional[list]:
        """The bucket holding the earliest pending events (after
        migrating anything due into the wheel), or None if empty."""
        occ = self._occ
        if not occ:
            # Far-only events are outside the horizon; migration
            # happens once time advances (in step/run), not here.
            return None
        # Bucket b >= idx_now holds time now + (b - idx_now); bucket
        # b < idx_now holds the wrapped time now + (b + size - idx_now).
        # So the earliest bucket is the first occupied index at or
        # above idx_now, else the first occupied index from zero —
        # two cheap shift/lsb probes instead of a full-width rotate.
        idx_now = self.now & self._mask
        high = occ >> idx_now
        if high:
            idx = idx_now + ((high & -high).bit_length() - 1)
        else:
            idx = (occ & -occ).bit_length() - 1
        return self._wheel[idx]

    def _next_time(self) -> Optional[int]:
        """Earliest pending timestamp, or None."""
        bucket = self._peek_bucket()
        if bucket is not None:
            return bucket[0][0]
        if self._far:
            return self._far[0][0]
        return None

    def _advance_to(self, time: int) -> None:
        """Move the clock to ``time``: migrate newly-near far events,
        then fire the advance hook (matching the reference kernel's
        hook point — after the clock moves, before any callback)."""
        self.now = time
        if self._far:
            self._migrate()
        if self._on_advance is not None:
            self._on_advance(time)

    def step(self) -> bool:
        """Run the single next event.  Returns False if none remain."""
        bucket = self._peek_bucket()
        if bucket is None:
            if not self._far:
                return False
            self._advance_to(self._far[0][0])
            bucket = self._wheel[self.now & self._mask]
        else:
            time = bucket[0][0]
            if time != self.now:
                self._advance_to(time)
        entry = bucket.pop(0)
        self._near -= 1
        if not bucket:
            self._occ &= ~(1 << (entry[0] & self._mask))
        entry[2](*entry[3])
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue (same contract as the reference
        kernel; see :meth:`Simulator.run`).

        The peek/advance logic of :meth:`_peek_bucket` /
        :meth:`_advance_to` is inlined here: this loop runs once per
        distinct timestamp of the whole simulation, and the two call
        frames were the largest per-timestamp cost left."""
        executed = 0
        limit = max_events if max_events is not None else float("inf")
        mask = self._mask
        wheel = self._wheel
        far = self._far
        while True:
            # Cycle-accurate schedules are dense: the next occupied
            # bucket is almost always within a few cycles of now, so
            # probe a handful of buckets directly (list index + truth
            # test) before paying for the bitmap scan, whose multiword
            # int shifts allocate on every probe.
            now = self.now
            idx_now = now & mask
            bucket = (wheel[idx_now] or wheel[(idx_now + 1) & mask]
                      or wheel[(idx_now + 2) & mask]
                      or wheel[(idx_now + 3) & mask])
            if bucket:
                time = bucket[0][0]
            else:
                # sparse stretch: bitmap scan (see _peek_bucket)
                occ = self._occ
                if occ:
                    high = occ >> idx_now
                    if high:
                        idx = idx_now + ((high & -high).bit_length() - 1)
                    else:
                        idx = (occ & -occ).bit_length() - 1
                    bucket = wheel[idx]
                    time = bucket[0][0]
                elif far:
                    bucket = None
                    time = far[0][0]
                else:
                    break
            if until is not None and time > until:
                break
            if time != now:
                # inline _advance_to: clock forward, migrate, hook
                self.now = time
                if far:
                    self._migrate()
                if self._on_advance is not None:
                    self._on_advance(time)
                if bucket is None:
                    bucket = wheel[time & mask]
            # Batched same-cycle drain: every entry in this bucket is at
            # ``time``; callbacks may append same-cycle events (picked up
            # by the index loop) or touch other buckets / the far heap
            # (handled by the outer loop's fresh scan).
            i = 0
            n = len(bucket)
            try:
                while i < n:
                    entry = bucket[i]
                    i += 1
                    entry[2](*entry[3])
                    executed += 1
                    if executed > limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "probable livelock")
                    if i == n:
                        # batch boundary: pick up same-cycle events the
                        # callbacks just appended
                        n = len(bucket)
            finally:
                if i:
                    del bucket[:i]
                    self._near -= i
                    if not bucket:
                        self._occ &= ~(1 << (time & mask))
        if until is not None and self.now < until:
            # Match the reference kernel's quiet clock jump (no advance
            # hook), but still migrate so later near-horizon schedules
            # cannot leapfrog older far-future events in bucket order.
            self.now = until
            self._migrate()
        return executed


class ColumnarSimulator(TimingWheelSimulator):
    """Timing wheel with columnar bucket storage.

    The object wheel stores one ``(time, seq, fn, args)`` tuple per
    event.  Two of those fields are redundant inside a bucket: the
    bucket-uniqueness invariant means every event in a bucket shares
    one timestamp, and the batched-FIFO invariant means bucket append
    order *is* (time, seq) order.  So here a bucket is a flat
    ``[fn, args, fn, args, ...]`` column — no per-event tuple is ever
    allocated — and bucket timestamps live in one parallel
    ``_btime`` column indexed by bucket.  Only far-future overflow
    events (beyond the wheel horizon) still carry ``(time, seq, fn,
    args)`` tuples, because the heap needs explicit keys; they shed
    the tuple when they migrate into the wheel.

    Sequence numbers are only assigned to far-heap pushes.  Ordering
    stays exact: a far event at time T always migrates at the clock
    advance that brings T inside the horizon, *before* any near event
    at T can be scheduled (T was outside the horizon until that very
    advance), so flat append order equals global (time, seq) order.

    Firing order, advance-hook points, ``run(until=...,
    max_events=...)`` semantics, ``pending()`` counts and final clock
    values are all identical to the object kernels; the three-way
    matrix in ``tests/test_kernel_equivalence.py`` holds this to
    bit-identity.  ``columnar = True`` additionally switches component
    fast paths (controller parked polls, columnar TC, compiled-trace
    columns) — each of which preserves the exact event stream and
    stats of the object path.
    """

    columnar = True

    def __init__(self) -> None:
        super().__init__()
        # parallel column: _btime[i] is the timestamp of bucket i's
        # events, valid whenever bucket i is non-empty.  _near counts
        # occupied column *slots* here (two per event), so bucket
        # drains can subtract raw slot counts.
        self._btime: List[int] = [0] * self._size

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at absolute ``time``."""
        if type(time) is not int:
            time = _as_cycles(time, "time")
        now = self.now
        if time < now:
            raise SimulationError(
                f"cannot schedule at {time}; current time is {now}"
            )
        mask = self._mask
        if time - now <= mask:
            idx = time & mask
            bucket = self._wheel[idx]
            if not bucket:
                self._occ |= 1 << idx
                self._btime[idx] = time
            bucket.append(fn)
            bucket.append(args)
            self._near += 2
        else:
            seq = self._seq
            self._seq = seq + 1
            heapq.heappush(self._far, (time, seq, fn, args))

    def schedule_tick(self, time: int, fn: Callable[[], Any]) -> None:
        """Near-horizon fast append for self-rescheduling tick chains.

        The caller guarantees ``now <= time <= now + horizon`` and an
        int ``time`` (a chain re-arm is always ``now + small``), so the
        argument checks and the far-heap branch of :meth:`schedule_at`
        are skipped.  ``fn`` takes no arguments (chain callbacks read
        the clock).  Ordering is identical: the pair lands exactly
        where ``schedule_at`` would have appended it."""
        idx = time & self._mask
        bucket = self._wheel[idx]
        if not bucket:
            self._occ |= 1 << idx
            self._btime[idx] = time
        bucket.append(fn)
        bucket.append(())
        self._near += 2

    def pending(self) -> int:
        """Number of events still queued."""
        return (self._near >> 1) + len(self._far)

    def _migrate(self) -> None:
        """Pull far-future events now inside the wheel horizon into
        their buckets, shedding the heap tuple into the flat columns."""
        far = self._far
        if not far:
            return
        horizon = self.now + self._mask
        mask = self._mask
        wheel = self._wheel
        btime = self._btime
        pop = heapq.heappop
        while far and far[0][0] <= horizon:
            time, _seq, fn, args = pop(far)
            idx = time & mask
            bucket = wheel[idx]
            if not bucket:
                self._occ |= 1 << idx
                btime[idx] = time
            bucket.append(fn)
            bucket.append(args)
            self._near += 2

    def _earliest_bucket_index(self) -> Optional[int]:
        """Index of the bucket holding the earliest pending events, or
        None when the wheel is empty (far heap not consulted — far
        events are beyond the horizon, hence later than any wheel
        event)."""
        occ = self._occ
        if not occ:
            return None
        idx_now = self.now & self._mask
        high = occ >> idx_now
        if high:
            return idx_now + ((high & -high).bit_length() - 1)
        return (occ & -occ).bit_length() - 1

    def _peek_bucket(self) -> Optional[list]:
        idx = self._earliest_bucket_index()
        return None if idx is None else self._wheel[idx]

    def _next_time(self) -> Optional[int]:
        """Earliest pending timestamp, or None."""
        idx = self._earliest_bucket_index()
        if idx is not None:
            return self._btime[idx]
        if self._far:
            return self._far[0][0]
        return None

    def step(self) -> bool:
        """Run the single next event.  Returns False if none remain."""
        idx = self._earliest_bucket_index()
        if idx is None:
            if not self._far:
                return False
            self._advance_to(self._far[0][0])
            idx = self.now & self._mask
        else:
            time = self._btime[idx]
            if time != self.now:
                self._advance_to(time)
        bucket = self._wheel[idx]
        fn = bucket[0]
        args = bucket[1]
        del bucket[:2]
        self._near -= 2
        if not bucket:
            self._occ &= ~(1 << idx)
        fn(*args)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue (same contract as the reference
        kernel; see :meth:`Simulator.run`).

        Structured like the object wheel's run loop, draining flat
        ``fn, args`` pairs: the direct 4-bucket probe exploits the fact
        that a non-empty bucket at index ``(now + k) & mask`` *must*
        hold time ``now + k`` (the live window covers each residue
        class exactly once), so the probes need no timestamp reads at
        all."""
        executed = 0
        limit = max_events if max_events is not None else float("inf")
        mask = self._mask
        wheel = self._wheel
        far = self._far
        btime = self._btime
        while True:
            now = self.now
            idx_now = now & mask
            time = now
            bucket = wheel[idx_now]
            if not bucket:
                time = now + 1
                bucket = wheel[(idx_now + 1) & mask]
                if not bucket:
                    time = now + 2
                    bucket = wheel[(idx_now + 2) & mask]
                    if not bucket:
                        time = now + 3
                        bucket = wheel[(idx_now + 3) & mask]
            if not bucket:
                # sparse stretch: bitmap scan (see the object wheel)
                occ = self._occ
                if occ:
                    high = occ >> idx_now
                    if high:
                        idx = idx_now + ((high & -high).bit_length() - 1)
                    else:
                        idx = (occ & -occ).bit_length() - 1
                    bucket = wheel[idx]
                    time = btime[idx]
                elif far:
                    bucket = None
                    time = far[0][0]
                else:
                    break
            if until is not None and time > until:
                break
            if time != now:
                # inline _advance_to: clock forward, migrate, hook
                # (migration head-checked inline — far events beyond
                # the new horizon are the common case on poll chains)
                self.now = time
                if far and far[0][0] <= time + mask:
                    self._migrate()
                if self._on_advance is not None:
                    self._on_advance(time)
                if bucket is None:
                    bucket = wheel[time & mask]
            # Batched same-cycle drain over the flat column; callbacks
            # may append same-cycle pairs (picked up by the index loop).
            i = 0
            n = len(bucket)
            try:
                while i < n:
                    fn = bucket[i]
                    args = bucket[i + 1]
                    i += 2
                    fn(*args)
                    executed += 1
                    if executed > limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "probable livelock")
                    if i == n:
                        # batch boundary: pick up same-cycle appends
                        n = len(bucket)
            finally:
                if i:
                    del bucket[:i]
                    self._near -= i
                    if not bucket:
                        self._occ &= ~(1 << (time & mask))
        if until is not None and self.now < until:
            # Match the reference kernel's quiet clock jump (no advance
            # hook), but still migrate so later near-horizon schedules
            # cannot leapfrog older far-future events in bucket order.
            self.now = until
            self._migrate()
        return executed


def default_kernel() -> str:
    """Kernel name selected by the environment (or the default)."""
    kernel = os.environ.get(KERNEL_ENV, DEFAULT_KERNEL).strip().lower()
    return kernel or DEFAULT_KERNEL


def create_simulator(kernel: Optional[str] = None) -> Simulator:
    """Build an event kernel.

    ``kernel`` may be ``"wheel"`` (timing wheel, the default),
    ``"heap"`` (the heapq reference kernel) or ``"columnar"`` (the
    columnar batch kernel); when omitted, the ``REPRO_SIM_KERNEL``
    environment variable decides.  All three are observationally
    equivalent — every figure is bit-identical under any of them — so
    this is a performance/verification knob, not a modelling one.
    """
    name = (kernel or default_kernel()).strip().lower()
    if name == "wheel":
        return TimingWheelSimulator()
    if name == "heap":
        return Simulator()
    if name == "columnar":
        return ColumnarSimulator()
    raise SimulationError(
        f"unknown simulator kernel {name!r} (expected one of {KERNEL_NAMES})")
