"""Shared value types: address spaces, memory requests, trace versions.

Addresses are plain integers (byte addresses).  The machine exposes two
physical spaces — volatile DRAM and persistent NVM — split by a fixed
base address (see :data:`NVM_BASE`): the persistent heap allocator hands
out NVM addresses, everything else lives in DRAM.  This mirrors the
paper's hybrid memory bus with one controller per space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional

#: Cache line size in bytes (paper: 64 B lines).
CACHE_LINE_SIZE = 64

#: Byte addresses at or above this value live in the persistent (NVM)
#: space; everything below is volatile DRAM.
NVM_BASE = 1 << 40


class MemSpace(enum.Enum):
    """Which physical memory a request targets."""

    DRAM = "dram"
    NVM = "nvm"

    @staticmethod
    def of(addr: int) -> "MemSpace":
        """Classify a byte address into its physical space."""
        return MemSpace.NVM if addr >= NVM_BASE else MemSpace.DRAM


def line_addr(addr: int) -> int:
    """Round a byte address down to its cache-line address."""
    return addr & ~(CACHE_LINE_SIZE - 1)


#: Application persistent heaps live in [NVM_BASE, HOME_REGION_LIMIT);
#: everything above is scheme metadata (logs, shadow copies, commit
#: records) and is excluded from recovered application images.
HOME_REGION_LIMIT = NVM_BASE + (1 << 36)

#: DRAM-resident log regions (the hybrid DRAM-logged scheme's write-set
#: log) live at [DRAM_LOG_BASE, NVM_BASE); ordinary volatile heaps stay
#: below.  Like the NVM metadata split, this lets the memory model give
#: log traffic its own banks (see ``MemCtrlConfig.log_banks``).
DRAM_LOG_BASE = 1 << 38


def is_persistent_addr(addr: int) -> bool:
    """True if the address belongs to the persistent (NVM) space."""
    return addr >= NVM_BASE


def is_home_line(addr: int) -> bool:
    """True for application persistent-heap lines (not scheme metadata)."""
    return NVM_BASE <= addr < HOME_REGION_LIMIT


def is_log_region(addr: int) -> bool:
    """True for scheme log/metadata addresses in either space: the NVM
    region above the application home limit (WAL entries, commit
    records, mirrors) and the DRAM log window.  Controllers with
    ``log_banks`` reserved steer these to the dedicated log banks."""
    return addr >= HOME_REGION_LIMIT or DRAM_LOG_BASE <= addr < NVM_BASE


@dataclass(frozen=True)
class Version:
    """A logical data version used by the crash-consistency checker.

    Rather than modelling byte payloads, every persistent store carries
    a ``Version`` identifying which transaction wrote it and where in
    that transaction's program order the write sits.  The recovery
    checker compares recovered versions against the set of durable
    transactions.  ``tx_id`` is ``None`` for non-transactional writes.
    """

    tx_id: Optional[int]
    seq: int

    def __repr__(self) -> str:  # compact for test failure output
        return f"V(tx={self.tx_id},seq={self.seq})"


class MemReqType(enum.Enum):
    """Request kinds accepted by a memory controller."""

    READ = "read"
    WRITE = "write"


class MemRequest:
    """A single line-granular request to a memory controller.

    A hand-rolled ``__slots__`` class rather than a dataclass: requests
    are the hottest allocation in the simulator and sit on the memory
    controller's scan path, so ``line`` and ``is_write`` are computed
    once at construction (the address never changes after that) and
    ``bank``/``row`` are filled in by the owning controller at enqueue
    so queue scans never re-run the address map.  Identity equality is
    deliberate — queue membership means *this* request, not any
    equal-valued one.

    Attributes:
        addr: byte address (any address within the line is accepted;
            controllers operate on :func:`line_addr` internally).
        req_type: read or write.
        persistent: True when the write carries persistent data whose
            completion must be acknowledged (the TC drains on acks).
        tx_id: transaction the data belongs to, if any.
        version: logical payload for the crash-consistency checker.
        callback: invoked as ``callback(request, completion_cycle)``
            when the controller finishes servicing the request.
        issue_cycle: stamped by the controller at enqueue time.
        source: free-form tag identifying the requester (stats/debug).
        line: cache-line address of ``addr`` (precomputed).
        is_write: True for WRITE requests (precomputed).
        bank: owning controller's :class:`~repro.memory.bank.Bank`
            for this line (set at enqueue; None before that).
        row: row index within ``bank`` (set at enqueue).
    """

    __slots__ = ("addr", "req_type", "persistent", "tx_id", "version",
                 "callback", "issue_cycle", "source", "meta",
                 "line", "is_write", "bank", "row")

    def __init__(self, addr: int, req_type: MemReqType,
                 persistent: bool = False,
                 tx_id: Optional[int] = None,
                 version: Optional[Version] = None,
                 callback: Optional[Callable[["MemRequest", int], None]] = None,
                 issue_cycle: int = 0, source: str = "",
                 meta: Optional[dict] = None) -> None:
        self.addr = addr
        self.req_type = req_type
        self.persistent = persistent
        self.tx_id = tx_id
        self.version = version
        self.callback = callback
        self.issue_cycle = issue_cycle
        self.source = source
        self.meta = {} if meta is None else meta
        self.line = addr & ~(CACHE_LINE_SIZE - 1)
        self.is_write = req_type is MemReqType.WRITE
        self.bank = None
        self.row = 0

    @property
    def space(self) -> MemSpace:
        return MemSpace.of(self.addr)

    def __repr__(self) -> str:
        return (f"MemRequest(addr={self.addr:#x}, "
                f"req_type={self.req_type.value}, "
                f"persistent={self.persistent}, tx_id={self.tx_id}, "
                f"source={self.source!r})")


class SchemeName(enum.Enum):
    """The four persistence mechanisms compared in the paper (§5.1),
    plus the software-transaction competitor schemes of
    :mod:`repro.persistence.swtx` (per arXiv:1804.00701 and
    arXiv:1903.06226)."""

    OPTIMAL = "optimal"   # native execution, no persistence guarantee
    SP = "sp"             # software WAL + flush/fence ordering
    KILN = "kiln"         # nonvolatile LLC, flush-on-commit ([23])
    TXCACHE = "txcache"   # this paper's transaction-cache accelerator
    UNDO_LOG = "undo_log"         # per-store undo WAL, fence-per-entry
    REDO_LOG = "redo_log"         # DRAM write set + redo WAL, 2 fences/tx
    HYBRID_DRAM = "hybrid_dram"   # DRAM log mirrored to NVM, epoch fence

    @staticmethod
    def parse(name: "str | SchemeName") -> "SchemeName":
        if isinstance(name, SchemeName):
            return name
        return SchemeName(name.lower())


def ns_to_cycles(ns: float, freq_ghz: float) -> int:
    """Convert nanoseconds to (rounded-up) CPU cycles at ``freq_ghz``."""
    cycles = ns * freq_ghz
    whole = int(cycles)
    return max(1, whole if cycles == whole else whole + 1)
