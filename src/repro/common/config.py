"""Machine configuration dataclasses.

:func:`paper_machine_config` reproduces Table 2 of the paper:

======================  =====================================================
CPU                     4 cores, 2 GHz, 4-issue, out of order
L1 I/D                  private, 32 KB/core, 0.5 ns, 4-way
L2                      private, 256 KB/core, 4.5 ns, 8-way
L3 (LLC)                shared, 64 MB, 10 ns, 16-way
Transaction cache       private, 4 KB/core, fully associative CAM FIFO, 1.5 ns
Memory controllers      8/64-entry read/write queues, read-first,
                        write drain when the write queue is 80 % full
NVM (STT-RAM)           8 GB, 4 ranks, 8 banks/rank, 65 ns read, 76 ns write
DRAM                    DDR3, 8 GB, 4 ranks, 8 banks/rank
======================  =====================================================

All latencies inside the simulator are integer CPU cycles; nanosecond
figures from the paper are converted at the configured core frequency.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

from .types import CACHE_LINE_SIZE, ns_to_cycles


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    latency_ns: float
    shared: bool = False
    line_size: int = CACHE_LINE_SIZE

    def latency_cycles(self, freq_ghz: float) -> int:
        return ns_to_cycles(self.latency_ns, freq_ghz)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        sets, rem = divmod(self.num_lines, self.assoc)
        if rem or sets == 0:
            raise ValueError(
                f"{self.name}: {self.num_lines} lines not divisible into "
                f"{self.assoc}-way sets"
            )
        return sets


@dataclass(frozen=True)
class TxCacheConfig:
    """Transaction cache (the paper's NVTC) parameters."""

    size_bytes: int = 4096          # 4 KB per core
    latency_ns: float = 1.5         # STT-RAM CAM access
    overflow_threshold: float = 0.9  # trigger fall-back when 90 % full
    line_size: int = CACHE_LINE_SIZE
    #: merge a write into an existing *active* entry of the same
    #: transaction and line (CAM match) instead of appending a duplicate.
    #: Ablation bench test_ablation_coalescing compares both settings.
    coalesce_writes: bool = True
    #: per-core cap on issued-but-unacknowledged NVM writes; commit
    #: bursts are paced at this window so the TC's side path does not
    #: flood the write queue into drain mode (which would block reads
    #: and defeat the decoupling the paper relies on).
    issue_window: int = 16
    #: buffer organization: "cam_fifo" (the paper's design) or
    #: "set_assoc" (the prior-work alternative that suffers
    #: associativity overflows — see repro.core.setassoc).
    organization: str = "cam_fifo"
    #: associativity when organization == "set_assoc"
    assoc: int = 4

    def __post_init__(self) -> None:
        if not 0 < self.overflow_threshold <= 1:
            raise ValueError(
                "txcache.overflow_threshold must satisfy 0 < t <= 1, "
                f"got {self.overflow_threshold}")

    @property
    def num_entries(self) -> int:
        return self.size_bytes // self.line_size

    def latency_cycles(self, freq_ghz: float) -> int:
        return ns_to_cycles(self.latency_ns, freq_ghz)


@dataclass(frozen=True)
class MemTimingConfig:
    """Device timing for one memory technology (line-granular model).

    ``row_hit_ns`` / ``row_miss_ns`` are additional array latencies for
    accesses that hit / miss in the open row buffer; ``read_ns`` /
    ``write_ns`` are base cell access latencies (for DDR3 DRAM these
    fold CAS into ``read_ns``/``write_ns`` and activation into
    ``row_miss_ns``).
    """

    read_ns: float
    write_ns: float
    row_hit_ns: float
    row_miss_ns: float
    row_size_bytes: int = 8192
    #: DRAM refresh: every ``refresh_interval_ns`` all banks are busy
    #: for ``refresh_ns`` (tRFC); 0 disables (nonvolatile memories do
    #: not refresh).  Modeled lazily per bank, so it costs no events.
    refresh_interval_ns: float = 0.0
    refresh_ns: float = 160.0

    def read_cycles(self, freq_ghz: float, row_hit: bool) -> int:
        extra = self.row_hit_ns if row_hit else self.row_miss_ns
        return ns_to_cycles(self.read_ns + extra, freq_ghz)

    def write_cycles(self, freq_ghz: float, row_hit: bool) -> int:
        extra = self.row_hit_ns if row_hit else self.row_miss_ns
        return ns_to_cycles(self.write_ns + extra, freq_ghz)


@dataclass(frozen=True)
class MemCtrlConfig:
    """Memory-controller geometry and scheduling policy (Table 2)."""

    name: str
    timing: MemTimingConfig
    num_ranks: int = 4
    banks_per_rank: int = 8
    read_queue_entries: int = 8
    write_queue_entries: int = 64
    write_drain_threshold: float = 0.8
    #: cycles between scheduler decisions (command bus rate)
    scheduler_period_cycles: int = 2
    #: bank-interleave granularity: "line" (bank:column mapping —
    #: adjacent lines hit adjacent banks, maximizing parallelism for
    #: small footprints) or "row" (row:bank — a whole row buffer is
    #: contiguous in one bank, maximizing locality for streams)
    interleave: str = "line"
    #: banks reserved for scheme log regions (WAL entries, commit
    #: records, DRAM log windows — see
    #: :func:`repro.common.types.is_log_region`).  0 (the default)
    #: keeps the historic unified map bit-identical; with N > 0 the
    #: last N banks serve only log traffic and the rest only data, so
    #: log writes contend with data writes for queues and channels but
    #: never steal a data bank's row buffer.
    log_banks: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.log_banks < self.num_banks:
            raise ValueError(
                f"{self.name}: log_banks must satisfy 0 <= n < "
                f"{self.num_banks} banks, got {self.log_banks}")

    @property
    def num_banks(self) -> int:
        return self.num_ranks * self.banks_per_rank


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection model parameters (all defaults are *off*).

    The paper's evaluation (like its MARSSx86 setup) assumes perfect
    hardware; this config describes the imperfect variant: stochastic
    STT-RAM write failures in the NVM array, lost/delayed/duplicated
    acknowledgment messages on the NVM-controller→TC path, and
    single/double bit errors in TC lines protected by SECDED ECC.

    With every rate at 0 (the default) the fault layer is a **strict
    no-op**: no injector is constructed, no extra events are scheduled,
    and simulation results are bit-identical to a build without the
    fault subsystem.
    """

    #: RNG seed for the injector's per-site deterministic streams
    seed: int = 0
    #: probability one NVM array write attempt fails verification
    nvm_write_fail_rate: float = 0.0
    #: probability an acknowledgment message is lost on the way to the TC
    ack_loss_rate: float = 0.0
    #: probability an acknowledgment is delayed by ``ack_delay_cycles``
    ack_delay_rate: float = 0.0
    #: probability an acknowledgment is delivered twice
    ack_duplicate_rate: float = 0.0
    #: delay applied to delayed acknowledgments, in cycles
    ack_delay_cycles: int = 200
    #: per-bit probability a TC line bit reads flipped (transient; a
    #: corrected read scrubs the line clean)
    tc_bit_flip_rate: float = 0.0
    #: write-verify-retry: bounded retries before the controller remaps
    #: the line to a spare row (counted as ``write.remaps``)
    max_write_retries: int = 8
    #: base backoff before the first retry; doubles per attempt
    retry_backoff_cycles: int = 16
    #: TC-side acknowledgment timeout before a committed-unacked entry
    #: is idempotently reissued toward the NVM
    ack_timeout_cycles: int = 4000
    #: a TC whose observed ECC error rate (errors/reads) crosses this
    #: threshold is degraded: new transactions fall back to the COW path
    degrade_error_rate: float = 1.0
    #: minimum ECC-checked reads before the degrade threshold applies
    degrade_min_reads: int = 256

    def __post_init__(self) -> None:
        for name in ("nvm_write_fail_rate", "ack_loss_rate",
                     "ack_delay_rate", "ack_duplicate_rate",
                     "tc_bit_flip_rate", "degrade_error_rate"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(
                    f"faults.{name} must be in [0, 1], got {value}")
        if (self.ack_loss_rate + self.ack_delay_rate
                + self.ack_duplicate_rate) > 1:
            raise ValueError(
                "faults ack_loss_rate + ack_delay_rate + "
                "ack_duplicate_rate must not exceed 1")
        if self.max_write_retries < 0:
            raise ValueError(
                f"faults.max_write_retries must be >= 0, "
                f"got {self.max_write_retries}")
        for name in ("retry_backoff_cycles", "ack_timeout_cycles",
                     "ack_delay_cycles", "degrade_min_reads"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(
                    f"faults.{name} must be >= 1, got {value}")

    @property
    def enabled(self) -> bool:
        """True when any fault can actually fire."""
        return (self.nvm_write_fail_rate > 0 or self.ack_loss_rate > 0
                or self.ack_delay_rate > 0 or self.ack_duplicate_rate > 0
                or self.tc_bit_flip_rate > 0)


@dataclass(frozen=True)
class CoreConfig:
    """Timing model of one CPU core.

    The paper simulates a 4-issue out-of-order core with MARSSx86.  Our
    trace-driven model approximates out-of-order latency hiding with a
    bounded window: a blocking load only stalls the core for the part
    of its latency that exceeds ``hide_cycles``.  Stores retire into a
    finite store buffer drained in the background.
    """

    freq_ghz: float = 2.0
    issue_width: int = 4
    hide_cycles: int = 16
    store_buffer_entries: int = 32
    #: background store-buffer drain throughput (cycles per store)
    store_drain_cycles: int = 2
    #: maximum overlapped outstanding loads (memory-level parallelism)
    mlp: int = 4

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError(
                f"core.freq_ghz must be > 0, got {self.freq_ghz}")


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to build a simulated system."""

    num_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig("l1", 32 * 1024, 4, 0.5)
    )
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig("l2", 256 * 1024, 8, 4.5)
    )
    llc: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            "llc", 64 * 1024 * 1024, 16, 10.0, shared=True
        )
    )
    txcache: TxCacheConfig = field(default_factory=TxCacheConfig)
    nvm: MemCtrlConfig = field(
        default_factory=lambda: MemCtrlConfig(
            "nvm",
            MemTimingConfig(read_ns=65.0, write_ns=76.0,
                            row_hit_ns=0.0, row_miss_ns=12.0),
        )
    )
    dram: MemCtrlConfig = field(
        default_factory=lambda: MemCtrlConfig(
            "dram",
            MemTimingConfig(read_ns=13.75, write_ns=13.75,
                            row_hit_ns=13.75, row_miss_ns=41.25,
                            refresh_interval_ns=7800.0),
        )
    )
    #: fault-injection model; all-zero rates (the default) are a strict
    #: no-op — see :class:`FaultConfig`
    faults: FaultConfig = field(default_factory=FaultConfig)

    @property
    def freq_ghz(self) -> float:
        return self.core.freq_ghz

    def latency(self, level: str) -> int:
        """Access latency of a named component, in cycles."""
        if level == "txcache":
            return self.txcache.latency_cycles(self.freq_ghz)
        cache: CacheLevelConfig = getattr(self, level)
        return cache.latency_cycles(self.freq_ghz)

    def scaled_llc(self, size_bytes: int) -> "MachineConfig":
        """Copy of this config with a different LLC capacity.

        The paper's 64 MB LLC swallows our (necessarily shorter) traces
        whole; experiments that need LLC pressure scale it down while
        keeping associativity and latency."""
        return replace(self, llc=replace(self.llc, size_bytes=size_bytes))


def config_fingerprint(config: MachineConfig) -> str:
    """Stable content hash of a machine configuration.

    Serializes the (nested, frozen) dataclass tree to canonical JSON —
    sorted keys, exact float repr — and hashes it, so two configs get
    the same fingerprint iff every knob is equal.  Used as the config
    component of the experiment-cache key
    (:mod:`repro.sim.parallel`): any knob change, however deep
    (a fault rate, a row-buffer size), produces a different key and
    therefore a cache miss instead of a stale result.
    """
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_to_dict(config: MachineConfig) -> Dict[str, object]:
    """A machine config as a nested plain dict (JSON-ready).

    The inverse of :func:`config_from_dict`; the round trip is exact
    because every leaf is an int/float/str/bool and JSON preserves
    float ``repr`` precision."""
    return dataclasses.asdict(config)


def _dataclass_from_dict(cls, data: Mapping, path: str):
    if not isinstance(data, Mapping):
        raise ValueError(f"{path}: expected an object, got {data!r}")
    hints = typing.get_type_hints(cls)
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"{path}: unknown keys {unknown} "
                         f"(known: {sorted(known)})")
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        target = hints[f.name]
        if dataclasses.is_dataclass(target):
            value = _dataclass_from_dict(target, value,
                                         f"{path}.{f.name}")
        kwargs[f.name] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}: {exc}") from exc


def config_from_dict(data: Mapping) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from its nested-dict form.

    Accepts partial dicts — omitted fields take their dataclass
    defaults — and recurses into every nested config dataclass, so the
    output of :func:`config_to_dict` (or any hand-written subset of it,
    e.g. a wire-protocol override block) reconstructs the frozen tree
    exactly.  Unknown keys raise ``ValueError`` rather than being
    silently dropped: a typo in a knob name must not produce a
    default-configured run that *looks* like the requested one.
    """
    return _dataclass_from_dict(MachineConfig, data, "config")


def paper_machine_config() -> MachineConfig:
    """The exact configuration of the paper's Table 2."""
    return MachineConfig()


def small_machine_config(num_cores: int = 4) -> MachineConfig:
    """A scaled-down machine for fast tests and benchmark runs.

    Cache capacities shrink by ~64x so that 10^4-10^5-operation traces
    exercise misses, evictions, and LLC pressure the way the paper's
    0.7-billion-instruction runs exercised the full-size hierarchy.
    Latencies and policies are unchanged.
    """
    base = paper_machine_config()
    return replace(
        base,
        num_cores=num_cores,
        l1=replace(base.l1, size_bytes=4 * 1024),
        l2=replace(base.l2, size_bytes=16 * 1024),
        llc=replace(base.llc, size_bytes=32 * 1024),
        txcache=replace(base.txcache, size_bytes=4096),
    )


def table2_rows(config: MachineConfig) -> Dict[str, str]:
    """Render a machine config as the rows of the paper's Table 2."""
    ghz = config.freq_ghz
    return {
        "CPU": (
            f"{config.num_cores} cores, {ghz:g}GHz, "
            f"{config.core.issue_width} issue, out of order"
        ),
        "L1 I/D": (
            f"Private, {config.l1.size_bytes // 1024}KB/core, "
            f"{config.l1.latency_ns:g}ns, {config.l1.assoc}-way"
        ),
        "L2": (
            f"Private, {config.l2.size_bytes // 1024}KB/core, "
            f"{config.l2.latency_ns:g}ns, {config.l2.assoc}-way"
        ),
        "L3 (LLC)": (
            f"Shared, {config.llc.size_bytes // (1024 * 1024)}MB, "
            f"{config.llc.latency_ns:g}ns, {config.llc.assoc}-way"
        ),
        "Transaction Cache": (
            f"Private, {config.txcache.size_bytes // 1024}KB/core, "
            f"Fully-Associative CAM FIFO, {config.txcache.latency_ns:g}ns"
        ),
        "Memory Controllers": (
            f"{config.nvm.read_queue_entries}/{config.nvm.write_queue_entries}-entry "
            f"read/write queue, 2 controllers, read-first or write drain when "
            f"the write queue is {int(config.nvm.write_drain_threshold * 100)}% full"
        ),
        "NVM Memory": (
            f"{config.nvm.num_ranks} ranks, {config.nvm.banks_per_rank} banks/rank, "
            f"{config.nvm.timing.read_ns:g}-ns read, "
            f"{config.nvm.timing.write_ns:g}-ns write"
        ),
        "DRAM Memory": (
            f"DDR3, {config.dram.num_ranks} ranks, "
            f"{config.dram.banks_per_rank} banks/rank"
        ),
    }
