"""Flat column storage helpers for the columnar execution core.

Hot per-op state (compiled trace ops, TC entry metadata, bank/queue
timings) is held as flat parallel columns — ``array.array`` /
``bytes`` — instead of one Python object per element.  A column of
machine ints is a single contiguous buffer: bulk reductions over it
(counts, sums, minima) run in C, and the per-element memory drops from
a boxed object to 1–8 bytes.

numpy, when importable, accelerates the bulk reductions further; it is
a **feature probe, never a hard dependency** — every helper has a pure
``array``/``bytes`` fallback producing identical results, and the
probe can be forced off with ``REPRO_NO_NUMPY=1`` (the differential
tests use this to pin fallback/numpy equivalence).
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Sequence

__all__ = [
    "HAVE_NUMPY",
    "int_column",
    "byte_column",
    "count_byte",
    "column_min",
    "masked_count",
    "sum_compute_instructions",
]


def _probe_numpy():
    """Import numpy if present and not disabled; never raise."""
    if os.environ.get("REPRO_NO_NUMPY", "").strip() not in ("", "0"):
        return None
    try:  # pragma: no cover - exercised via both CI matrix legs
        import numpy
    except Exception:
        return None
    return numpy


_np = _probe_numpy()

#: True when the optional numpy fast path is active for this process
HAVE_NUMPY = _np is not None


def int_column(values: Iterable[int]) -> array:
    """A signed 64-bit flat column (``array('q')``) over ``values``."""
    return array("q", values)


def byte_column(values: Iterable[int]) -> bytes:
    """An immutable one-byte-per-element column.

    Used for dense small-code columns (op kinds, boolean flags):
    ``bytes`` indexing returns cached small ints, the buffer is 1/8th
    the size of a pointer list, and immutability documents that the
    column is derived state, never mutated in place.
    """
    return bytes(bytearray(values))


def count_byte(column: bytes, code: int) -> int:
    """Occurrences of ``code`` in a byte column (C-speed)."""
    return column.count(code)


def column_min(column: array) -> int:
    """Minimum over a flat int column (``array('q')``).

    Used by the bank-timing column: the earliest-available reduction
    over all banks' busy-until horizons.  numpy only pays off once the
    column is big enough to amortize the ufunc dispatch (a 32-bank
    column is cheaper to reduce with the builtin), so the fast path is
    size-gated.
    """
    if _np is not None and len(column) >= 256:
        return int(_np.frombuffer(column, dtype=_np.int64).min())
    return min(column)


def masked_count(column: bytes, code: int, mask: bytes) -> int:
    """Count positions where ``column == code`` and ``mask`` is nonzero.

    The fallback pairs the buffers with :func:`zip`; numpy reduces the
    whole thing with two vector compares and a popcount-style sum.
    """
    if _np is not None:
        a = _np.frombuffer(column, dtype=_np.uint8)
        b = _np.frombuffer(mask, dtype=_np.uint8)
        return int(((a == code) & (b != 0)).sum())
    return sum(1 for x, y in zip(column, mask) if x == code and y)


def sum_compute_instructions(kinds: bytes, counts: Sequence[int],
                             compute_kind: int) -> int:
    """Dynamic instruction total over parallel (kinds, counts) columns:
    ``counts[i]`` where ``kinds[i] == compute_kind``, else 1 per op.

    This is ``Trace.instructions`` over the compiled columns — called
    once per result collection, over 10⁴–10⁶ ops.
    """
    n = len(kinds)
    compute_ops = kinds.count(compute_kind)
    if compute_ops == 0:
        return n
    if _np is not None and isinstance(counts, array):
        k = _np.frombuffer(kinds, dtype=_np.uint8)
        c = _np.frombuffer(counts, dtype=_np.int64)
        return int(c[k == compute_kind].sum()) + (n - compute_ops)
    total = n - compute_ops
    for i, kind in enumerate(kinds):
        if kind == compute_kind:
            total += counts[i]
    return total
