"""Shared infrastructure: event kernel, configuration, stats, value types."""

from .config import (
    CacheLevelConfig,
    CoreConfig,
    MachineConfig,
    MemCtrlConfig,
    MemTimingConfig,
    TxCacheConfig,
    paper_machine_config,
    small_machine_config,
    table2_rows,
)
from .event import SimulationError, Simulator
from .stats import SampleSummary, ScopedStats, Stats
from .types import (
    CACHE_LINE_SIZE,
    NVM_BASE,
    MemReqType,
    MemRequest,
    MemSpace,
    SchemeName,
    Version,
    is_persistent_addr,
    line_addr,
    ns_to_cycles,
)

__all__ = [
    "CACHE_LINE_SIZE",
    "NVM_BASE",
    "CacheLevelConfig",
    "CoreConfig",
    "MachineConfig",
    "MemCtrlConfig",
    "MemReqType",
    "MemRequest",
    "MemSpace",
    "MemTimingConfig",
    "SampleSummary",
    "SchemeName",
    "ScopedStats",
    "SimulationError",
    "Simulator",
    "Stats",
    "TxCacheConfig",
    "Version",
    "is_persistent_addr",
    "line_addr",
    "ns_to_cycles",
    "paper_machine_config",
    "small_machine_config",
    "table2_rows",
]
