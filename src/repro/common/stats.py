"""Statistics registry shared by all simulator components.

Components record two kinds of measurements:

* **counters** — monotonically increasing event counts
  (``stats.inc("llc.miss")``), and
* **samples** — per-event values whose distribution matters
  (``stats.sample("load.latency", 130)``), tracked as
  sum/count/min/max so means are cheap and memory use is O(1).

Names are dotted strings; :meth:`Stats.scoped` returns a light view that
prefixes every name, so a component can write ``self.stats.inc("hit")``
and the registry stores ``l1.0.hit``.
"""

from __future__ import annotations

import contextlib
import logging
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Tuple

logger = logging.getLogger("repro.stats")


@dataclass
class SampleSummary:
    """Streaming summary of a sampled value."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "SampleSummary") -> None:
        """Fold another summary's observations into this one."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum


class Histogram:
    """Power-of-two-bucketed histogram for latency distributions.

    Bucket ``i`` counts values in ``[2**i, 2**(i+1))`` (bucket 0 also
    absorbs values < 1).  O(1) memory per distinct magnitude, good
    enough for percentile estimates on cycle counts.
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0

    @staticmethod
    def _bucket(value: float) -> int:
        if value < 1:
            return 0
        return int(value).bit_length() - 1

    def add(self, value: float) -> None:
        bucket = self._bucket(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket containing the given percentile
        (e.g. ``percentile(0.99)`` ≈ p99).  0.0 when empty."""
        if not self.count:
            return 0.0
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        target = fraction * self.count
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= target:
                return float(2 ** (bucket + 1))
        return float(2 ** (max(self._buckets) + 1))

    def buckets(self) -> Dict[int, int]:
        """bucket index → count (bucket i spans [2^i, 2^(i+1)))."""
        return dict(self._buckets)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        for bucket, count in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + count
        self.count += other.count


class Stats:
    """Flat registry of counters, sample summaries, and histograms."""

    #: warning events kept per name (the counter is always exact; the
    #: retained messages are a bounded diagnostic sample)
    MAX_EVENTS_PER_NAME = 8

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._samples: Dict[str, SampleSummary] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._events: Dict[str, List[str]] = {}
        self._suppressed: Dict[str, int] = {}
        self._suppressed_reported: Dict[str, int] = {}

    # -- counters ----------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        # hottest single call in the simulator: in-place add on the
        # existing key beats .get() (no bound-method call); the miss
        # branch only runs once per counter name
        try:
            self._counters[name] += amount
        except KeyError:
            self._counters[name] = amount

    # -- warning events ----------------------------------------------
    def warn(self, name: str, message: str) -> None:
        """Record a warning-level event: increments counter ``name``,
        logs the first few occurrences at WARNING, and keeps a bounded
        sample of messages for post-mortem inspection."""
        self.inc(name)
        kept = self._events.setdefault(name, [])
        if len(kept) < self.MAX_EVENTS_PER_NAME:
            kept.append(message)
            logger.warning("%s: %s", name, message)
        else:
            self._suppressed[name] = self._suppressed.get(name, 0) + 1

    def events(self, name: str) -> List[str]:
        """Retained warning messages for event ``name`` (bounded)."""
        return list(self._events.get(name, []))

    def suppressed(self, name: str) -> int:
        """Occurrences of warning ``name`` beyond the retained sample
        (counted exactly, logged only as a final summary)."""
        return self._suppressed.get(name, 0)

    def flush_suppressed(self) -> None:
        """Emit one "further N occurrences suppressed" WARNING per
        event name that overflowed its retained sample.  Idempotent:
        re-flushing reports only occurrences suppressed since the last
        flush.  Called from :meth:`dump` so every end-of-run report
        closes the loop on what the per-name cap hid."""
        for name in sorted(self._suppressed):
            count = self._suppressed[name]
            reported = self._suppressed_reported.get(name, 0)
            if count > reported:
                logger.warning(
                    "%s: further %d occurrences suppressed after the "
                    "first %d", name, count - reported,
                    self.MAX_EVENTS_PER_NAME)
                self._suppressed_reported[name] = count

    def counter(self, name: str) -> float:
        """Read counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    # -- samples -----------------------------------------------------
    def sample(self, name: str, value: float) -> None:
        """Record one observation of the sampled value ``name``."""
        summary = self._samples.get(name)
        if summary is None:
            summary = self._samples[name] = SampleSummary()
        summary.add(value)

    def summary(self, name: str) -> SampleSummary:
        """Summary for sample ``name`` (empty summary if never seen)."""
        return self._samples.get(name, SampleSummary())

    def mean(self, name: str) -> float:
        """Mean of sample ``name`` (0.0 if never seen)."""
        return self.summary(name).mean

    # -- histograms ----------------------------------------------------
    def hist(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name`` (and its
        streaming summary)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.add(value)
        self.sample(name, value)

    def histogram(self, name: str) -> Histogram:
        return self._histograms.get(name, Histogram())

    def histograms(self) -> Dict[str, Histogram]:
        """All live histograms, key-sorted (for exporters such as
        :func:`repro.obs.metrics.stats_to_prometheus`)."""
        return {name: self._histograms[name]
                for name in sorted(self._histograms)}

    def percentile(self, name: str, fraction: float) -> float:
        return self.histogram(name).percentile(fraction)

    # -- wall-clock timing ---------------------------------------------
    @contextlib.contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Measure the wall-clock seconds of a ``with`` block into
        histogram ``name`` (sum/count/min/max via the paired sample
        summary).  Used for *host* measurements — per-experiment-point
        wall time in the parallel engine — never for simulated time."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.hist(name, time.perf_counter() - start)

    # -- bulk access ---------------------------------------------------
    def counters(self, prefix: str = "") -> Dict[str, float]:
        """All counters whose name starts with ``prefix``, sorted by
        name — reports and cached payloads must not depend on the
        insertion order of whichever component incremented first."""
        return {
            name: self._counters[name]
            for name in sorted(self._counters)
            if name.startswith(prefix)
        }

    def counter_sum(self, prefix: str) -> float:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(self.counters(prefix).values())

    def as_dict(self) -> Dict[str, float]:
        """Flatten everything into one key-sorted dict (samples expand
        to ``name.mean`` / ``name.count`` / ``name.max`` entries).
        Sorted so serialized payloads (result cache, golden snapshots)
        are byte-stable across runs with different component init or
        event interleaving order."""
        out: Dict[str, float] = dict(self._counters)
        for name, summary in self._samples.items():
            out[f"{name}.mean"] = summary.mean
            out[f"{name}.count"] = summary.count
            if summary.count:
                out[f"{name}.min"] = summary.minimum
                out[f"{name}.max"] = summary.maximum
        return {name: out[name] for name in sorted(out)}

    def dump(self) -> Dict[str, float]:
        """End-of-run report: flush the suppressed-warning summaries
        (satisfying "every warning is eventually accounted for"), then
        return the full key-sorted flat dict."""
        self.flush_suppressed()
        return self.as_dict()

    #: suffixes :meth:`as_dict` derives from sample summaries that do
    #: NOT add across registries (a mean of means is not a mean; min
    #: and max would need the raw summaries).  ``.count`` entries *are*
    #: additive and survive :meth:`from_flat`.
    NON_ADDITIVE_SUFFIXES = (".mean", ".min", ".max")

    @classmethod
    def from_flat(cls, flat: Mapping[str, object]) -> "Stats":
        """Rebuild a counters-only registry from a :meth:`dump` /
        :meth:`as_dict` flat dict that crossed a process or wire
        boundary (e.g. one node's ``/stats`` JSON), so the cluster
        router can aggregate fleets with :meth:`merge`.  Sample-derived
        ``.mean``/``.min``/``.max`` entries are dropped — they are not
        additive — and non-numeric values are ignored."""
        stats = cls()
        for name, value in flat.items():
            if not isinstance(name, str) \
                    or name.endswith(cls.NON_ADDITIVE_SUFFIXES):
                continue
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                continue
            stats.inc(name, value)
        return stats

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "Stats", prefix: str = "") -> None:
        """Fold another registry into this one.

        Counters add, sample summaries and histograms combine exactly
        (count/total/min/max and per-bucket counts), retained warning
        messages append up to :data:`MAX_EVENTS_PER_NAME` (overflow is
        counted as suppressed, never lost), and suppression counts add.

        ``prefix`` is prepended verbatim to every incoming name
        (callers include the trailing dot, e.g. ``"worker3."``), so
        per-request or per-worker registries can aggregate into a
        long-lived server-wide registry without colliding with its own
        keys.  Merging is additive and repeatable: merging two
        registries then reading a counter equals the sum of reading
        each."""
        rename = (lambda name: prefix + name) if prefix else (lambda n: n)
        for name, value in other._counters.items():
            name = rename(name)
            self._counters[name] = self._counters.get(name, 0) + value
        for name, summary in other._samples.items():
            name = rename(name)
            mine = self._samples.get(name)
            if mine is None:
                mine = self._samples[name] = SampleSummary()
            mine.merge(summary)
        for name, histogram in other._histograms.items():
            name = rename(name)
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.merge(histogram)
        for name, messages in other._events.items():
            name = rename(name)
            kept = self._events.setdefault(name, [])
            for message in messages:
                if len(kept) < self.MAX_EVENTS_PER_NAME:
                    kept.append(message)
                else:
                    self._suppressed[name] = \
                        self._suppressed.get(name, 0) + 1
        for name, count in other._suppressed.items():
            name = rename(name)
            self._suppressed[name] = self._suppressed.get(name, 0) + count

    def scoped(self, prefix: str) -> "ScopedStats":
        """A view that prefixes every recorded name with ``prefix.``."""
        return ScopedStats(self, prefix)


class ScopedStats:
    """Prefixing facade over a :class:`Stats` registry.

    Hot components should not pay an f-string per increment: they call
    :meth:`resolve` once at construction to get the fully-qualified
    name and then hit :attr:`base` (the underlying :class:`Stats`)
    directly — same registry keys, no per-event formatting.
    """

    __slots__ = ("_parent", "_prefix")

    def __init__(self, parent: Stats, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix.rstrip(".")

    @property
    def base(self) -> Stats:
        """The unprefixed registry this view writes into."""
        return self._parent

    @property
    def prefix(self) -> str:
        return self._prefix

    def resolve(self, name: str) -> str:
        """Fully-qualified registry key for ``name`` under this scope."""
        return f"{self._prefix}.{name}"

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def inc(self, name: str, amount: float = 1) -> None:
        self._parent.inc(self._name(name), amount)

    def warn(self, name: str, message: str) -> None:
        self._parent.warn(self._name(name), message)

    def events(self, name: str):
        return self._parent.events(self._name(name))

    def suppressed(self, name: str) -> int:
        return self._parent.suppressed(self._name(name))

    def counter(self, name: str) -> float:
        return self._parent.counter(self._name(name))

    def sample(self, name: str, value: float) -> None:
        self._parent.sample(self._name(name), value)

    def hist(self, name: str, value: float) -> None:
        self._parent.hist(self._name(name), value)

    def timer(self, name: str):
        return self._parent.timer(self._name(name))

    def histogram(self, name: str):
        return self._parent.histogram(self._name(name))

    def percentile(self, name: str, fraction: float) -> float:
        return self._parent.percentile(self._name(name), fraction)

    def mean(self, name: str) -> float:
        return self._parent.mean(self._name(name))

    def summary(self, name: str) -> SampleSummary:
        return self._parent.summary(self._name(name))

    def scoped(self, prefix: str) -> "ScopedStats":
        return ScopedStats(self._parent, self._name(prefix))
