"""repro.cluster — the sharded, replicated, chaos-tested serving tier.

``repro.serve`` (one process) becomes a degradable fleet: a
consistent-hash router front-end over N serve nodes with R-way
replication, active health checking, failover + bounded-backoff retry,
cross-fleet request coalescing, and one merged ``/stats`` view.  The
same resilience discipline the NVM model applies at cycle scale —
write-verify-retry, idempotent reissue of lossy acks — lifted to the
request path: requests are content-keyed and idempotent, so the router
may retry and fail over freely without ever double-charging or
diverging from the batch engine's byte-exact payloads.

Pieces:

* :mod:`~repro.cluster.placement` — the consistent-hash ring mapping
  sha256 spec keys to home sets of R nodes,
* :mod:`~repro.cluster.membership` — node identity plus live readiness
  (active ``/healthz`` probes + passive forward failures),
* :mod:`~repro.cluster.router` — the asyncio front-end: routing,
  failover, retry, coalescing, merged cluster stats,
* :mod:`~repro.cluster.transport` — the minimal async HTTP client the
  router forwards through,
* :mod:`~repro.cluster.fleet` — a local N-process fleet with real
  SIGKILL / SIGSTOP / SIGTERM chaos hooks,
* :mod:`~repro.cluster.chaos` — the chaos harness: seeded kill/
  restart/hang plans under live traffic, checked for zero failures and
  byte-identity against the batch engine.

See ``docs/cluster.md`` for topology and failover semantics.
"""

from .chaos import (
    ChaosAction,
    ClusterChaosReport,
    default_grid,
    make_plan,
    run_chaos,
)
from .fleet import LocalFleet, NodeProcess
from .membership import Membership, NodeInfo
from .placement import HashRing
from .router import ReplicasExhausted, RouterService, run_router_in_thread

__all__ = [
    "ChaosAction",
    "ClusterChaosReport",
    "HashRing",
    "LocalFleet",
    "Membership",
    "NodeInfo",
    "NodeProcess",
    "ReplicasExhausted",
    "RouterService",
    "default_grid",
    "make_plan",
    "run_chaos",
    "run_router_in_thread",
]
