"""Consistent-hash placement of spec keys onto serve nodes.

Every experiment point already carries a content-derived sha256 spec
key (:mod:`repro.sim.parallel`); the cluster routes on it.  A
:class:`HashRing` maps each node to ``vnodes`` pseudo-random points on
a 64-bit ring (sha256 of ``"{node_id}#{i}"``), and a key is placed on
the first ``r`` *distinct* nodes clockwise from its own hash — the
key's **home set**.  The properties that matter here:

* **stability** — adding or removing one node moves only ~1/N of the
  keys; every other key keeps its home set, and therefore its warm
  per-node :class:`~repro.sim.parallel.ResultCache` entries;
* **spread** — vnodes smooth the per-node share, so no node owns a
  disproportionate slice of the grid;
* **determinism** — placement is a pure function of the membership
  list and the key, so every router instance (and every test) computes
  the same home set with no coordination.

The ring knows nothing about health: it ranks *all* members, and the
router filters that preference order through live readiness state
(:mod:`repro.cluster.membership`) at request time.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Tuple

#: ring points per node; 64 keeps the max/mean key share under ~1.3x
#: for small fleets while costing only N*64 sorted tuples of memory
DEFAULT_VNODES = 64


def _hash64(value: str) -> int:
    """First 8 bytes of sha256 as an unsigned int: the ring position."""
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Node ids are opaque strings; keys are any strings (in the cluster,
    the engine's sha256 spec keys).  All operations are deterministic.
    """

    def __init__(self, node_ids: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        # two parallel sorted arrays: positions for bisect, owners for
        # the walk (ties broken by node id so placement stays total)
        self._points: List[Tuple[int, str]] = []
        self._positions: List[int] = []
        self._nodes: set = set()
        for node_id in node_ids:
            self.add(node_id)

    # -- membership ----------------------------------------------------
    def add(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already on the ring")
        self._nodes.add(node_id)
        for index in range(self.vnodes):
            bisect.insort(self._points,
                          (_hash64(f"{node_id}#{index}"), node_id))
        self._positions = [position for position, _node in self._points]

    def remove(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id!r} not on the ring")
        self._nodes.discard(node_id)
        self._points = [point for point in self._points
                        if point[1] != node_id]
        self._positions = [position for position, _node in self._points]

    @property
    def node_ids(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- placement -----------------------------------------------------
    def preference(self, key: str,
                   limit: Optional[int] = None) -> List[str]:
        """Distinct nodes in clockwise order from ``key``'s position.

        The full list (``limit=None``) ranks every member: element 0 is
        the primary, the next ``r - 1`` complete the home set, and the
        tail is the failover spillover order.
        """
        if not self._points:
            return []
        if limit is None:
            limit = len(self._nodes)
        start = bisect.bisect_right(self._positions, _hash64(key))
        order: List[str] = []
        seen: set = set()
        for offset in range(len(self._points)):
            node_id = self._points[(start + offset) % len(self._points)][1]
            if node_id not in seen:
                seen.add(node_id)
                order.append(node_id)
                if len(order) >= limit:
                    break
        return order

    def replicas(self, key: str, r: int) -> List[str]:
        """The key's home set: its first ``r`` distinct nodes (fewer if
        the ring has fewer members)."""
        if r < 1:
            raise ValueError(f"replication must be >= 1, got {r}")
        return self.preference(key, limit=r)
