"""Cluster membership: who the nodes are and which are ready.

The member list is static for a router's lifetime (nodes are addressed
by ``node_id`` and a fixed host:port — the local fleet restarts a dead
node on the same address), but *readiness* is live state fed from two
directions:

* **actively** — a periodic probe of each node's ``/healthz``.  The
  serve tier distinguishes liveness from readiness: a draining node
  answers ``{"live": true, "ready": false}``, and the prober marks it
  unready so the router stops handing it new work while its in-flight
  points finish;
* **passively** — every failed forward (connection refused, timeout,
  garbage response) counts against the node, so a SIGKILLed node stops
  receiving traffic on the very next request instead of waiting out a
  probe interval.

Transitions are asymmetric by design: ``fail_threshold`` consecutive
failures take a node out of rotation, one successful ``ready: true``
probe puts it back.  Flapping costs little — the ring's preference
order is stable, so a wrongly-unready node only shifts keys one
replica down, and every node can compute any point (caches make homes
*warm*, not *authoritative*).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..common.stats import Stats
from .transport import request_json


@dataclass(frozen=True)
class NodeInfo:
    """Address of one serve node."""

    node_id: str
    host: str
    port: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class _Health:
    """Mutable readiness record for one node."""

    __slots__ = ("info", "ready", "failures", "probes", "last_error")

    def __init__(self, info: NodeInfo) -> None:
        self.info = info
        # optimistic start: the fleet boots nodes before the router,
        # and a wrong guess self-corrects on the first forward/probe
        self.ready = True
        self.failures = 0
        self.probes = 0
        self.last_error = ""


class Membership:
    """Live readiness view over a fixed node list."""

    def __init__(self, nodes: Iterable[NodeInfo], fail_threshold: int = 2,
                 probe_timeout: float = 2.0,
                 stats: Optional[Stats] = None) -> None:
        if fail_threshold < 1:
            raise ValueError(
                f"fail_threshold must be >= 1, got {fail_threshold}")
        self._health: Dict[str, _Health] = {}
        for info in nodes:
            if info.node_id in self._health:
                raise ValueError(f"duplicate node id {info.node_id!r}")
            self._health[info.node_id] = _Health(info)
        if not self._health:
            raise ValueError("membership needs at least one node")
        self.fail_threshold = fail_threshold
        self.probe_timeout = probe_timeout
        self.stats = stats if stats is not None else Stats()

    # -- lookups -------------------------------------------------------
    def node(self, node_id: str) -> NodeInfo:
        return self._health[node_id].info

    @property
    def node_ids(self) -> List[str]:
        return list(self._health)

    def is_ready(self, node_id: str) -> bool:
        return self._health[node_id].ready

    def ready_ids(self) -> List[str]:
        return [node_id for node_id, health in self._health.items()
                if health.ready]

    # -- state transitions ---------------------------------------------
    def mark_success(self, node_id: str, ready: bool = True) -> None:
        """A probe (or forward) reached the node.  ``ready`` is the
        node's own claim — a draining node is alive but not ready."""
        health = self._health[node_id]
        health.failures = 0
        health.last_error = ""
        if ready and not health.ready:
            self.stats.inc("cluster.node.recovered")
        if not ready and health.ready:
            self.stats.inc("cluster.node.unready")
        health.ready = ready

    def mark_failure(self, node_id: str, error: str = "") -> None:
        """A probe or forward failed; past the threshold the node
        leaves the routing rotation until a probe succeeds."""
        health = self._health[node_id]
        health.failures += 1
        health.last_error = error
        self.stats.inc("cluster.node.failures")
        if health.ready and health.failures >= self.fail_threshold:
            health.ready = False
            self.stats.inc("cluster.node.unready")

    # -- active probing ------------------------------------------------
    async def probe(self, node_id: str) -> bool:
        """One ``/healthz`` round trip; updates state, returns
        readiness."""
        health = self._health[node_id]
        health.probes += 1
        info = health.info
        try:
            status, _headers, payload = await request_json(
                info.host, info.port, "GET", "/healthz",
                timeout=self.probe_timeout)
        except (OSError, asyncio.TimeoutError, ValueError) as error:
            self.mark_failure(node_id,
                              f"{type(error).__name__}: {error}")
            return False
        if status != 200:
            self.mark_failure(node_id, f"healthz answered {status}")
            return False
        self.mark_success(node_id, ready=bool(payload.get("ready", True)))
        return health.ready

    async def check_once(self) -> Dict[str, bool]:
        """Probe every node concurrently; node id → ready."""
        node_ids = self.node_ids
        ready = await asyncio.gather(
            *(self.probe(node_id) for node_id in node_ids))
        return dict(zip(node_ids, ready))

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-node state for the router's ``/healthz``."""
        return {
            node_id: {
                "address": health.info.address,
                "ready": health.ready,
                "consecutive_failures": health.failures,
                "probes": health.probes,
                "last_error": health.last_error,
            }
            for node_id, health in self._health.items()
        }
