"""A local N-node serve fleet, as real processes.

Chaos you can trust requires real deaths: the harness spawns each
``repro.serve`` node as an actual OS process (``python -m repro serve``)
so a *kill* is a genuine ``SIGKILL`` (no drain, no goodbye — exactly
what an OOM kill looks like to the router), a *hang* is ``SIGSTOP``
(the TCP listener still accepts, the application never answers — the
failure mode health checks exist for), and a *drain* is a real
``SIGTERM`` exercising the node's graceful-shutdown path.

Each node gets a stable identity (``node0``…), a pre-allocated fixed
port — so a restarted node comes back on the same address and
membership needs no re-plumbing — and its own cache directory, so
killing a node genuinely loses that shard's warm entries (replication,
not shared storage, is what keeps the cluster warm).  Per-node
stdout/stderr land in ``<cache_root>/<node_id>.log`` for post-mortems.
"""

from __future__ import annotations

import os
import pathlib
import signal
import socket
import subprocess
import sys
import time
from typing import List, Optional

from ..serve.client import ServeClient, ServeError
from .membership import NodeInfo


def _free_port(host: str) -> int:
    """Ask the kernel for a currently-free port.  Racy in principle;
    in practice the fleet binds it again within milliseconds, and the
    fixed address is what lets a restarted node rejoin seamlessly."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _repro_env() -> dict:
    """Child environment with ``repro`` importable regardless of how
    the parent was launched (installed, or PYTHONPATH=src from the
    repo root with any cwd)."""
    import repro

    src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (src + os.pathsep + existing
                             if existing else src)
    return env


class NodeProcess:
    """One serve node: identity, fixed address, and its live process."""

    def __init__(self, node_id: str, host: str, port: int,
                 cache_dir: pathlib.Path, jobs: int,
                 max_queue: int, log_path: pathlib.Path,
                 log_json: bool = True) -> None:
        self.node_id = node_id
        self.host = host
        self.port = port
        self.cache_dir = cache_dir
        self.jobs = jobs
        self.max_queue = max_queue
        self.log_path = log_path
        self.log_json = log_json
        self.proc: Optional[subprocess.Popen] = None
        self.stopped = False     # SIGSTOPped (hung), not dead

    @property
    def info(self) -> NodeInfo:
        return NodeInfo(self.node_id, self.host, self.port)

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    # -- lifecycle -----------------------------------------------------
    def spawn(self) -> None:
        if self.alive():
            raise RuntimeError(f"{self.node_id} is already running")
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        command = [sys.executable, "-m", "repro", "serve",
                   "--host", self.host, "--port", str(self.port),
                   "--jobs", str(self.jobs),
                   "--max-queue", str(self.max_queue),
                   "--cache-dir", str(self.cache_dir),
                   "--node-id", self.node_id]
        if self.log_json:
            # structured per-node logs make <node_id>.log greppable by
            # request id across the whole fleet
            command.append("--log-json")
        log = open(self.log_path, "ab")
        try:
            # Own session ⇒ own process group: a node is the serve
            # process PLUS its pool workers, and the workers inherit
            # the listening socket on fork — SIGKILLing only the
            # parent would leave orphans holding the port (and the
            # restart unable to bind).  Chaos signals hit the group.
            self.proc = subprocess.Popen(
                command, stdout=log, stderr=log,
                stdin=subprocess.DEVNULL, env=_repro_env(),
                start_new_session=True)
        finally:
            log.close()
        self.stopped = False

    def _signal_group(self, signum: int) -> None:
        if self.proc is None:
            return
        try:
            os.killpg(self.proc.pid, signum)
        except (ProcessLookupError, PermissionError):
            pass

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Poll ``/healthz`` until the node answers ready."""
        client = ServeClient(host=self.host, port=self.port, timeout=2)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.alive():
                raise RuntimeError(
                    f"{self.node_id} exited during boot "
                    f"(rc={self.proc.returncode}); see {self.log_path}")
            try:
                if client.healthz().get("ready"):
                    return
            except (ServeError, OSError):
                pass
            time.sleep(0.05)
        raise RuntimeError(
            f"{self.node_id} not ready within {timeout}s; "
            f"see {self.log_path}")

    # -- chaos actions -------------------------------------------------
    def kill(self) -> None:
        """SIGKILL the whole node group: instant death, no drain, and
        no orphaned pool worker left squatting on the port."""
        if self.proc is not None:
            self._signal_group(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM the serve process and wait: the graceful drain path
        (the node winds down its own workers).  Stragglers — e.g. a
        worker wedged mid-simulation — are group-SIGKILLed after the
        timeout."""
        if self.proc is None:
            return 0
        if self.stopped:
            self.resume()
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            returncode = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self._signal_group(signal.SIGKILL)
            returncode = self.proc.wait(timeout=10)
        self._signal_group(signal.SIGKILL)   # reap any orphan workers
        return returncode

    def hang(self) -> None:
        """SIGSTOP the group: the processes freeze but the listener
        keeps accepting — requests time out instead of failing fast,
        the exact failure mode health probes exist to catch."""
        if self.alive():
            self._signal_group(signal.SIGSTOP)
            self.stopped = True

    def resume(self) -> None:
        """SIGCONT a hung node group."""
        if self.proc is not None and self.stopped:
            self._signal_group(signal.SIGCONT)
            self.stopped = False

    def restart(self, timeout: float = 30.0) -> None:
        """Bring a dead node back on the same address and cache dir."""
        if self.alive():
            raise RuntimeError(f"{self.node_id} is still running")
        self.spawn()
        self.wait_ready(timeout=timeout)


class LocalFleet:
    """N serve nodes on localhost, ready for a router (or chaos)."""

    def __init__(self, nodes: int = 3, jobs: int = 1,
                 cache_root=None, host: str = "127.0.0.1",
                 max_queue: int = 64, log_json: bool = True) -> None:
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        if cache_root is None:
            raise ValueError("cache_root is required (one subdir and "
                             "one log file per node land there)")
        self.host = host
        root = pathlib.Path(cache_root)
        root.mkdir(parents=True, exist_ok=True)
        self.nodes: List[NodeProcess] = [
            NodeProcess(node_id=f"node{index}", host=host,
                        port=_free_port(host),
                        cache_dir=root / f"node{index}",
                        jobs=jobs, max_queue=max_queue,
                        log_path=root / f"node{index}.log",
                        log_json=log_json)
            for index in range(nodes)
        ]

    def infos(self) -> List[NodeInfo]:
        return [node.info for node in self.nodes]

    def start(self, timeout: float = 60.0) -> None:
        """Spawn every node, then wait until all answer ready."""
        for node in self.nodes:
            node.spawn()
        deadline = time.monotonic() + timeout
        for node in self.nodes:
            node.wait_ready(timeout=max(1.0,
                                        deadline - time.monotonic()))

    def shutdown(self) -> None:
        """SIGTERM-drain every surviving node (killing stragglers)."""
        for node in self.nodes:
            node.terminate()

    def __enter__(self) -> "LocalFleet":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
