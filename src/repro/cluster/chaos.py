"""Cluster chaos: kill, hang, and restart nodes under live traffic.

The simulator-level chaos harness (:mod:`repro.sim.chaos`) proves the
*modelled* hardware recovers from faults; this one proves the *serving
tier* does.  It boots a real :class:`~repro.cluster.fleet.LocalFleet`
plus a :class:`~repro.cluster.router.RouterService`, drives a grid of
point specs through the router while a seeded plan SIGKILLs, SIGSTOPs,
and restarts nodes mid-grid, and then holds the run to the same two
standards the memory model is held to:

1. **zero client-visible failures** — every request eventually
   succeeds through failover + retry (the request-path analogue of
   write-verify-retry and lossy-ack reissue);
2. **byte-identical payloads** — each routed answer must serialize
   exactly as the batch engine's payload for the same spec key, no
   matter which replica computed it or how many died along the way.

Plans are deterministic: an explicit list of :class:`ChaosAction`, or
:func:`make_plan` derived from a seed.  Actions fire *between*
requests ("after request i"), so a given (specs, plan) pair replays
the same schedule every run.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..serve.client import ServeClient, ServeError
from ..serve.protocol import parse_request
from ..sim.parallel import execute_point
from .fleet import LocalFleet
from .router import RouterService, run_router_in_thread

#: what a plan may do to a node
ACTIONS = ("kill", "restart", "hang", "resume")


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled disturbance: before request ``after_request``
    (0-based) is submitted, apply ``action`` to node ``node``."""

    after_request: int
    action: str
    node: int

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"action must be one of {ACTIONS}, "
                             f"got {self.action!r}")


@dataclass
class RequestOutcome:
    """How one spec fared through the router."""

    index: int
    key: str
    node: Optional[str] = None
    cached: Optional[bool] = None
    payload: Optional[Dict[str, object]] = None
    error: str = ""
    payload_matches: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return not self.error


@dataclass
class ClusterChaosReport:
    """Outcome of one chaos run."""

    nodes: int
    replication: int
    plan: List[ChaosAction]
    outcomes: List[RequestOutcome] = field(default_factory=list)
    seconds: float = 0.0
    verified: bool = False

    @property
    def failures(self) -> List[RequestOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def mismatches(self) -> List[RequestOutcome]:
        return [outcome for outcome in self.outcomes
                if outcome.payload_matches is False]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.mismatches

    def format(self) -> str:
        lines = [
            f"cluster chaos: {len(self.outcomes)} requests over "
            f"{self.nodes} nodes (replication {self.replication}), "
            f"{len(self.plan)} chaos action(s), {self.seconds:.1f}s",
        ]
        for action in self.plan:
            lines.append(f"  plan: {action.action} node{action.node} "
                         f"before request {action.after_request}")
        for outcome in self.outcomes:
            state = "FAIL" if outcome.error else (
                "MISMATCH" if outcome.payload_matches is False else "ok")
            where = outcome.node or "-"
            cached = {True: " warm", False: " cold",
                      None: ""}[outcome.cached]
            detail = f" ({outcome.error})" if outcome.error else ""
            lines.append(f"  [{outcome.index:>3}] {outcome.key[:12]}… "
                         f"-> {where}{cached}: {state}{detail}")
        lines.append(
            f"  failures={len(self.failures)} "
            f"mismatches={len(self.mismatches)} "
            f"verified={'yes' if self.verified else 'no'} "
            f"-> {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def default_grid(points: int = 9, operations: int = 8,
                 workloads: Sequence[str] = ("sps", "hashtable",
                                             "queue")
                 ) -> List[Dict[str, object]]:
    """A small deterministic spec grid: distinct keys (different seeds
    and workloads) so routing spreads across the ring."""
    return [
        {"workload": workloads[index % len(workloads)],
         "scheme": "txcache", "operations": operations,
         "seed": 1000 + index, "config": {"num_cores": 1}}
        for index in range(points)
    ]


def make_plan(seed: int, requests: int, nodes: int,
              hangs: bool = False) -> List[ChaosAction]:
    """Seeded deterministic plan: one SIGKILL mid-grid on a random
    node, its restart ~two-thirds through, and (optionally) a
    hang/resume pair on a different node.  At most one node is down at
    any moment, so a replication-2 fleet must see zero failures."""
    rng = random.Random(seed)
    victim = rng.randrange(nodes)
    kill_at = max(1, requests // 3)
    restart_at = max(kill_at + 1, (2 * requests) // 3)
    plan = [ChaosAction(kill_at, "kill", victim),
            ChaosAction(restart_at, "restart", victim)]
    if hangs and nodes > 1:
        other = rng.choice([index for index in range(nodes)
                            if index != victim])
        hang_at = max(restart_at + 1, requests - 2)
        plan.append(ChaosAction(hang_at, "hang", other))
        plan.append(ChaosAction(min(hang_at + 1, requests), "resume",
                                other))
    return plan


def run_chaos(specs: Sequence[Dict[str, object]], *,
              cache_root, nodes: int = 3, replication: int = 2,
              jobs: int = 1, plan: Optional[Sequence[ChaosAction]] = None,
              seed: int = 0, hangs: bool = False,
              client_retries: int = 6,
              retry_backoff_seconds: float = 0.1,
              request_timeout: float = 30.0,
              health_interval_seconds: float = 0.25,
              verify: bool = True,
              progress=None) -> ClusterChaosReport:
    """Boot fleet + router, run the grid under the plan, verify.

    Every spec is submitted sequentially through the router with
    client-side bounded retry; due chaos actions fire between
    submissions.  With ``verify=True`` each unique key's payload is
    recomputed in-process via the batch engine's
    :func:`~repro.sim.parallel.execute_point` and compared
    byte-for-byte (``json.dumps``) against the routed answer.
    """
    specs = list(specs)
    if plan is None:
        plan = make_plan(seed, len(specs), nodes, hangs=hangs)
    plan = sorted(plan, key=lambda action: action.after_request)
    due = list(plan)

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    report = ClusterChaosReport(nodes=nodes, replication=replication,
                                plan=list(plan))
    start = time.monotonic()
    fleet = LocalFleet(nodes=nodes, jobs=jobs, cache_root=cache_root)
    router_thread = None
    router = None
    try:
        note(f"booting {nodes} node(s)...")
        fleet.start()
        router = RouterService(
            fleet.infos(), replication=replication, port=0,
            retries=client_retries,
            retry_backoff_seconds=retry_backoff_seconds,
            health_interval_seconds=health_interval_seconds,
            probe_timeout=1.0,
            request_timeout=request_timeout)
        router_thread, router_port = run_router_in_thread(router)
        client = ServeClient(port=router_port,
                             timeout=request_timeout * 4)
        note(f"router on :{router_port}; submitting "
             f"{len(specs)} request(s)")

        for index, spec in enumerate(specs):
            while due and due[0].after_request <= index:
                action = due.pop(0)
                node = fleet.nodes[action.node]
                note(f"chaos: {action.action} {node.node_id}")
                getattr(node, action.action)()
            key = parse_request(spec).key
            outcome = RequestOutcome(index=index, key=key)
            try:
                response = client.submit(
                    spec, retries=client_retries,
                    retry_backoff_seconds=retry_backoff_seconds)
                outcome.node = response.get("node")
                outcome.cached = response.get("cached")
                outcome.payload = response.get("payload")
            except (ServeError, OSError) as error:
                outcome.error = f"{type(error).__name__}: {error}"
            report.outcomes.append(outcome)

        # anything the plan left killed or hung comes back before the
        # drain, so shutdown exercises the graceful path everywhere
        for action_node in fleet.nodes:
            action_node.resume()

        if verify:
            note("verifying payloads against the batch engine...")
            oracle: Dict[str, str] = {}
            for spec in specs:
                request = parse_request(spec)
                if request.key not in oracle:
                    _key, payload, _seconds = \
                        execute_point(request.point)
                    oracle[request.key] = json.dumps(payload)
            for outcome in report.outcomes:
                if outcome.error:
                    continue
                outcome.payload_matches = \
                    json.dumps(outcome.payload) == oracle[outcome.key]
            report.verified = True
    finally:
        if router is not None:
            router.request_shutdown()
        if router_thread is not None:
            router_thread.join(timeout=30)
        fleet.shutdown()
    report.seconds = time.monotonic() - start
    return report
