"""Minimal asyncio HTTP/1.1 JSON client used inside the router.

The serve tier speaks a deliberately tiny HTTP dialect
(:mod:`repro.serve.server`); this is its client-side mirror — one
``Connection: close`` request per call, stdlib only, every call bounded
by a timeout so a hung node (e.g. a SIGSTOPped process in the chaos
harness) turns into :class:`asyncio.TimeoutError` instead of a wedged
router.  The blocking :class:`~repro.serve.client.ServeClient` stays
the external client; this one exists so the router can hold many
forwards in flight on one event loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple


async def request_json(host: str, port: int, method: str, path: str,
                       body: Optional[bytes] = None,
                       timeout: float = 30.0,
                       headers: Optional[Dict[str, str]] = None
                       ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
    """One HTTP request; returns ``(status, headers, decoded_json)``.

    Raises ``OSError`` on connection failure and
    ``asyncio.TimeoutError`` when the whole exchange exceeds
    ``timeout``.  A non-JSON body decodes to ``{"error": <text>}`` so
    callers can treat every answer uniformly.  ``headers`` adds extra
    request headers (the router forwards ``X-Request-Id`` this way).
    """
    return await asyncio.wait_for(
        _request(host, port, method, path, body, headers), timeout)


async def _request(host: str, port: int, method: str, path: str,
                   body: Optional[bytes],
                   extra_headers: Optional[Dict[str, str]] = None
                   ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        blob = body if body is not None else b""
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {host}:{port}",
                 "Connection: close",
                 f"Content-Length: {len(blob)}"]
        if blob:
            lines.append("Content-Type: application/json")
        if extra_headers:
            lines.extend(f"{name}: {value}"
                         for name, value in extra_headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + blob)
        await writer.drain()

        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(
                f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        raw = (await reader.readexactly(int(length)) if length
               else await reader.read())
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError:
            payload = {"error": raw.decode("utf-8", "replace")}
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return status, headers, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
