"""The cluster front-end: consistent-hash routing with failover.

One :class:`RouterService` sits in front of N ``repro.serve`` nodes
and turns them into a degradable fleet:

* **Placement** — a request's sha256 spec key is consistent-hashed
  onto the ring (:mod:`repro.cluster.placement`); its first
  ``replication`` distinct nodes are the *home set*, so repeats of a
  key land on the same nodes and hit their warm on-disk caches.
* **Failover** — candidates are tried in preference order, filtered by
  live readiness (:mod:`repro.cluster.membership`): home replicas
  first, then ready non-home nodes as spillover (any node can compute
  any point — homes are warm, not authoritative), then the raw home
  set as a last ditch.  A shed (503), a 5xx, a timeout, or a
  connection failure moves to the next candidate; a connection-level
  failure also marks the node, so a SIGKILLed process leaves the
  rotation on the very next request.
* **Retry discipline** — after one full pass over the candidates the
  router sleeps the repo's one shared backoff curve
  (:func:`repro.faults.exponential_backoff`), stretched to the largest
  ``Retry-After`` any replica answered, re-resolves candidates
  (membership may have changed under it — that is the point) and tries
  again, a bounded number of times.  Deterministic rejections
  (400/404/405) are returned immediately, never retried.
* **Coalescing** — concurrent requests for one key share a single
  forward, so a thundering herd on a cold key charges one replica
  once, not R replicas N times.  (Each node's scheduler coalesces its
  own clients too; this extends the guarantee across the fleet.)
* **One cluster view** — ``/stats`` folds every reachable node's
  counters into a single registry via :meth:`Stats.merge
  <repro.common.stats.Stats.merge>`, both summed (``cluster``) and
  per-node-prefixed (``nodes.<id>.*``), alongside the router's own
  routing counters.

The HTTP surface mirrors one node's (``POST /v1/points``,
``GET /healthz``, ``GET /stats``), so a :class:`~repro.serve.client.
ServeClient` pointed at a router needs no changes at all.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.stats import Stats
from ..faults import exponential_backoff
from ..obs.jsonlog import get_logger
from ..obs.metrics import stats_to_prometheus
from ..obs.spans import SpanRecorder
from ..serve.ops import (TimeSlicer, ensure_request_id,
                         install_signal_handlers, tick_forever)
from ..serve.protocol import ProtocolError, parse_request
from ..serve.server import read_http_request, write_http_response
from .membership import Membership, NodeInfo
from .placement import HashRing
from .transport import request_json

#: node answers that mean "try the next replica" (shed, crashed point,
#: node-side deadline); anything else 4xx/2xx is final
_FAILOVER_STATUSES = frozenset({500, 502, 503, 504})


class ReplicasExhausted(Exception):
    """Every candidate failed on every attempt (router answers 503)."""

    def __init__(self, key: str, attempts: int,
                 retry_after: int) -> None:
        super().__init__(
            f"point {key[:12]}…: all replicas failed over "
            f"{attempts} attempt(s), retry after ~{retry_after}s")
        self.retry_after = retry_after


class RouterService:
    """Sharded, replicated front-end over a fixed node list."""

    def __init__(self, nodes: Sequence[NodeInfo], replication: int = 2,
                 host: str = "127.0.0.1", port: int = 8341,
                 retries: int = 3,
                 retry_backoff_seconds: float = 0.05,
                 health_interval_seconds: float = 0.5,
                 fail_threshold: int = 2,
                 probe_timeout: float = 2.0,
                 request_timeout: float = 120.0,
                 epoch_ms: int = 1000,
                 ready_callback=None) -> None:
        nodes = list(nodes)
        if replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {replication}")
        if replication > len(nodes):
            raise ValueError(
                f"replication {replication} exceeds fleet size "
                f"{len(nodes)}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.bound_port: Optional[int] = None
        self.replication = replication
        self.retries = retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.health_interval_seconds = health_interval_seconds
        self.request_timeout = request_timeout
        self.stats = Stats()
        self.ring = HashRing(info.node_id for info in nodes)
        self.membership = Membership(nodes,
                                     fail_threshold=fail_threshold,
                                     probe_timeout=probe_timeout,
                                     stats=self.stats)
        self.slicer = TimeSlicer(epoch_ms=epoch_ms)
        self.slicer.add_probe("ready_nodes",
                              lambda: len(self.membership.ready_ids()))
        self.slicer.add_probe("inflight", lambda: len(self._inflight))
        self.spans = SpanRecorder("router")
        self.log = get_logger()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._ready_callback = ready_callback
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._connections: Dict[asyncio.Task, asyncio.StreamWriter] = {}

    # -- lifecycle -----------------------------------------------------
    def request_shutdown(self) -> None:
        """Stop the router; callable from any thread."""
        loop, shutdown = self._loop, self._shutdown
        if loop is None or shutdown is None:
            return
        loop.call_soon_threadsafe(shutdown.set)

    async def run(self, install_signals: bool = True) -> None:
        """Route until shutdown is requested."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(self._handle_connection,
                                            self.host, self.port)
        self.bound_port = server.sockets[0].getsockname()[1]
        if install_signals:
            install_signal_handlers(self._loop, self._shutdown.set)
        health = asyncio.create_task(self._health_forever())
        # telemetry ticks on its own task: coupling the sampler to the
        # health loop leaves idle-period gaps whenever probes stall
        ticker = asyncio.create_task(tick_forever(self.slicer))
        if self._ready_callback is not None:
            self._ready_callback(self.bound_port)
        self.log.log("router.ready", host=self.host,
                     port=self.bound_port,
                     nodes=len(self.membership.node_ids))
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            # let in-flight forwards answer their clients
            if self._connections:
                await asyncio.wait(set(self._connections), timeout=10)
            for task in (health, ticker):
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            self.log.log("router.stop",
                         uptime_seconds=round(
                             self.slicer.uptime_seconds, 3))

    async def _health_forever(self) -> None:
        while True:
            await self.membership.check_once()
            await asyncio.sleep(self.health_interval_seconds)

    # -- HTTP front ----------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections[task] = writer
        try:
            while True:
                request = await read_http_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                self.stats.inc("cluster.http.requests")
                status, payload, extra = await self._dispatch(
                    method, target, body, headers)
                self.stats.inc(f"cluster.http.{status}")
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                await write_http_response(writer, status, payload,
                                          extra, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError, ValueError):
            pass  # half-closed or garbage connection: just drop it
        finally:
            self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, method: str, target: str, body: bytes,
                        headers: Optional[Dict[str, str]] = None
                        ) -> Tuple[int, Dict[str, object],
                                   Dict[str, str]]:
        target = target.split("?", 1)[0]
        if target == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, self.healthz_payload(), {}
        if target == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, await self.cluster_stats(), {}
        if target == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, await self.cluster_metrics(), {}
        if target == "/trace":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, self.spans.chrome_trace(), {}
        if target == "/v1/points":
            if method != "POST":
                return 405, {"error": "use POST"}, {}
            return await self._submit(body, ensure_request_id(headers))
        return 404, {"error": f"no such endpoint {target!r}"}, {}

    def healthz_payload(self) -> Dict[str, object]:
        ready = self.membership.ready_ids()
        return {
            "status": "ok" if ready else "degraded",
            "live": True,
            "ready": bool(ready),
            "role": "router",
            "replication": self.replication,
            "ready_nodes": len(ready),
            "nodes": self.membership.snapshot(),
            "uptime_seconds": round(self.slicer.uptime_seconds, 3),
        }

    # -- routing -------------------------------------------------------
    async def _submit(self, body: bytes,
                      request_id: Optional[str] = None
                      ) -> Tuple[int, Dict[str, object],
                                 Dict[str, str]]:
        if request_id is None:
            request_id = ensure_request_id()
        started = time.perf_counter()
        with self.spans.span("route", "route",
                             request_id=request_id) as span:
            status, payload, extra = await self._submit_inner(
                body, request_id)
            span["status"] = status
            if "key" in payload:
                span["key"] = payload["key"]
        self.stats.hist("cluster.request.ms",
                        (time.perf_counter() - started) * 1000)
        # every waiter (coalesced or not) answers with its *own* id
        payload = dict(payload)
        payload["request_id"] = request_id
        extra = dict(extra)
        extra["X-Request-Id"] = request_id
        self.log.log("route", request_id=request_id, status=status,
                     key=payload.get("key"), node=payload.get("node"))
        return status, payload, extra

    async def _submit_inner(self, body: bytes, request_id: str
                            ) -> Tuple[int, Dict[str, object],
                                       Dict[str, str]]:
        # Parse at the edge: a malformed spec is a 400 here, never a
        # wasted forward; a valid one yields the engine spec key the
        # ring places.  The original body is forwarded verbatim so the
        # node builds the byte-identical point.
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return 400, {"error": "request body is not valid JSON"}, {}
        try:
            request = parse_request(data)
        except ProtocolError as error:
            return 400, {"error": str(error)}, {}
        key = request.key

        future = self._inflight.get(key)
        if future is not None:
            # duplicate key in flight: ride the existing forward so
            # replicas are never double-charged for one point
            self.stats.inc("cluster.coalesced")
            self.spans.instant("route", "coalesce.join",
                               request_id=request_id, key=key)
            try:
                return await asyncio.shield(future)
            except ReplicasExhausted as error:
                return self._exhausted_response(error)
            except asyncio.CancelledError:
                raise

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            response = await self._forward_with_retries(key, body,
                                                        request_id)
            future.set_result(response)
            return response
        except ReplicasExhausted as error:
            future.set_exception(error)
            return self._exhausted_response(error)
        except BaseException as error:
            future.set_exception(error)
            raise
        finally:
            self._inflight.pop(key, None)
            if future.done() and not future.cancelled():
                future.exception()   # absorb if nobody coalesced

    @staticmethod
    def _exhausted_response(error: ReplicasExhausted
                            ) -> Tuple[int, Dict[str, object],
                                       Dict[str, str]]:
        return 503, {"error": str(error),
                     "retry_after": error.retry_after}, \
            {"Retry-After": str(error.retry_after)}

    def candidates(self, key: str) -> List[str]:
        """Failover order for a key: ready home replicas, then ready
        spillover nodes, then the unfiltered home set (a node may have
        recovered since its last probe)."""
        preference = self.ring.preference(key)
        home = preference[:self.replication]
        ready = [node_id for node_id in preference
                 if self.membership.is_ready(node_id)]
        ready_home = [n for n in ready if n in home]
        spill = [n for n in ready if n not in home]
        order = ready_home + spill
        for node_id in home:
            if node_id not in order:
                order.append(node_id)
        return order

    async def _forward_with_retries(
            self, key: str, body: bytes,
            request_id: Optional[str] = None
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        attempts = 0
        retry_after = 0
        forward_headers = ({"X-Request-Id": request_id}
                           if request_id else None)
        for round_number in range(1, self.retries + 2):
            candidates = self.candidates(key)
            in_home = set(self.ring.replicas(key, self.replication))
            for node_id in candidates:
                attempts += 1
                if node_id not in in_home:
                    self.stats.inc("cluster.spillover")
                info = self.membership.node(node_id)
                with self.spans.span("forward", "forward",
                                     request_id=request_id, key=key,
                                     node=node_id,
                                     round=round_number) as span:
                    try:
                        status, headers, payload = await request_json(
                            info.host, info.port, "POST", "/v1/points",
                            body, timeout=self.request_timeout,
                            headers=forward_headers)
                    except (OSError, asyncio.TimeoutError,
                            ValueError) as error:
                        span["outcome"] = type(error).__name__
                        self.stats.inc("cluster.forward.errors")
                        self.membership.mark_failure(
                            node_id, f"{type(error).__name__}: {error}")
                        continue
                    span["status"] = status
                if status == 200:
                    self.stats.inc("cluster.forward.ok")
                    self.membership.mark_success(node_id)
                    payload = dict(payload)
                    payload["node"] = node_id
                    return 200, payload, {}
                if status in _FAILOVER_STATUSES:
                    self.stats.inc(f"cluster.forward.{status}")
                    if status == 503:
                        # shed: the node is alive but saturated or
                        # draining — honor its own estimate
                        hint = headers.get("retry-after")
                        if hint and hint.isdigit():
                            retry_after = max(retry_after, int(hint))
                    continue
                # deterministic rejection (400/404/405): final
                self.stats.inc("cluster.forward.rejected")
                return status, dict(payload), {}
            if round_number <= self.retries:
                self.stats.inc("cluster.retries")
                self.spans.instant("forward", "retry.round",
                                   request_id=request_id, key=key,
                                   round=round_number)
                self.log.log("retry.round", level="warning",
                             request_id=request_id, key=key,
                             round=round_number)
                delay = exponential_backoff(
                    self.retry_backoff_seconds, round_number)
                await asyncio.sleep(max(delay, retry_after))
                retry_after = 0
        raise ReplicasExhausted(key, attempts,
                                retry_after=max(retry_after, 1))

    # -- the merged cluster view ---------------------------------------
    async def cluster_stats(self) -> Dict[str, object]:
        """``/stats``: every reachable node's registry folded into one
        via :meth:`Stats.merge` — ``cluster.counters`` sums the fleet,
        ``nodes.<id>.*`` keeps the per-node split, and the cache block
        aggregates hit/miss/eviction effectiveness."""
        node_ids = self.membership.node_ids
        results = await asyncio.gather(
            *(self._fetch_stats(node_id) for node_id in node_ids))
        totals = Stats()
        by_node = Stats()
        nodes: Dict[str, object] = {}
        cache = {"hits": 0, "misses": 0, "evictions": 0, "entries": 0,
                 "size_bytes": 0}
        for node_id, payload in zip(node_ids, results):
            if payload is None:
                nodes[node_id] = {"reachable": False}
                continue
            counters = payload.get("counters", {})
            flat = Stats.from_flat(counters if isinstance(counters, dict)
                                   else {})
            totals.merge(flat)
            by_node.merge(flat, prefix=f"{node_id}.")
            node_cache = payload.get("cache", {})
            if isinstance(node_cache, dict):
                for name in cache:
                    value = node_cache.get(name, 0)
                    if isinstance(value, (int, float)) \
                            and not isinstance(value, bool):
                        cache[name] += value
            nodes[node_id] = {
                "reachable": True,
                "ready": self.membership.is_ready(node_id),
                "draining": payload.get("draining"),
                "queue_depth": payload.get("queue_depth"),
                "inflight": payload.get("inflight"),
                "uptime_seconds": payload.get("uptime_seconds"),
                "cache": node_cache,
            }
        lookups = cache["hits"] + cache["misses"]
        cache["hit_ratio"] = round(cache["hits"] / lookups, 6) \
            if lookups else 0.0
        return {
            "role": "router",
            "replication": self.replication,
            "ready_nodes": len(self.membership.ready_ids()),
            "inflight": len(self._inflight),
            "router": {"counters": self.stats.dump(),
                       "timeseries": self.slicer.series()},
            "cluster": {"counters": totals.dump(), "cache": cache},
            "nodes": nodes,
            "counters_by_node": by_node.dump(),
        }

    async def cluster_metrics(self) -> str:
        """``/metrics``: the router's own registry (``repro_*``,
        labelled ``role="router"``) followed by the fleet's summed
        counters rebuilt via :meth:`Stats.from_flat` + :meth:`merge`
        under the ``repro_fleet_*`` namespace — one scrape answers
        both "how is routing going" and "what is the fleet doing"."""
        own = stats_to_prometheus(
            self.stats, namespace="repro",
            labels={"role": "router"},
            gauges={
                "ready_nodes": len(self.membership.ready_ids()),
                "nodes_total": len(self.membership.node_ids),
                "inflight": len(self._inflight),
                "uptime_seconds": round(self.slicer.uptime_seconds, 3),
            })
        node_ids = self.membership.node_ids
        results = await asyncio.gather(
            *(self._fetch_stats(node_id) for node_id in node_ids))
        totals = Stats()
        reachable = 0
        for payload in results:
            if payload is None:
                continue
            reachable += 1
            counters = payload.get("counters", {})
            totals.merge(Stats.from_flat(
                counters if isinstance(counters, dict) else {}))
        fleet = stats_to_prometheus(
            totals, namespace="repro_fleet",
            labels={"role": "router"},
            gauges={"reachable_nodes": reachable})
        return own + fleet

    async def _fetch_stats(self, node_id: str
                           ) -> Optional[Dict[str, object]]:
        info = self.membership.node(node_id)
        try:
            status, _headers, payload = await request_json(
                info.host, info.port, "GET", "/stats",
                timeout=self.membership.probe_timeout)
        except (OSError, asyncio.TimeoutError, ValueError):
            return None
        return payload if status == 200 else None


def run_router_in_thread(router: RouterService
                         ) -> Tuple[threading.Thread, int]:
    """Start a router on a daemon thread; returns ``(thread,
    bound_port)`` once it is listening — same harness shape as
    :func:`repro.serve.server.run_in_thread`."""
    ready = threading.Event()
    ports: List[int] = []
    previous = router._ready_callback

    def on_ready(port: int) -> None:
        ports.append(port)
        ready.set()
        if previous is not None:
            previous(port)

    router._ready_callback = on_ready
    thread = threading.Thread(
        target=lambda: asyncio.run(router.run(install_signals=False)),
        name="repro-cluster-router", daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("router failed to start within 30s")
    return thread, ports[0]
