"""Operational surface of the simulation service.

``/healthz`` and ``/stats`` payload construction, wall-clock
time-sliced telemetry, and graceful SIGTERM/SIGINT drain.

Time slicing reuses the observability layer's
:class:`~repro.obs.sampler.EpochSampler` unchanged: the sampler is
clock-agnostic — it samples registered probes whenever its "advance
hook" crosses an epoch boundary — so the service drives it with
milliseconds-since-start instead of simulated cycles and gets the same
bounded-ring, last-boundary-stamped time series the simulator's tracer
gets.  ``/stats`` exposes the recent series (queue depth, in-flight
points, cache hit ratio) alongside the aggregate counters, answering
"what is the server doing *lately*", not just "since boot".
"""

from __future__ import annotations

import asyncio
import re
import signal
import time
import uuid
from typing import Callable, Dict, List, Mapping, Optional

from ..obs.metrics import stats_to_prometheus
from ..obs.sampler import EpochSampler
from ..obs.tracer import Tracer


class TimeSlicer:
    """Wall-clock driver for an :class:`EpochSampler`.

    Probes are zero-argument callables; every ``epoch_ms`` of wall
    time a periodic tick records one value per probe into a bounded
    tracer ring (newest kept), giving /stats a fixed-memory sliding
    window regardless of uptime.
    """

    def __init__(self, epoch_ms: int = 1000,
                 capacity: int = 1024) -> None:
        self.epoch_ms = epoch_ms
        self.tracer = Tracer(capacity=capacity)
        self.sampler = EpochSampler(self.tracer, epoch=epoch_ms)
        self._start = time.monotonic()

    def add_probe(self, name: str, probe: Callable[[], object]) -> None:
        self.sampler.add_probe("serve", "ops", name, probe)

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._start

    def tick(self) -> None:
        """Advance the sampler to 'now' (milliseconds since start)."""
        self.sampler.on_advance(int(self.uptime_seconds * 1000))

    def series(self) -> Dict[str, List[List[float]]]:
        """name → [[ms_since_start, value], ...], oldest first."""
        out: Dict[str, List[List[float]]] = {}
        for event in self.tracer.events():
            if event.get("ph") != "C":
                continue
            value = event.get("args", {}).get("value", 0)
            out.setdefault(event["name"], []).append(
                [event["ts"], value])
        return out


async def tick_forever(slicer: TimeSlicer) -> None:
    """Drive a :class:`TimeSlicer` on a dedicated periodic task.

    Sampling must not be coupled to traffic or to other periodic work
    (health probes, request handling): a slicer ticked only when
    something else happens leaves holes in the queue-depth/occupancy
    series exactly when the interesting thing is that *nothing* is
    happening.  Both the serve node and the cluster router run this as
    their own asyncio task."""
    while True:
        slicer.tick()
        await asyncio.sleep(slicer.epoch_ms / 1000)


#: accepted caller-supplied request-id shape: opaque but greppable,
#: safe in headers/log lines/trace args, bounded
REQUEST_ID_RE = re.compile(r"[A-Za-z0-9._:-]{1,128}\Z")


def ensure_request_id(headers: Optional[Mapping[str, str]] = None) -> str:
    """The request's correlation id: the caller's ``X-Request-Id``
    when present and well-formed, else a fresh opaque id.  Malformed
    ids are replaced, not rejected — correlation is best-effort
    telemetry and must never fail a request."""
    if headers:
        supplied = headers.get("x-request-id", "")
        if supplied and REQUEST_ID_RE.match(supplied):
            return supplied
    return uuid.uuid4().hex


def metrics_payload(service) -> str:
    """The node's ``/metrics`` exposition text: every Stats counter
    and histogram plus point-in-time gauges, labelled with the node
    id so fleet scrapes stay distinguishable."""
    scheduler = service.scheduler
    gauges: Dict[str, float] = {
        "queue_depth": scheduler.queue_depth,
        "inflight": scheduler.inflight,
        "draining": 1 if scheduler.draining else 0,
        "uptime_seconds": round(service.slicer.uptime_seconds, 3),
    }
    if scheduler.cache is not None:
        gauges["cache_entries"] = len(scheduler.cache)
        gauges["cache_size_bytes"] = scheduler.cache.size_bytes()
    labels = {"node": service.node_id} if service.node_id else {}
    return stats_to_prometheus(service.stats, namespace="repro",
                               labels=labels, gauges=gauges)


def healthz_payload(service) -> Dict[str, object]:
    """Liveness *and* readiness in one probe.

    ``live`` is unconditional — answering at all proves the event loop
    is turning.  ``ready`` means "send me new work": a draining node
    (SIGTERM received, scheduler finishing its in-flight points) is
    still live but *not* ready, which is what tells the cluster router
    to fail its keys over to the next replica instead of feeding a
    dying node.
    """
    draining = service.scheduler.draining
    return {
        "status": "draining" if draining else "ok",
        "live": True,
        "ready": not draining,
        "node": service.node_id,
        "uptime_seconds": round(service.slicer.uptime_seconds, 3),
    }


def stats_payload(service) -> Dict[str, object]:
    """The /stats JSON: aggregate counters + queue/cache gauges +
    recent time series."""
    stats = service.stats
    scheduler = service.scheduler
    hits = stats.counter("serve.cache.hits")
    misses = stats.counter("serve.cache.misses")
    lookups = hits + misses
    cache: Dict[str, object] = {
        "configured": scheduler.cache is not None,
        "hits": hits,
        "misses": misses,
        "hit_ratio": round(hits / lookups, 6) if lookups else 0.0,
    }
    if scheduler.cache is not None:
        cache["entries"] = len(scheduler.cache)
        cache["size_bytes"] = scheduler.cache.size_bytes()
        cache["max_bytes"] = scheduler.cache.max_bytes
        # the store's own view: lookups it served (hits/misses of
        # every get(), scheduler or engine) and entries evicted by
        # the size cap — per-node cache effectiveness for the
        # cluster's merged /stats
        cache["store_hits"] = scheduler.cache.hits
        cache["store_misses"] = scheduler.cache.misses
        cache["evictions"] = scheduler.cache.evictions
    return {
        "node": service.node_id,
        "uptime_seconds": round(service.slicer.uptime_seconds, 3),
        "draining": scheduler.draining,
        "queue_depth": scheduler.queue_depth,
        "inflight": scheduler.inflight,
        "max_queue": scheduler.max_queue,
        "max_inflight": scheduler.max_inflight,
        "jobs": service.fleet.jobs,
        "cache": cache,
        "counters": stats.dump(),
        "timeseries": service.slicer.series(),
    }


def install_signal_handlers(loop, shutdown: Callable[[], None],
                            signals=(signal.SIGTERM,
                                     signal.SIGINT)) -> List[int]:
    """Route SIGTERM/SIGINT into a graceful drain; returns the signal
    numbers actually installed (platforms without
    ``loop.add_signal_handler`` — or non-main threads — get none and
    rely on the caller's fallback)."""
    installed: List[int] = []
    for signum in signals:
        try:
            loop.add_signal_handler(signum, shutdown)
        except (NotImplementedError, RuntimeError, ValueError):
            continue
        installed.append(signum)
    return installed
