"""Wire protocol of the simulation service: JSON point specs.

A request is one JSON object describing one experiment point — the
same frozen point kinds the batch engine runs
(:data:`repro.sim.parallel.POINT_KINDS`)::

    {
      "kind": "experiment",            // experiment | run_length |
                                       //   crash | chaos | litmus
      "workload": "hashtable",
      "scheme": "txcache",
      "operations": 100,               // optional (kind default)
      "seed": 42,                      // optional
      "workload_params": {"...": 1},   // optional, scalar values
      "config": {                      // optional config block
        "preset": "small",             //   "small" (default) | "paper"
        "num_cores": 1,                //   shortcut for the common knob
        "overrides": {"txcache": {"size_bytes": 8192}}
      },
      "crash_cycle": 1200,             // crash/chaos kinds only
      "total_cycles": 4800,            //   (both required there)
      "deadline_ms": 30000             // optional per-request deadline
    }

Litmus points replace ``workload`` with an inline program (the
:meth:`repro.litmus.LitmusProgram.to_dict` shape) and accept an
optional crash stride::

    {
      "kind": "litmus",
      "program": {"name": "mp", "cores": [[{"op": "tx_begin", ...}]]},
      "scheme": "txcache",
      "check_every": 1,                // optional
      "config": {...}                  // optional, as above
    }

Parsing builds the *identical* frozen point dataclass the engine
builds, so the spec key (sha256 over kind + code version + spec) — and
therefore the on-disk cache entry — is shared between the service and
every batch path: a point computed by ``repro figures`` is a warm hit
for a served request and vice versa.

``config.overrides`` is a partial nested dict in the shape of
:func:`repro.common.config.config_to_dict`; it is deep-merged onto the
chosen preset and re-validated with the same
:func:`~repro.sim.validate.require_valid_config` gate the grid runners
use, so a bad knob is a 400 at the front door rather than a crashed
worker.  Unknown keys anywhere are errors, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

from ..common.config import (
    MachineConfig,
    config_from_dict,
    config_to_dict,
    paper_machine_config,
    small_machine_config,
)
from ..common.types import SchemeName
from ..persistence import scheme_names
from ..sim.parallel import POINT_KINDS, make_params
from ..sim.validate import require_valid_config
from ..workloads import WORKLOADS

#: presets a request may name in its config block
CONFIG_PRESETS = ("small", "paper")

_TOP_KEYS = frozenset({
    "kind", "workload", "scheme", "operations", "seed",
    "workload_params", "config", "crash_cycle", "total_cycles",
    "deadline_ms", "program", "check_every",
})
_CONFIG_KEYS = frozenset({"preset", "num_cores", "overrides"})
_CRASH_KINDS = frozenset({"crash", "chaos"})
_LITMUS_ONLY_KEYS = ("program", "check_every")
_LITMUS_REJECTED_KEYS = ("workload", "operations", "seed",
                         "workload_params", "crash_cycle", "total_cycles")


class ProtocolError(ValueError):
    """A request the protocol rejects (the server answers 400)."""


@dataclass(frozen=True)
class PointRequest:
    """One parsed request: the point to run plus request options."""

    point: object                      # one of the POINT_KINDS classes
    deadline: Optional[float] = None   # seconds, None = server default

    @property
    def key(self) -> str:
        return self.point.key


def _require_int(data: Mapping, name: str, minimum: int = 0) -> int:
    value = data[name]
    # bool is an int subclass; a spec saying "operations": true is a bug
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ProtocolError(f"{name} must be >= {minimum}, got {value}")
    return value


def build_config(data: Optional[Mapping]) -> MachineConfig:
    """Materialize the request's config block into a MachineConfig."""
    if data is None:
        data = {}
    if not isinstance(data, Mapping):
        raise ProtocolError(f"config must be an object, got {data!r}")
    unknown = sorted(set(data) - _CONFIG_KEYS)
    if unknown:
        raise ProtocolError(
            f"config: unknown keys {unknown} "
            f"(known: {sorted(_CONFIG_KEYS)})")
    preset = data.get("preset", "small")
    if preset not in CONFIG_PRESETS:
        raise ProtocolError(
            f"config.preset must be one of {list(CONFIG_PRESETS)}, "
            f"got {preset!r}")
    config = (paper_machine_config() if preset == "paper"
              else small_machine_config())
    if "num_cores" in data:
        config = replace(
            config, num_cores=_require_int(data, "num_cores", minimum=1))
    overrides = data.get("overrides")
    if overrides is not None:
        if not isinstance(overrides, Mapping):
            raise ProtocolError(
                f"config.overrides must be an object, got {overrides!r}")
        merged = _deep_merge(config_to_dict(config), overrides,
                             path="config.overrides")
        try:
            config = config_from_dict(merged)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    try:
        require_valid_config(config, context="request config")
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return config


def _deep_merge(base: Dict[str, object], overrides: Mapping,
                path: str) -> Dict[str, object]:
    """Merge a partial override tree onto a full config dict.  Keys
    absent from the base are typos: rejected, with the path named."""
    out = dict(base)
    for name, value in overrides.items():
        if name not in out:
            raise ProtocolError(
                f"{path}: unknown key {name!r} "
                f"(known: {sorted(base)})")
        if isinstance(out[name], dict):
            if not isinstance(value, Mapping):
                raise ProtocolError(
                    f"{path}.{name}: expected an object, got {value!r}")
            out[name] = _deep_merge(out[name], value, f"{path}.{name}")
        else:
            out[name] = value
    return out


def parse_request(data: object) -> PointRequest:
    """Parse one request body (already JSON-decoded) into a point.

    Raises :class:`ProtocolError` for anything malformed; the point it
    returns is validated and ready to execute.
    """
    if not isinstance(data, Mapping):
        raise ProtocolError(f"request must be a JSON object, got {data!r}")
    unknown = sorted(set(data) - _TOP_KEYS)
    if unknown:
        raise ProtocolError(f"unknown keys {unknown} "
                            f"(known: {sorted(_TOP_KEYS)})")

    kind = data.get("kind", "experiment")
    point_cls = POINT_KINDS.get(kind)
    if point_cls is None:
        raise ProtocolError(f"kind must be one of "
                            f"{sorted(POINT_KINDS)}, got {kind!r}")

    if kind == "litmus":
        return _parse_litmus_request(data, point_cls)
    for name in _LITMUS_ONLY_KEYS:
        if name in data:
            raise ProtocolError(f"{name} only applies to litmus points")

    workload = data.get("workload")
    if workload not in WORKLOADS:
        raise ProtocolError(f"workload must be one of "
                            f"{sorted(WORKLOADS)}, got {workload!r}")
    try:
        scheme = SchemeName.parse(data.get("scheme"))
    except (ValueError, KeyError, AttributeError) as exc:
        # experiment results round-trip through SchemeName.parse, so
        # only enum schemes are accepted here
        raise ProtocolError(
            f"scheme must be one of "
            f"{scheme_names(include_extras=False)}, "
            f"got {data.get('scheme')!r}") from exc

    kwargs: Dict[str, object] = {
        "workload": workload,
        "scheme": scheme.value,
        "config": build_config(data.get("config")),
    }
    if "operations" in data:
        kwargs["operations"] = _require_int(data, "operations", minimum=1)
    if "seed" in data:
        kwargs["seed"] = _require_int(data, "seed")

    params = data.get("workload_params")
    if params is not None:
        if not isinstance(params, Mapping):
            raise ProtocolError(
                f"workload_params must be an object, got {params!r}")
        for name, value in params.items():
            if isinstance(value, (dict, list)):
                raise ProtocolError(
                    f"workload_params.{name} must be a scalar, "
                    f"got {value!r}")
        kwargs["workload_params"] = make_params(dict(params))

    if kind in _CRASH_KINDS:
        for name in ("crash_cycle", "total_cycles"):
            if name not in data:
                raise ProtocolError(f"kind {kind!r} requires {name}")
            kwargs[name] = _require_int(data, name, minimum=1)
    else:
        for name in ("crash_cycle", "total_cycles"):
            if name in data:
                raise ProtocolError(
                    f"{name} only applies to crash/chaos points")

    deadline = None
    if "deadline_ms" in data:
        deadline = _require_int(data, "deadline_ms", minimum=1) / 1000.0
    return PointRequest(point=point_cls(**kwargs), deadline=deadline)


def _parse_litmus_request(data: Mapping, point_cls) -> PointRequest:
    """Litmus points carry an inline program instead of a workload.

    The program is validated here (grammar, TX bracketing, unique tx
    ids) so a malformed program is a 400 at the front door; the point
    stores its canonical JSON, giving the served run the same cache
    key an engine-built litmus sweep would use.
    """
    from ..litmus import LitmusProgram

    for name in _LITMUS_REJECTED_KEYS:
        if name in data:
            raise ProtocolError(
                f"{name} does not apply to litmus points "
                "(the program rides inline)")
    if "program" not in data:
        raise ProtocolError("kind 'litmus' requires a program object")
    try:
        program = LitmusProgram.from_dict(data["program"])
    except ValueError as exc:
        raise ProtocolError(f"program: {exc}") from exc
    # the service accepts enum schemes only: registered extras (the
    # broken_commit validator target, test prototypes) stay in-process
    # — tests/test_litmus_runner.py pins that boundary
    try:
        scheme_value = SchemeName.parse(data.get("scheme")).value
    except (ValueError, KeyError, AttributeError) as exc:
        raise ProtocolError(
            f"scheme must be one of "
            f"{scheme_names(include_extras=False)}, "
            f"got {data.get('scheme')!r}") from exc

    config = build_config(data.get("config"))
    if config.num_cores < program.num_cores:
        raise ProtocolError(
            f"program {program.name!r} needs {program.num_cores} cores, "
            f"config has {config.num_cores} "
            "(set config.num_cores)")
    kwargs: Dict[str, object] = {
        "program": program.canonical_json(),
        "scheme": scheme_value,
        "config": config,
    }
    if "check_every" in data:
        kwargs["check_every"] = _require_int(data, "check_every", minimum=1)
    deadline = None
    if "deadline_ms" in data:
        deadline = _require_int(data, "deadline_ms", minimum=1) / 1000.0
    return PointRequest(point=point_cls(**kwargs), deadline=deadline)
