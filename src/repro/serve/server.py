"""The asyncio front-end: a minimal HTTP/1.1 JSON server.

Hand-rolled on :func:`asyncio.start_server` — no frameworks, stdlib
only, keep-alive supported.  Three endpoints:

=====================  ======================================================
``POST /v1/points``    body: one point spec (:mod:`repro.serve.protocol`);
                       200 answers ``{"key", "cached", "seconds",
                       "payload"}`` where ``payload`` is byte-identical
                       to what the batch engine caches for that key
``GET /healthz``       liveness + drain state
``GET /stats``         counters, queue/cache gauges, recent time series
=====================  ======================================================

Error mapping: malformed spec → 400; queue full → 503 with a
``Retry-After`` header; draining → 503; per-request deadline expired →
504; worker crashed past its retry budget (or any execution error) →
500.  Responses are always JSON with an ``"error"`` field on non-200.

Graceful shutdown (SIGTERM/SIGINT or :meth:`ServeService.
request_shutdown`): stop accepting connections, answer in-flight
keep-alive requests with 503, drain the scheduler (every admitted
point finishes and lands in the cache), then stop the fleet.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, Optional, Tuple, Union

from ..common.stats import Stats
from ..obs.jsonlog import get_logger
from ..obs.metrics import PROMETHEUS_CONTENT_TYPE
from ..obs.spans import SpanRecorder
from ..sim.parallel import ResultCache
from .ops import (
    TimeSlicer,
    ensure_request_id,
    healthz_payload,
    install_signal_handlers,
    metrics_payload,
    stats_payload,
    tick_forever,
)
from .pool import WorkerCrashed, WorkerFleet
from .protocol import ProtocolError, parse_request
from .scheduler import DeadlineExpired, Draining, QueueFull, Scheduler

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            502: "Bad Gateway", 503: "Service Unavailable",
            504: "Gateway Timeout"}

#: request body ceiling — a point spec is small; anything bigger is abuse
MAX_BODY_BYTES = 1 << 20


async def read_http_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request into ``(method, target, headers,
    body)``; ``None`` at EOF.  Shared by the serve front-end and the
    cluster router, which speak the same minimal dialect."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise ValueError("malformed request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    if not 0 <= length <= MAX_BODY_BYTES:
        raise ValueError("unreasonable content-length")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def write_http_response(writer: asyncio.StreamWriter, status: int,
                              payload: Union[Dict[str, object], str, bytes],
                              extra: Dict[str, str],
                              keep_alive: bool) -> None:
    """Serialize one response (shared with the cluster router).

    A dict payload is sent as JSON; a ``str``/``bytes`` payload is
    sent verbatim as text — how ``/metrics`` serves its Prometheus
    exposition text through the same JSON-era plumbing."""
    if isinstance(payload, (str, bytes)):
        blob = payload.encode("utf-8") if isinstance(payload, str) \
            else payload
        content_type = PROMETHEUS_CONTENT_TYPE
    else:
        blob = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(blob)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    lines.extend(f"{name}: {value}" for name, value in extra.items())
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                 + blob)
    await writer.drain()


class ServeService:
    """One long-lived simulation service instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7341,
                 jobs: int = 2, cache_dir=None,
                 max_queue: int = 64, max_inflight: Optional[int] = None,
                 cache_max_bytes: Optional[int] = None,
                 default_deadline: Optional[float] = None,
                 epoch_ms: int = 1000,
                 node_id: Optional[str] = None,
                 ready_callback=None) -> None:
        self.host = host
        self.port = port          # requested; 0 = ephemeral
        self.bound_port: Optional[int] = None
        self.node_id = node_id    # cluster identity; None = standalone
        self.default_deadline = default_deadline
        self.stats = Stats()
        self.spans = SpanRecorder(
            f"serve:{node_id}" if node_id else "serve")
        self.log = get_logger()
        self.fleet = WorkerFleet(jobs=jobs, stats=self.stats)
        cache = (ResultCache(cache_dir, max_bytes=cache_max_bytes)
                 if cache_dir is not None else None)
        self.scheduler = Scheduler(self.fleet, cache=cache,
                                   max_queue=max_queue,
                                   max_inflight=max_inflight,
                                   stats=self.stats,
                                   spans=self.spans, log=self.log)
        self.slicer = TimeSlicer(epoch_ms=epoch_ms)
        self.slicer.add_probe("queue_depth",
                              lambda: self.scheduler.queue_depth)
        self.slicer.add_probe("inflight",
                              lambda: self.scheduler.inflight)
        self.slicer.add_probe("cache_hit_ratio", self._hit_ratio)
        self._ready_callback = ready_callback
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._connections: Dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._busy: set = set()   # connection tasks mid-request

    def _hit_ratio(self) -> float:
        hits = self.stats.counter("serve.cache.hits")
        lookups = hits + self.stats.counter("serve.cache.misses")
        return round(hits / lookups, 6) if lookups else 0.0

    # -- lifecycle -----------------------------------------------------
    def request_shutdown(self) -> None:
        """Trigger a graceful drain; callable from any thread."""
        loop, shutdown = self._loop, self._shutdown
        if loop is None or shutdown is None:
            return
        loop.call_soon_threadsafe(shutdown.set)

    async def run(self, install_signals: bool = True) -> None:
        """Serve until shutdown is requested, then drain and exit."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(self._handle_connection,
                                            self.host, self.port)
        self.bound_port = server.sockets[0].getsockname()[1]
        if install_signals:
            install_signal_handlers(self._loop, self._shutdown.set)
        ticker = asyncio.create_task(tick_forever(self.slicer))
        if self._ready_callback is not None:
            self._ready_callback(self.bound_port)
        self.log.log("serve.ready", host=self.host,
                     port=self.bound_port)
        try:
            await self._shutdown.wait()
        finally:
            self.log.log("serve.drain.begin",
                         queue_depth=self.scheduler.queue_depth,
                         inflight=self.scheduler.inflight)
            server.close()
            await server.wait_closed()
            await self.scheduler.drain()
            # Drop idle keep-alive connections so their handler tasks
            # finish before the loop tears down (readline sees EOF).
            # Busy handlers still hold a drained result to write; they
            # close themselves after responding (draining check below).
            for conn_task, conn_writer in list(self._connections.items()):
                if conn_task not in self._busy:
                    conn_writer.close()
            if self._connections:
                await asyncio.wait(set(self._connections), timeout=5)
            ticker.cancel()
            try:
                await ticker
            except asyncio.CancelledError:
                pass
            self.fleet.shutdown()
            self.log.log("serve.stop",
                         uptime_seconds=round(
                             self.slicer.uptime_seconds, 3))

    # -- HTTP ----------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections[task] = writer
        try:
            while True:
                request = await read_http_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                self.stats.inc("serve.http.requests")
                self._busy.add(task)
                try:
                    status, payload, extra = await self._dispatch(
                        method, target, body, headers)
                finally:
                    self._busy.discard(task)
                self.stats.inc(f"serve.http.{status}")
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                await self._respond(writer, status, payload, extra,
                                    keep_alive)
                if not keep_alive or self.scheduler.draining:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError, ValueError):
            pass  # half-closed or garbage connection: just drop it
        finally:
            self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, object],
                       extra: Dict[str, str], keep_alive: bool) -> None:
        await write_http_response(writer, status, payload, extra,
                                  keep_alive)

    async def _dispatch(self, method: str, target: str, body: bytes,
                        headers: Optional[Dict[str, str]] = None
                        ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        target = target.split("?", 1)[0]
        if target == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, healthz_payload(self), {}
        if target == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, stats_payload(self), {}
        if target == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, metrics_payload(self), {}
        if target == "/trace":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, self.spans.chrome_trace(), {}
        if target == "/v1/points":
            if method != "POST":
                return 405, {"error": "use POST"}, {}
            return await self._submit(body, ensure_request_id(headers))
        return 404, {"error": f"no such endpoint {target!r}"}, {}

    async def _submit(self, body: bytes,
                      request_id: Optional[str] = None
                      ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        if request_id is None:
            request_id = ensure_request_id()
        started = time.perf_counter()
        with self.spans.span("http", "serve.request",
                             request_id=request_id) as span:
            status, result, extra = await self._submit_inner(
                body, request_id)
            span["status"] = status
            if "key" in result:
                span["key"] = result["key"]
        self.stats.hist("serve.request.ms",
                        (time.perf_counter() - started) * 1000)
        result = dict(result)
        result["request_id"] = request_id
        extra = dict(extra)
        extra["X-Request-Id"] = request_id
        self.log.log("request", request_id=request_id, status=status,
                     key=result.get("key"),
                     cached=result.get("cached"),
                     error=result.get("error"))
        return status, result, extra

    async def _submit_inner(self, body: bytes, request_id: str
                            ) -> Tuple[int, Dict[str, object],
                                       Dict[str, str]]:
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return 400, {"error": "request body is not valid JSON"}, {}
        try:
            request = parse_request(data)
        except ProtocolError as error:
            return 400, {"error": str(error)}, {}
        deadline = (request.deadline if request.deadline is not None
                    else self.default_deadline)
        try:
            result = await self.scheduler.submit(request.point,
                                                 deadline=deadline,
                                                 request_id=request_id)
        except QueueFull as error:
            return 503, {"error": str(error),
                         "retry_after": error.retry_after}, \
                {"Retry-After": str(error.retry_after)}
        except Draining:
            return 503, {"error": "service is draining"}, \
                {"Retry-After": "5"}
        except DeadlineExpired as error:
            return 504, {"error": str(error)}, {}
        except WorkerCrashed as error:
            return 500, {"error": str(error)}, {}
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — surface, don't die
            return 500, {"error": f"{type(error).__name__}: {error}"}, {}
        result = dict(result)
        result["kind"] = request.point.kind
        return 200, result, {}


def serve_forever(host: str = "127.0.0.1", port: int = 7341,
                  jobs: int = 2, cache_dir=None, max_queue: int = 64,
                  max_inflight: Optional[int] = None,
                  cache_max_bytes: Optional[int] = None,
                  node_id: Optional[str] = None,
                  announce=None, log_json: bool = False) -> int:
    """Blocking entry point for ``repro serve``: build a service, run
    it until SIGTERM/SIGINT, drain, and return 0.  ``log_json``
    switches the process (and its forked pool workers) to structured
    one-JSON-object-per-line logs (:mod:`repro.obs.jsonlog`)."""
    if log_json:
        from ..obs import jsonlog
        jsonlog.enable(node_id=node_id)

    def ready(bound_port: int) -> None:
        if announce is not None:
            announce(bound_port)

    service = ServeService(host=host, port=port, jobs=jobs,
                           cache_dir=cache_dir, max_queue=max_queue,
                           max_inflight=max_inflight,
                           cache_max_bytes=cache_max_bytes,
                           node_id=node_id,
                           ready_callback=ready)
    asyncio.run(service.run())
    return 0


def run_in_thread(service: ServeService
                  ) -> Tuple[threading.Thread, int]:
    """Start a service on a daemon thread; returns ``(thread,
    bound_port)`` once the socket is listening.  The test-suite (and
    notebook) harness — production uses :func:`serve_forever`."""
    ready = threading.Event()
    ports = []
    previous = service._ready_callback

    def on_ready(port: int) -> None:
        ports.append(port)
        ready.set()
        if previous is not None:
            previous(port)

    service._ready_callback = on_ready
    thread = threading.Thread(
        target=lambda: asyncio.run(service.run(install_signals=False)),
        name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("service failed to start within 30s")
    return thread, ports[0]
