"""repro.serve — the always-on simulation service.

Turns the repo's one-shot experiment pipeline into a long-lived
server: clients POST JSON point specs (the same four point kinds the
batch engine runs) and get cached-or-computed payloads back over a
minimal hand-rolled HTTP/1.1 JSON protocol.  Pieces:

* :mod:`~repro.serve.protocol` — spec parsing/validation; builds the
  exact frozen point dataclasses (and therefore the exact cache keys)
  the batch engine uses,
* :mod:`~repro.serve.scheduler` — admission control (bounded queue,
  load shedding with Retry-After), request coalescing by spec key, and
  a cache-first fast path,
* :mod:`~repro.serve.pool` — the worker fleet: a crash-tolerant
  ``ProcessPoolExecutor`` with bounded exponential-backoff retry,
* :mod:`~repro.serve.ops` — /healthz, /stats (with wall-clock
  time-sliced telemetry via the observability layer's EpochSampler),
  and graceful SIGTERM drain,
* :mod:`~repro.serve.server` — the asyncio front-end tying it all
  together (``repro serve``),
* :mod:`~repro.serve.client` — the small sync client (``repro
  submit``, tests, CI).

See ``docs/service.md`` for the protocol reference and capacity
tuning guidance.
"""

from .client import ServeClient, ServeError
from .pool import WorkerCrashed, WorkerFleet
from .protocol import PointRequest, ProtocolError, parse_request
from .scheduler import DeadlineExpired, Draining, QueueFull, Scheduler
from .server import (
    ServeService,
    read_http_request,
    run_in_thread,
    serve_forever,
    write_http_response,
)

__all__ = [
    "DeadlineExpired",
    "Draining",
    "PointRequest",
    "ProtocolError",
    "QueueFull",
    "Scheduler",
    "ServeClient",
    "ServeError",
    "ServeService",
    "WorkerCrashed",
    "WorkerFleet",
    "parse_request",
    "read_http_request",
    "run_in_thread",
    "serve_forever",
    "write_http_response",
]
