"""Worker fleet: a crash-tolerant ProcessPoolExecutor wrapper.

The service computes points in worker *processes* (simulations are
CPU-bound; the GIL would serialize threads), all sharing one on-disk
:class:`~repro.sim.parallel.ResultCache` through the scheduler.  The
fleet's job is to keep serving through worker death: a segfaulted or
OOM-killed worker breaks the whole ``ProcessPoolExecutor``
(``BrokenProcessPool``), so the fleet rebuilds the pool and retries
the point a bounded number of times with exponential backoff — the
same retry discipline the NVM controller applies to failed array
writes (:func:`repro.faults.exponential_backoff`) — before giving up
and letting the server answer 500.

Execution goes through the engine's
:func:`repro.sim.parallel.execute_point`, so a served point runs the
exact code path a batch point runs and returns the exact payload.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Tuple

from ..common.stats import Stats
from ..faults import exponential_backoff
from ..sim.parallel import execute_point


class WorkerCrashed(RuntimeError):
    """A point crashed its worker past the retry budget (answer 500)."""


class WorkerFleet:
    """Bounded-retry process pool executing experiment points."""

    def __init__(self, jobs: int = 2, max_retries: int = 2,
                 retry_backoff_seconds: float = 0.05,
                 stats: Optional[Stats] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.jobs = jobs
        self.max_retries = max_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.stats = stats if stats is not None else Stats()
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ------------------------------------------------
    def _submit(self, point, request_id: Optional[str] = None):
        """Submit one point to the (lazily created) pool; returns the
        concurrent future.  Separate from :meth:`execute` so tests can
        inject pool failures deterministically."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            self.stats.inc("pool.spawned")
        if request_id is None:
            return self._pool.submit(execute_point, point)
        return self._pool.submit(execute_point, point, request_id)

    def _discard_pool(self) -> None:
        """Drop a broken executor (its workers are already gone)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def shutdown(self, wait: bool = True) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    # -- execution -----------------------------------------------------
    async def execute(self, point,
                      request_id: Optional[str] = None
                      ) -> Tuple[str, dict, float]:
        """Run one point in a worker; returns ``(key, payload,
        seconds)``.  Retries through worker crashes up to
        ``max_retries`` times, then raises :class:`WorkerCrashed`.
        Exceptions raised *by the point itself* (a simulation bug, a
        bad spec that slipped validation) propagate unchanged on the
        first attempt — they are deterministic, retrying cannot help.
        ``request_id`` rides along to the worker purely so its
        structured ``point.executed`` log record carries the id.
        """
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.max_retries + 2):
            try:
                if request_id is None:
                    future = asyncio.wrap_future(self._submit(point))
                else:
                    future = asyncio.wrap_future(
                        self._submit(point, request_id))
                return await future
            except BrokenProcessPool as error:
                last_error = error
                self.stats.inc("pool.broken")
                self._discard_pool()
                if attempt <= self.max_retries:
                    self.stats.inc("pool.retries")
                    await asyncio.sleep(exponential_backoff(
                        self.retry_backoff_seconds, attempt))
        raise WorkerCrashed(
            f"point {point.key[:12]}… crashed its worker "
            f"{self.max_retries + 1} time(s)") from last_error
