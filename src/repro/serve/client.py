"""Small synchronous client for the simulation service.

Used by ``repro submit``, the test suite, and the CI smoke job; plain
:mod:`http.client`, one connection per call, no dependencies.  Every
non-200 answer raises :class:`ServeError` carrying the HTTP status,
the decoded error payload, and (for 503 load sheds) the server's
``Retry-After`` hint, so callers can implement their own backoff::

    client = ServeClient(port=7341)
    try:
        response = client.submit({"workload": "sps", "scheme": "txcache",
                                  "operations": 50,
                                  "config": {"num_cores": 1}})
    except ServeError as error:
        if error.retry_after:          # shed — come back later
            time.sleep(error.retry_after)
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Optional, Tuple


class ServeError(RuntimeError):
    """A non-200 answer from the service."""

    def __init__(self, status: int, payload: Dict[str, object],
                 retry_after: Optional[int] = None) -> None:
        message = payload.get("error", "") if isinstance(payload, dict) \
            else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class ServeClient:
    """Blocking JSON-over-HTTP client for one service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7341,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None
                 ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} \
                if body is not None else {}
            connection.request(method, path, body=payload,
                               headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            response_headers = {name.lower(): value
                                for name, value in response.getheaders()}
            return response.status, response_headers, decoded
        finally:
            connection.close()

    def _checked(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
        status, headers, payload = self._request(method, path, body)
        if status != 200:
            retry_after = headers.get("retry-after")
            raise ServeError(status, payload,
                             retry_after=int(retry_after)
                             if retry_after else None)
        return payload

    # -- endpoints -----------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        return self._checked("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self._checked("GET", "/stats")

    def submit(self, request: Dict[str, object]) -> Dict[str, object]:
        """Submit one point spec; returns the full 200 response
        (``key``/``kind``/``cached``/``seconds``/``payload``)."""
        return self._checked("POST", "/v1/points", body=request)
