"""Small synchronous client for the simulation service.

Used by ``repro submit``, the cluster chaos harness, the test suite,
and the CI smoke jobs; plain :mod:`http.client`, one connection per
call, no dependencies.  Every non-200 answer raises
:class:`ServeError` carrying the HTTP status, the decoded error
payload, and (for 503 load sheds) the server's ``Retry-After`` hint.

Retry discipline is built in: ``submit(..., retries=N)`` re-submits
through load sheds (503) and connection failures with the repo's one
shared backoff curve (:func:`repro.faults.exponential_backoff`),
waiting at least the server's ``Retry-After`` when one was given::

    client = ServeClient(port=7341)
    response = client.submit({"workload": "sps", "scheme": "txcache",
                              "operations": 50,
                              "config": {"num_cores": 1}},
                             retries=4)

Re-submitting is safe because points are idempotent by construction —
the request *is* its content-hashed spec, so a duplicate lands on the
server's coalescer or its cache, never on a second computation.
Deterministic rejections (400/404) are never retried.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Optional, Tuple

from ..faults import exponential_backoff


class ServeError(RuntimeError):
    """A non-200 answer from the service."""

    def __init__(self, status: int, payload: Dict[str, object],
                 retry_after: Optional[int] = None) -> None:
        message = payload.get("error", "") if isinstance(payload, dict) \
            else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class ServeClient:
    """Blocking JSON-over-HTTP client for one service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7341,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None,
                 headers: Optional[Dict[str, str]] = None
                 ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            send_headers = {"Content-Type": "application/json"} \
                if body is not None else {}
            if headers:
                send_headers.update(headers)
            connection.request(method, path, body=payload,
                               headers=send_headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            response_headers = {name.lower(): value
                                for name, value in response.getheaders()}
            return response.status, response_headers, decoded
        finally:
            connection.close()

    def _checked(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None,
                 headers: Optional[Dict[str, str]] = None
                 ) -> Dict[str, object]:
        status, response_headers, payload = self._request(
            method, path, body, headers)
        if status != 200:
            retry_after = response_headers.get("retry-after")
            raise ServeError(status, payload,
                             retry_after=int(retry_after)
                             if retry_after else None)
        return payload

    # -- endpoints -----------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        return self._checked("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self._checked("GET", "/stats")

    def metrics(self) -> str:
        """The raw ``/metrics`` Prometheus exposition text."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServeError(response.status,
                                 {"error": raw.decode("utf-8", "replace")})
            return raw.decode("utf-8")
        finally:
            connection.close()

    def trace(self) -> Dict[str, object]:
        """The node's wall-clock span trace (Chrome trace-event JSON)."""
        return self._checked("GET", "/trace")

    def submit(self, request: Dict[str, object], retries: int = 0,
               retry_backoff_seconds: float = 0.25,
               request_id: Optional[str] = None
               ) -> Dict[str, object]:
        """Submit one point spec; returns the full 200 response
        (``key``/``kind``/``cached``/``seconds``/``payload``/
        ``request_id``).  ``request_id`` is sent as ``X-Request-Id``
        (and reused across retries, so all attempts correlate).

        With ``retries=N``, a 503 shed or a connection failure is
        retried up to N times, sleeping
        ``max(exponential_backoff(retry_backoff_seconds, attempt),
        Retry-After)`` between attempts; the last failure propagates.
        Other statuses (400 bad spec, 500 crashed point, 504 deadline)
        are deterministic for the same request and raise immediately.
        """
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        headers = {"X-Request-Id": request_id} if request_id else None
        attempt = 0
        while True:
            attempt += 1
            try:
                if headers is None:
                    return self._checked("POST", "/v1/points",
                                         body=request)
                return self._checked("POST", "/v1/points", body=request,
                                     headers=headers)
            except ServeError as error:
                if error.status != 503 or attempt > retries:
                    raise
                delay = exponential_backoff(retry_backoff_seconds,
                                            attempt)
                if error.retry_after is not None:
                    delay = max(delay, error.retry_after)
            except OSError:
                if attempt > retries:
                    raise
                delay = exponential_backoff(retry_backoff_seconds,
                                            attempt)
            time.sleep(delay)
