"""Admission controller and request batcher for the serve front-end.

Three policies between the socket and the worker fleet:

* **Coalescing** — requests are identified by their engine spec key
  (a content hash of the full point spec), so two clients asking for
  the same point share one computation: the second request attaches to
  the first one's future instead of entering the queue.  The batch
  engine already deduplicates within a batch; this extends the same
  guarantee across concurrent clients.

* **Admission control** — at most ``max_inflight`` points compute at
  once (a semaphore over the fleet) and at most ``max_queue`` distinct
  points may wait for a slot.  A new point past that is *shed* with
  :class:`QueueFull`, carrying a ``Retry-After`` estimate derived from
  the observed mean point time — refusing cheap beats queueing
  expensive, the standard overload posture for a service whose work
  items take seconds.

* **Cache-first fast path** — a warm point is answered straight from
  the shared on-disk :class:`~repro.sim.parallel.ResultCache` without
  touching admission at all, so cache hits stay fast (well under the
  100 ms target) even when the compute queue is saturated.

Every waiter carries its own deadline: expiry raises
:class:`DeadlineExpired` for *that waiter only* — the computation is
shielded and keeps running for the others (and for the cache).  When
the last waiter of a not-yet-started point gives up, the point is
cancelled and its queue slot freed.
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import Dict, List, Optional

from ..common.stats import Stats
from ..obs.jsonlog import NULL_LOG
from ..obs.spans import NULL_SPANS
from ..sim.parallel import ResultCache


class QueueFull(Exception):
    """Load shed: the admission queue is full (answer 503)."""

    def __init__(self, retry_after: int) -> None:
        super().__init__(f"queue full, retry after ~{retry_after}s")
        self.retry_after = retry_after


class Draining(Exception):
    """The service is shutting down; no new work (answer 503)."""


class DeadlineExpired(Exception):
    """This waiter's deadline passed first (answer 504)."""


class _Entry:
    """One admitted point: its task plus everyone waiting on it."""

    __slots__ = ("key", "point", "future", "task", "waiters", "started",
                 "request_ids")

    def __init__(self, key: str, point) -> None:
        self.key = key
        self.point = point
        self.future: asyncio.Future = \
            asyncio.get_running_loop().create_future()
        self.task: Optional[asyncio.Task] = None
        self.waiters = 0
        self.started = False
        # correlation ids of every waiter that joined this point —
        # the first one travels with the computation into the pool
        self.request_ids: List[str] = []


class Scheduler:
    """Coalescing admission controller in front of a worker fleet."""

    def __init__(self, fleet, cache: Optional[ResultCache] = None,
                 max_queue: int = 64, max_inflight: Optional[int] = None,
                 stats: Optional[Stats] = None,
                 spans=None, log=None) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.fleet = fleet
        self.cache = cache
        self.max_queue = max_queue
        self.max_inflight = (max_inflight if max_inflight is not None
                             else fleet.jobs)
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}")
        self.stats = stats if stats is not None else Stats()
        self.spans = spans if spans is not None else NULL_SPANS
        self.log = log if log is not None else NULL_LOG
        # created lazily inside the running loop: on 3.9 asyncio
        # primitives bind their loop at construction time, and the
        # scheduler is built before the service's loop exists
        self._sem: Optional[asyncio.Semaphore] = None
        self._entries: Dict[str, _Entry] = {}
        self._queued = 0
        self._draining = False

    # -- introspection (the /stats endpoint reads these) ---------------
    @property
    def queue_depth(self) -> int:
        """Admitted points still waiting for a compute slot."""
        return self._queued

    @property
    def inflight(self) -> int:
        """Admitted points not yet finished (queued + computing)."""
        return len(self._entries)

    @property
    def draining(self) -> bool:
        return self._draining

    def _retry_after(self) -> int:
        """Seconds a shed client should wait: the backlog divided by
        the fleet width, in units of the observed mean point time."""
        mean = self.stats.mean("serve.point.seconds") or 1.0
        waves = math.ceil((self._queued + 1) / self.max_inflight)
        return max(1, math.ceil(waves * mean))

    # -- the one public entry ------------------------------------------
    async def submit(self, point,
                     deadline: Optional[float] = None,
                     request_id: Optional[str] = None
                     ) -> Dict[str, object]:
        """Resolve one point to its response dict
        (``{"key", "payload", "cached", "seconds"}``), coalescing,
        admitting, computing, and caching as needed.  ``request_id``
        is pure correlation: it tags this waiter's spans/logs (and,
        for the first waiter, the pool execution) without ever
        entering the computation or its cached payload."""
        if self._draining:
            self.stats.inc("serve.rejected.draining")
            raise Draining("service is draining")
        key = point.key

        entry = self._entries.get(key)
        if entry is None:
            # cache-first: warm points bypass admission entirely
            if self.cache is not None:
                with self.spans.span("cache", "cache.get",
                                     request_id=request_id, key=key):
                    cached = self.cache.get(key)
                if cached is not None:
                    self.stats.inc("serve.cache.hits")
                    self.spans.instant("cache", "cache.hit",
                                       request_id=request_id, key=key)
                    return {"key": key, "payload": cached,
                            "cached": True, "seconds": 0.0}
                self.stats.inc("serve.cache.misses")
            if self._queued >= self.max_queue:
                self.stats.inc("serve.shed")
                self.spans.instant("scheduler", "shed",
                                   request_id=request_id, key=key,
                                   queue_depth=self._queued)
                self.log.log("shed", level="warning",
                             request_id=request_id, key=key,
                             queue_depth=self._queued)
                raise QueueFull(self._retry_after())
            entry = self._admit(key, point)
            if request_id is not None:
                entry.request_ids.append(request_id)
        else:
            self.stats.inc("serve.coalesced")
            if request_id is not None:
                entry.request_ids.append(request_id)
            self.spans.instant("scheduler", "coalesce.join",
                               request_id=request_id, key=key,
                               waiters=entry.waiters + 1)
            self.log.log("coalesce.join", request_id=request_id,
                         key=key, waiters=entry.waiters + 1)

        entry.waiters += 1
        try:
            shielded = asyncio.shield(entry.future)
            if deadline is None:
                return await shielded
            try:
                return await asyncio.wait_for(shielded, deadline)
            except asyncio.TimeoutError:
                self.stats.inc("serve.deadline_expired")
                raise DeadlineExpired(
                    f"deadline of {deadline:.3f}s expired for "
                    f"point {key[:12]}…") from None
        finally:
            entry.waiters -= 1
            if (entry.waiters == 0 and not entry.started
                    and not entry.future.done()):
                # nobody is waiting and it never started: cancel it
                # rather than burn a worker on an abandoned request
                entry.task.cancel()

    def _admit(self, key: str, point) -> _Entry:
        entry = _Entry(key, point)
        self._entries[key] = entry
        self._queued += 1
        entry.task = asyncio.create_task(self._run(entry))
        self.stats.inc("serve.admitted")
        return entry

    async def _run(self, entry: _Entry) -> None:
        if self._sem is None:
            self._sem = asyncio.Semaphore(self.max_inflight)
        # the first waiter's id tags the whole computation
        rid = entry.request_ids[0] if entry.request_ids else None
        try:
            wait_start = time.perf_counter()
            with self.spans.span("scheduler", "admission.wait",
                                 request_id=rid, key=entry.key):
                await self._sem.acquire()
            self.stats.hist(
                "serve.admission.wait.ms",
                (time.perf_counter() - wait_start) * 1000)
            try:
                self._queued -= 1
                entry.started = True
                with self.spans.span("pool", "pool.execute",
                                     request_id=rid, key=entry.key):
                    if rid is not None:
                        key, payload, seconds = await self.fleet.execute(
                            entry.point, request_id=rid)
                    else:
                        key, payload, seconds = \
                            await self.fleet.execute(entry.point)
                self.stats.inc("serve.executed")
                self.stats.hist("serve.point.seconds", seconds)
                if self.cache is not None:
                    with self.spans.span("cache", "cache.put",
                                         request_id=rid, key=key):
                        self.cache.put(key, entry.point.spec(), payload)
                entry.future.set_result(
                    {"key": key, "payload": payload,
                     "cached": False, "seconds": seconds})
            finally:
                self._sem.release()
        except asyncio.CancelledError:
            self.stats.inc("serve.cancelled")
            if not entry.future.done():
                entry.future.cancel()
            raise
        except Exception as error:  # noqa: BLE001 — report to waiters
            self.stats.inc("serve.errors")
            if not entry.future.done():
                entry.future.set_exception(error)
        finally:
            if not entry.started:
                self._queued -= 1
            self._entries.pop(entry.key, None)
            # an abandoned point's exception has no consumer; mark it
            # retrieved so the loop does not log "never retrieved"
            if entry.waiters == 0 and entry.future.done() \
                    and not entry.future.cancelled():
                entry.future.exception()

    # -- shutdown ------------------------------------------------------
    async def drain(self) -> None:
        """Stop admitting, then wait for every in-flight point.

        Idempotent; after it returns, submit() raises
        :class:`Draining` and the caller may shut the fleet down."""
        self._draining = True
        tasks = [entry.task for entry in list(self._entries.values())
                 if entry.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
