"""Simulation layer: system builder, runners, crash checker, reports."""

from .crash import (
    CrashReport,
    check_recovery,
    crash_sweep,
    expected_image,
    measure_run_length,
    run_with_crash,
)
from .analytic import (
    TraceProfile,
    compare_with_simulation,
    predict_overhead_cycles,
    predict_relative_performance,
)
from .energy import EnergyBreakdown, EnergyModel, estimate_energy
from .report import (
    SCHEME_ORDER,
    format_bars,
    figure6_ipc,
    figure7_throughput,
    figure8_llc_miss_rate,
    figure9_write_traffic,
    figure10_load_latency,
    format_figure,
    format_table1,
    format_table2,
    format_table3,
    geomean,
    normalized_rows,
)
from .runner import (
    ALL_SCHEMES,
    SimulationResult,
    collect_result,
    make_mixed_traces,
    make_traces,
    run_comparison,
    run_experiment,
)
from .sweep import Sweep, SweepOutcome, llc_size_sweep, tc_size_sweep
from .system import System
from .validate import ValidationReport, validate_config, validate_setup

__all__ = [
    "ALL_SCHEMES",
    "SCHEME_ORDER",
    "CrashReport",
    "EnergyBreakdown",
    "EnergyModel",
    "SimulationResult",
    "Sweep",
    "SweepOutcome",
    "System",
    "TraceProfile",
    "ValidationReport",
    "compare_with_simulation",
    "predict_overhead_cycles",
    "predict_relative_performance",
    "estimate_energy",
    "format_bars",
    "llc_size_sweep",
    "make_mixed_traces",
    "tc_size_sweep",
    "validate_config",
    "validate_setup",
    "check_recovery",
    "collect_result",
    "crash_sweep",
    "expected_image",
    "figure6_ipc",
    "figure7_throughput",
    "figure8_llc_miss_rate",
    "figure9_write_traffic",
    "figure10_load_latency",
    "format_figure",
    "format_table1",
    "format_table2",
    "format_table3",
    "geomean",
    "make_traces",
    "measure_run_length",
    "normalized_rows",
    "run_comparison",
    "run_experiment",
    "run_with_crash",
]
